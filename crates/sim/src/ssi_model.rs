//! Small-model extraction of the engine's SSI/FCW commit protocol.
//!
//! The transition system mirrors `sicost_engine::ssi` (SIREAD marks,
//! rw-antidependency flags, the dangerous-structure "pivot" rule) layered
//! over deferred first-committer-wins write validation (the
//! `CcMode::SiFirstCommitterWins` commit-time check in
//! `sicost_engine::txn`). Abstractions versus the real engine, chosen so
//! the state space is exhaustively checkable at ≈3 transactions × 2 keys:
//!
//! * **Commit is one atomic action.** The engine closes its
//!   validation→install window with commit *announcements*
//!   (`SsiManager::pre_commit`); with an atomic commit the window is
//!   empty, so announcements are unnecessary and the `committing` state
//!   collapses away. The window itself is exercised by the DST torture
//!   harness (`tests/sim_torture.rs`), not the model.
//! * **No read-your-own-write**: a transaction never reads a key after
//!   writing it (the engine answers those from the write set without
//!   touching SSI state, so they are protocol-irrelevant).
//! * **WW conflicts resolve at commit (FCW)** rather than eagerly at
//!   write time (FUW). Both enforce the same reachable commit outcomes
//!   under atomic commits; the SSI layer is identical in either mode.
//!
//! The `mark_rw` / `concurrent_with` / pivot logic below is a direct port
//! of the identically named functions in `crates/engine/src/ssi.rs`, and
//! `crates/sim/tests/ssi_crosscheck.rs` replays random action sequences
//! against the real `SsiManager` to keep the port honest.
//!
//! Invariants — named one-to-one with the TLA+ spec at
//! `specs/ssi/serializable_snapshot_isolation.tla`:
//!
//! * `FirstCommitterWins`: no two committed, temporally overlapping
//!   transactions wrote the same key.
//! * `SnapshotRead`: every read observed exactly the newest version at or
//!   below the reader's snapshot.
//! * `Serializable`: the multi-version serialization graph over committed
//!   transactions (ww ∪ wr ∪ rw edges) is acyclic.
//!
//! With `ssi_enabled = false` (plain snapshot isolation), exhaustive
//! exploration *must* find the classic write-skew cycle — the checker's
//! teeth are tested, not assumed.

use crate::model::{Invariant, Model};

/// Sentinel writer id for the initial (pre-history) version of each key.
pub const INIT_WRITER: u8 = u8::MAX;

/// Lifecycle of a modelled transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Not yet begun (not registered with the conflict tracker).
    NotStarted,
    /// Running with a snapshot.
    Active,
    /// Committed at the carried timestamp.
    Committed(u8),
    /// Aborted (removed from the conflict tracker).
    Aborted,
}

/// Per-transaction model state: the fields of `SsiTxn` that survive the
/// atomic-commit abstraction, plus the read/write sets.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TxnState {
    /// Lifecycle phase.
    pub phase: Phase,
    /// Snapshot timestamp (meaningful once `Active`).
    pub snapshot: u8,
    /// `(key, observed commit ts)` pairs, in read order.
    pub reads: Vec<(u8, u8)>,
    /// Keys written, in write order.
    pub writes: Vec<u8>,
    /// Has an incoming rw-antidependency (someone read under it).
    pub in_conflict: bool,
    /// Has an outgoing rw-antidependency (read under someone).
    pub out_conflict: bool,
    /// Doomed by a concurrent pivot detection; must abort.
    pub doomed: bool,
}

/// One state of the protocol model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct State {
    /// Commit-timestamp clock (initial versions carry ts 0).
    pub clock: u8,
    /// The transactions, indexed by id.
    pub txns: Vec<TxnState>,
    /// Committed versions per key, ascending `(commit_ts, writer)`.
    pub versions: Vec<Vec<(u8, u8)>>,
    /// SIREAD marks per key, in mark order — mirrors the engine's
    /// `ReadShard::readers` so marking order (and therefore partial-mark
    /// outcomes) matches the implementation exactly.
    pub siread: Vec<Vec<u8>>,
}

/// One protocol step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Transaction begins, taking the current clock as its snapshot.
    Begin(u8),
    /// `Read(t, k)`: t reads key k at its snapshot.
    Read(u8, u8),
    /// `Write(t, k)`: t adds k to its write set (validation deferred).
    Write(u8, u8),
    /// `Commit(t)`: FCW validation, SSI validation, then atomic install —
    /// or abort, if either validation fails (also taken when doomed).
    Commit(u8),
}

/// The checkable model: `txns` transactions over `keys` keys, with the
/// SSI dangerous-structure rule on or off.
#[derive(Debug, Clone, Copy)]
pub struct SsiFcwModel {
    /// Number of transactions (state space is exponential in this).
    pub txns: usize,
    /// Number of keys.
    pub keys: usize,
    /// `true`: full SSI (pivot rule); `false`: plain SI + FCW, which must
    /// exhibit write skew.
    pub ssi_enabled: bool,
}

impl SsiFcwModel {
    /// The default exhaustive configuration: 3 transactions × 2 keys.
    pub fn small(ssi_enabled: bool) -> Self {
        Self {
            txns: 3,
            keys: 2,
            ssi_enabled,
        }
    }
}

fn present(t: &TxnState) -> bool {
    matches!(t.phase, Phase::Active | Phase::Committed(_))
}

fn abortable(t: &TxnState) -> bool {
    // The model's atomic commit has no `committing` window, so abortable
    // simply means "not yet committed".
    matches!(t.phase, Phase::Active)
}

/// Port of `sicost_engine::ssi::concurrent_with`: committed transactions
/// stay concurrent with anything that started at or before their commit
/// (inclusive tie — conservative); absent transactions are long gone.
fn concurrent_with(txns: &[TxnState], other: usize, start: u8) -> bool {
    match txns[other].phase {
        Phase::Active => true,
        Phase::Committed(c) => c >= start,
        Phase::NotStarted | Phase::Aborted => false,
    }
}

/// Port of `sicost_engine::ssi::mark_rw`: records the rw-antidependency
/// `reader → writer` and applies the pivot rule. `Err(())` means `me`
/// must abort now.
fn mark_rw(txns: &mut [TxnState], reader: usize, writer: usize, me: usize) -> Result<(), ()> {
    if reader == writer {
        return Ok(());
    }
    if present(&txns[reader]) {
        txns[reader].out_conflict = true;
    }
    if present(&txns[writer]) {
        txns[writer].in_conflict = true;
    }
    for t in [reader, writer] {
        if !present(&txns[t]) {
            continue;
        }
        if txns[t].in_conflict && txns[t].out_conflict {
            if t == me {
                return Err(());
            }
            if abortable(&txns[t]) {
                txns[t].doomed = true;
            } else {
                return Err(());
            }
        }
    }
    Ok(())
}

/// Abort cleanup, mirroring `SsiManager::on_abort`: the transaction's
/// SIREAD marks disappear and it stops being `present`.
fn abort(state: &mut State, t: usize) {
    state.txns[t].phase = Phase::Aborted;
    for marks in state.siread.iter_mut() {
        marks.retain(|&r| r as usize != t);
    }
}

impl State {
    fn observed_version(&self, key: usize, snapshot: u8) -> u8 {
        self.versions[key]
            .iter()
            .rev()
            .find(|(ts, _)| *ts <= snapshot)
            .map(|(ts, _)| *ts)
            .expect("the initial version at ts 0 is always visible")
    }

    fn has_read(&self, t: usize, key: usize) -> bool {
        self.txns[t].reads.iter().any(|(k, _)| *k as usize == key)
    }

    fn has_written(&self, t: usize, key: usize) -> bool {
        self.txns[t].writes.iter().any(|k| *k as usize == key)
    }

    /// Committed transaction ids with their commit timestamps.
    fn committed(&self) -> impl Iterator<Item = (usize, u8)> + '_ {
        self.txns
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match t.phase {
                Phase::Committed(c) => Some((i, c)),
                _ => None,
            })
    }
}

impl Model for SsiFcwModel {
    type State = State;
    type Action = Action;

    fn init_states(&self) -> Vec<State> {
        vec![State {
            clock: 0,
            txns: vec![
                TxnState {
                    phase: Phase::NotStarted,
                    snapshot: 0,
                    reads: Vec::new(),
                    writes: Vec::new(),
                    in_conflict: false,
                    out_conflict: false,
                    doomed: false,
                };
                self.txns
            ],
            versions: vec![vec![(0, INIT_WRITER)]; self.keys],
            siread: vec![Vec::new(); self.keys],
        }]
    }

    fn actions(&self, s: &State, out: &mut Vec<Action>) {
        for (i, t) in s.txns.iter().enumerate() {
            let i8 = i as u8;
            match t.phase {
                Phase::NotStarted => out.push(Action::Begin(i8)),
                Phase::Active => {
                    for k in 0..self.keys {
                        if !s.has_read(i, k) && !s.has_written(i, k) {
                            out.push(Action::Read(i8, k as u8));
                        }
                        if !s.has_written(i, k) {
                            out.push(Action::Write(i8, k as u8));
                        }
                    }
                    out.push(Action::Commit(i8));
                }
                Phase::Committed(_) | Phase::Aborted => {}
            }
        }
    }

    fn next_state(&self, s: &State, action: &Action) -> Option<State> {
        let mut n = s.clone();
        match *action {
            Action::Begin(t) => {
                let t = t as usize;
                n.txns[t].phase = Phase::Active;
                n.txns[t].snapshot = n.clock;
            }
            Action::Read(t, k) => {
                let (t, k) = (t as usize, k as usize);
                let snapshot = n.txns[t].snapshot;
                let observed = n.observed_version(k, snapshot);
                // Mirrors SsiManager::on_read: mark SIREAD, record the
                // read, fail if doomed, then mark rw edges against the
                // writers of committed versions newer than the observed
                // one. (No announcements: commits are atomic here.)
                if !n.siread[k].contains(&(t as u8)) {
                    n.siread[k].push(t as u8);
                }
                n.txns[t].reads.push((k as u8, observed));
                if self.ssi_enabled {
                    if n.txns[t].doomed {
                        abort(&mut n, t);
                        return Some(n);
                    }
                    let newer: Vec<usize> = n.versions[k]
                        .iter()
                        .filter(|(ts, w)| *ts > snapshot && *w != INIT_WRITER)
                        .map(|(_, w)| *w as usize)
                        .collect();
                    for w in newer {
                        if mark_rw(&mut n.txns, t, w, t).is_err() {
                            abort(&mut n, t);
                            return Some(n);
                        }
                    }
                }
            }
            Action::Write(t, k) => {
                let (t, k) = (t as usize, k as usize);
                // Mirrors SsiManager::on_write: fail if doomed, then mark
                // rw edges from every concurrent SIREAD holder. The write
                // itself defers WW validation to commit (FCW).
                if self.ssi_enabled {
                    if n.txns[t].doomed {
                        abort(&mut n, t);
                        return Some(n);
                    }
                    let my_start = n.txns[t].snapshot;
                    let readers: Vec<usize> = n.siread[k]
                        .iter()
                        .map(|&r| r as usize)
                        .filter(|&r| r != t)
                        .collect();
                    for r in readers {
                        if concurrent_with(&n.txns, r, my_start)
                            && mark_rw(&mut n.txns, r, t, t).is_err()
                        {
                            abort(&mut n, t);
                            return Some(n);
                        }
                    }
                }
                n.txns[t].writes.push(k as u8);
            }
            Action::Commit(t) => {
                let t = t as usize;
                let snapshot = n.txns[t].snapshot;
                // 1. Deferred first-committer-wins validation (the
                //    CcMode::SiFirstCommitterWins commit-time check): a
                //    committed version newer than our snapshot on any
                //    written key aborts us.
                let fcw_conflict = n.txns[t]
                    .writes
                    .iter()
                    .any(|&k| n.versions[k as usize].iter().any(|(ts, _)| *ts > snapshot));
                if fcw_conflict {
                    abort(&mut n, t);
                    return Some(n);
                }
                if self.ssi_enabled {
                    // 2. SsiManager::pre_commit: pre-check the pivot
                    //    flags, re-mark reader edges for the write set,
                    //    re-check. (Sorted/deduped readers — the engine
                    //    sorts by TxnId, which is registration order.)
                    let me = &n.txns[t];
                    if me.doomed || (me.in_conflict && me.out_conflict) {
                        abort(&mut n, t);
                        return Some(n);
                    }
                    let mut readers: Vec<usize> = Vec::new();
                    for &k in &n.txns[t].writes {
                        readers.extend(
                            n.siread[k as usize]
                                .iter()
                                .map(|&r| r as usize)
                                .filter(|&r| r != t),
                        );
                    }
                    readers.sort_unstable();
                    readers.dedup();
                    for r in readers {
                        if concurrent_with(&n.txns, r, snapshot)
                            && mark_rw(&mut n.txns, r, t, t).is_err()
                        {
                            abort(&mut n, t);
                            return Some(n);
                        }
                    }
                    let me = &n.txns[t];
                    if me.doomed || (me.in_conflict && me.out_conflict) {
                        abort(&mut n, t);
                        return Some(n);
                    }
                }
                // 3. Atomic install. Read-only transactions commit at
                //    their snapshot (as the engine does).
                if n.txns[t].writes.is_empty() {
                    n.txns[t].phase = Phase::Committed(snapshot);
                } else {
                    n.clock += 1;
                    let cts = n.clock;
                    for k in n.txns[t].writes.clone() {
                        n.versions[k as usize].push((cts, t as u8));
                    }
                    n.txns[t].phase = Phase::Committed(cts);
                }
            }
        }
        Some(n)
    }

    fn invariants(&self) -> Vec<Invariant<State>> {
        vec![
            Invariant {
                name: "FirstCommitterWins",
                check: inv_first_committer_wins,
            },
            Invariant {
                name: "SnapshotRead",
                check: inv_snapshot_read,
            },
            Invariant {
                name: "Serializable",
                check: inv_serializable,
            },
        ]
    }
}

/// No two committed, temporally overlapping transactions share a written
/// key. Overlap: each began before the other committed.
fn inv_first_committer_wins(s: &State) -> bool {
    let committed: Vec<(usize, u8)> = s.committed().collect();
    for (a, (i, ci)) in committed.iter().enumerate() {
        for (j, cj) in committed.iter().skip(a + 1) {
            let (ti, tj) = (&s.txns[*i], &s.txns[*j]);
            let overlap = ti.snapshot < *cj && tj.snapshot < *ci;
            if !overlap {
                continue;
            }
            if ti.writes.iter().any(|k| tj.writes.contains(k)) {
                return false;
            }
        }
    }
    true
}

/// Every read of a live (non-aborted) transaction observed exactly the
/// newest version at or below its snapshot. Commit timestamps are strictly
/// above every snapshot taken before them, so checking against the final
/// version list is equivalent to checking at read time.
fn inv_snapshot_read(s: &State) -> bool {
    s.txns
        .iter()
        .filter(|t| !matches!(t.phase, Phase::Aborted))
        .all(|t| {
            t.reads
                .iter()
                .all(|&(k, observed)| s.observed_version(k as usize, t.snapshot) == observed)
        })
}

/// The multi-version serialization graph over committed transactions is
/// acyclic. Edges per key: ww (commit order among writers), wr (version
/// writer → its readers), rw (reader → writers of newer versions).
fn inv_serializable(s: &State) -> bool {
    let nodes: Vec<usize> = s.committed().map(|(i, _)| i).collect();
    let index_of = |t: usize| nodes.iter().position(|&n| n == t);
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let add = |from: usize, to: usize, adj: &mut Vec<Vec<usize>>| {
        if from != to {
            if let (Some(f), Some(t)) = (index_of(from), index_of(to)) {
                if !adj[f].contains(&t) {
                    adj[f].push(t);
                }
            }
        }
    };

    for k in 0..s.versions.len() {
        let versions = &s.versions[k];
        // ww: version order is commit order.
        for (a, (_, wa)) in versions.iter().enumerate() {
            for (_, wb) in versions.iter().skip(a + 1) {
                if *wa != INIT_WRITER && *wb != INIT_WRITER {
                    add(*wa as usize, *wb as usize, &mut adj);
                }
            }
        }
        for &reader in &nodes {
            for &(k2, observed) in &s.txns[reader].reads {
                if k2 as usize != k {
                    continue;
                }
                // wr: the writer of the observed version → the reader.
                if let Some((_, w)) = s.versions[k].iter().find(|(ts, _)| *ts == observed) {
                    if *w != INIT_WRITER {
                        add(*w as usize, reader, &mut adj);
                    }
                }
                // rw: the reader → writers of newer versions.
                for (ts, w) in versions {
                    if *ts > observed && *w != INIT_WRITER {
                        add(reader, *w as usize, &mut adj);
                    }
                }
            }
        }
    }

    // DFS three-colour cycle detection.
    fn has_cycle(adj: &[Vec<usize>]) -> bool {
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        fn visit(n: usize, adj: &[Vec<usize>], colour: &mut [Colour]) -> bool {
            colour[n] = Colour::Grey;
            for &m in &adj[n] {
                match colour[m] {
                    Colour::Grey => return true,
                    Colour::White => {
                        if visit(m, adj, colour) {
                            return true;
                        }
                    }
                    Colour::Black => {}
                }
            }
            colour[n] = Colour::Black;
            false
        }
        let mut colour = vec![Colour::White; adj.len()];
        for n in 0..adj.len() {
            if colour[n] == Colour::White && visit(n, adj, &mut colour) {
                return true;
            }
        }
        false
    }

    !has_cycle(&adj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::check_bfs;

    const BUDGET: u64 = 5_000_000;

    #[test]
    fn ssi_small_model_is_exhaustively_safe() {
        let model = SsiFcwModel::small(true);
        let report = check_bfs(&model, BUDGET);
        assert!(report.complete, "budget must cover the small model");
        if let Some(v) = &report.violation {
            panic!("SSI/FCW violated an invariant:\n{}", v.render());
        }
        assert!(
            report.explored > 1_000,
            "suspiciously small state space: {}",
            report.explored
        );
        assert!(report.pruned > 0);
    }

    #[test]
    fn plain_si_exhibits_write_skew() {
        let model = SsiFcwModel::small(false);
        let report = check_bfs(&model, BUDGET);
        let v = report
            .violation
            .expect("plain SI + FCW must show the write-skew anomaly");
        assert_eq!(
            v.invariant,
            "Serializable",
            "FCW and SnapshotRead hold under SI; only acyclicity breaks:\n{}",
            v.render()
        );
        // The counterexample must be genuine write skew: two committed
        // transactions with crossing read→write dependencies and disjoint
        // write sets (so FCW could not have stopped them).
        let state = v.state();
        let committed: Vec<usize> = state.committed().map(|(i, _)| i).collect();
        assert!(
            committed.len() >= 2,
            "need two committed txns:\n{}",
            v.render()
        );
        let crossing = committed.iter().any(|&i| {
            committed.iter().any(|&j| {
                i != j
                    && state.txns[i]
                        .reads
                        .iter()
                        .any(|(k, _)| state.txns[j].writes.contains(k))
                    && state.txns[j]
                        .reads
                        .iter()
                        .any(|(k, _)| state.txns[i].writes.contains(k))
                    && !state.txns[i]
                        .writes
                        .iter()
                        .any(|k| state.txns[j].writes.contains(k))
            })
        });
        assert!(crossing, "not a write-skew shape:\n{}", v.render());
    }

    #[test]
    fn fcw_blocks_concurrent_writers_regardless_of_ssi() {
        // Hand-driven: T0 and T1 both write key 0 concurrently; the
        // second committer must abort.
        let model = SsiFcwModel {
            txns: 2,
            keys: 1,
            ssi_enabled: false,
        };
        let s0 = model.init_states().remove(0);
        let s = model.next_state(&s0, &Action::Begin(0)).unwrap();
        let s = model.next_state(&s, &Action::Begin(1)).unwrap();
        let s = model.next_state(&s, &Action::Write(0, 0)).unwrap();
        let s = model.next_state(&s, &Action::Write(1, 0)).unwrap();
        let s = model.next_state(&s, &Action::Commit(0)).unwrap();
        assert!(matches!(s.txns[0].phase, Phase::Committed(_)));
        let s = model.next_state(&s, &Action::Commit(1)).unwrap();
        assert_eq!(s.txns[1].phase, Phase::Aborted, "first committer wins");
        assert!(inv_first_committer_wins(&s));
    }

    fn outcome_counts(s: &State) -> (usize, usize) {
        let committed = s
            .txns
            .iter()
            .filter(|t| matches!(t.phase, Phase::Committed(_)))
            .count();
        let aborted = s.txns.iter().filter(|t| t.phase == Phase::Aborted).count();
        (committed, aborted)
    }

    #[test]
    fn ssi_never_commits_both_sides_of_a_write_skew() {
        // T0: r(k0) w(k1); T1: r(k1) w(k0). With both writes before
        // either commit, T1's write makes T0 the pivot (dooming it) and
        // errors T1 itself — the conservative rule may abort both sides,
        // but it must never commit both.
        let model = SsiFcwModel {
            txns: 2,
            keys: 2,
            ssi_enabled: true,
        };
        let s0 = model.init_states().remove(0);
        let s = model.next_state(&s0, &Action::Begin(0)).unwrap();
        let s = model.next_state(&s, &Action::Begin(1)).unwrap();
        let s = model.next_state(&s, &Action::Read(0, 0)).unwrap();
        let s = model.next_state(&s, &Action::Read(1, 1)).unwrap();
        let s = model.next_state(&s, &Action::Write(0, 1)).unwrap();
        let s = model.next_state(&s, &Action::Write(1, 0)).unwrap();
        let s = model.next_state(&s, &Action::Commit(0)).unwrap();
        let s = model.next_state(&s, &Action::Commit(1)).unwrap();
        let (committed, aborted) = outcome_counts(&s);
        assert!(
            committed <= 1 && aborted >= 1,
            "SSI let a write-skew pair through: {s:?}"
        );
        assert!(inv_serializable(&s));
    }

    #[test]
    fn ssi_aborts_the_straggler_when_the_pivot_committed_first() {
        // Same skew, but T0 commits before T1 writes: T0 is then a
        // committed pivot and unabortable, so T1's write must fail —
        // exactly one commit, one abort.
        let model = SsiFcwModel {
            txns: 2,
            keys: 2,
            ssi_enabled: true,
        };
        let s0 = model.init_states().remove(0);
        let s = model.next_state(&s0, &Action::Begin(0)).unwrap();
        let s = model.next_state(&s, &Action::Begin(1)).unwrap();
        let s = model.next_state(&s, &Action::Read(0, 0)).unwrap();
        let s = model.next_state(&s, &Action::Read(1, 1)).unwrap();
        let s = model.next_state(&s, &Action::Write(0, 1)).unwrap();
        let s = model.next_state(&s, &Action::Commit(0)).unwrap();
        let s = model.next_state(&s, &Action::Write(1, 0)).unwrap();
        let (committed, aborted) = outcome_counts(&s);
        assert_eq!(
            (committed, aborted),
            (1, 1),
            "the straggler must die at its write: {s:?}"
        );
        assert!(inv_serializable(&s));
    }
}
