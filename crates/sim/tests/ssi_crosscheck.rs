//! Keeps the model-checker's SSI extraction honest: random action
//! sequences are replayed simultaneously against the small model
//! (`sicost_sim::SsiFcwModel`) and the real `sicost_engine::ssi::
//! SsiManager`, asserting that every accept/abort decision agrees.
//!
//! The model abstracts commit to one atomic action, so the engine side
//! here calls `pre_commit` + `finish_commit` back to back (the
//! validation→install window is empty, exactly the abstraction the model
//! documents). First-committer-wins validation lives in the engine's
//! transaction layer, not in `SsiManager`, so the FCW abort branch is
//! mirrored on both sides from the model's version store and the engine
//! manager sees the same `on_abort`.

use sicost_common::{TableId, Ts, TxnId, Xoshiro256};
use sicost_engine::ssi::{ReadKey, SsiManager};
use sicost_sim::{Action, Model, Phase, SsiFcwModel, State};
use sicost_storage::Value;

const SEQUENCES: u64 = 400;
const STEPS: usize = 24;

fn read_key(k: u8) -> ReadKey {
    (TableId(0), Value::Int(i64::from(k)))
}

/// Applies one model action to the paired engine manager, returning
/// whether the engine accepted it (`true`) or aborted the transaction.
fn drive_engine(mgr: &SsiManager, s: &State, action: Action, ssi_clock: u64) -> bool {
    match action {
        Action::Begin(t) => {
            mgr.begin(TxnId(u64::from(t)), Ts(u64::from(s.clock)));
            true
        }
        Action::Read(t, k) => {
            let snapshot = s.txns[t as usize].snapshot;
            let observed = s.versions[k as usize]
                .iter()
                .rev()
                .find(|(ts, _)| *ts <= snapshot)
                .map(|(ts, _)| *ts)
                .expect("initial version");
            let newer: Vec<TxnId> = s.versions[k as usize]
                .iter()
                .filter(|(ts, w)| *ts > snapshot && *w != sicost_sim::INIT_WRITER)
                .map(|(_, w)| TxnId(u64::from(*w)))
                .collect();
            let _ = observed;
            let ok = mgr
                .on_read(TxnId(u64::from(t)), read_key(k), &newer)
                .is_ok();
            if !ok {
                mgr.on_abort(TxnId(u64::from(t)));
            }
            ok
        }
        Action::Write(t, k) => {
            let ok = mgr.on_write(TxnId(u64::from(t)), &read_key(k)).is_ok();
            if !ok {
                mgr.on_abort(TxnId(u64::from(t)));
            }
            ok
        }
        Action::Commit(t) => {
            let txn = TxnId(u64::from(t));
            let me = &s.txns[t as usize];
            // FCW validation is the transaction layer's job in the engine;
            // mirror the model's check so both sides agree on which commits
            // even reach SSI validation.
            let fcw_conflict = me.writes.iter().any(|&k| {
                s.versions[k as usize]
                    .iter()
                    .any(|(ts, _)| *ts > me.snapshot)
            });
            if fcw_conflict {
                mgr.on_abort(txn);
                return false;
            }
            let write_keys: Vec<ReadKey> = me.writes.iter().map(|&k| read_key(k)).collect();
            match mgr.pre_commit(txn, &write_keys) {
                Ok(()) => {
                    let cts = if write_keys.is_empty() {
                        u64::from(me.snapshot)
                    } else {
                        ssi_clock + 1
                    };
                    mgr.finish_commit(txn, Ts(cts));
                    true
                }
                Err(_) => {
                    mgr.on_abort(txn);
                    false
                }
            }
        }
    }
}

#[test]
fn random_schedules_agree_with_the_real_ssi_manager() {
    let model = SsiFcwModel::small(true);
    let mut disagreements = Vec::new();
    for seed in 0..SEQUENCES {
        let mut rng = Xoshiro256::seed_from_u64(0x55C0 ^ seed);
        let mut state = model.init_states().remove(0);
        let mgr = SsiManager::new();
        let mut trace = Vec::new();
        for _ in 0..STEPS {
            let mut actions = Vec::new();
            model.actions(&state, &mut actions);
            if actions.is_empty() {
                break;
            }
            let action = actions[(rng.next_u64() % actions.len() as u64) as usize];
            // Decide from the engine *before* the model mutates shared
            // state: both sides see the same pre-state.
            let engine_ok = drive_engine(&mgr, &state, action, u64::from(state.clock));
            let next = model
                .next_state(&state, &action)
                .expect("enabled actions always produce a state");
            let model_ok = match action {
                Action::Begin(t) | Action::Read(t, _) | Action::Write(t, _) => {
                    next.txns[t as usize].phase != Phase::Aborted
                }
                Action::Commit(t) => matches!(next.txns[t as usize].phase, Phase::Committed(_)),
            };
            trace.push(action);
            if engine_ok != model_ok {
                disagreements.push(format!(
                    "seed {seed}: {action:?} — engine says {}, model says {} \
                     (trace: {trace:?})\nmodel state: {next:#?}",
                    if engine_ok { "accept" } else { "abort" },
                    if model_ok { "accept" } else { "abort" },
                ));
                break;
            }
            state = next;
        }
    }
    assert!(
        disagreements.is_empty(),
        "{} of {SEQUENCES} sequences diverged from the engine:\n{}",
        disagreements.len(),
        disagreements.join("\n---\n")
    );
}

/// The canonical write-skew schedule decided identically by both sides:
/// crossing reads, both writes, then both commits — the engine must abort
/// at least one transaction exactly where the model does.
#[test]
fn the_write_skew_schedule_agrees_step_by_step() {
    let model = SsiFcwModel {
        txns: 2,
        keys: 2,
        ssi_enabled: true,
    };
    let mgr = SsiManager::new();
    let mut state = model.init_states().remove(0);
    let schedule = [
        Action::Begin(0),
        Action::Begin(1),
        Action::Read(0, 0),
        Action::Read(1, 1),
        Action::Write(0, 1),
        Action::Write(1, 0),
        Action::Commit(0),
        Action::Commit(1),
    ];
    let mut engine_aborts = 0;
    let mut model_aborts = 0;
    for action in schedule {
        // Skip actions whose transaction the model already aborted — the
        // engine-side client would have stopped issuing them too.
        let t = match action {
            Action::Begin(t) | Action::Read(t, _) | Action::Write(t, _) | Action::Commit(t) => t,
        };
        if state.txns[t as usize].phase == Phase::Aborted {
            continue;
        }
        let engine_ok = drive_engine(&mgr, &state, action, u64::from(state.clock));
        let next = model.next_state(&state, &action).unwrap();
        let model_ok = next.txns[t as usize].phase != Phase::Aborted;
        assert_eq!(engine_ok, model_ok, "divergence at {action:?}");
        engine_aborts += usize::from(!engine_ok);
        model_aborts += usize::from(!model_ok);
        state = next;
    }
    assert_eq!(engine_aborts, model_aborts);
    assert!(
        model_aborts >= 1,
        "SSI must abort at least one side of the skew"
    );
}
