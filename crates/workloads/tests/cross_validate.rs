//! Static/dynamic cross-validation over the full corpus × strategy
//! matrix — the end-to-end contract of the robustness checker.
//!
//! For every cell (workload × fix strategy) the test derives the cell's
//! executable programs, takes the **static** verdict by re-analysing
//! exactly those programs, and confronts it with two kinds of **dynamic**
//! evidence on the real engine:
//!
//! * a seeded concurrent driver run with a sampling MVSG certifier
//!   attached — a statically robust cell must certify **zero** SI
//!   anomalies (the certifier is sound: it never reports a false
//!   anomaly);
//! * the deterministic witness schedule — every dangerous structure the
//!   analysis predicts for a non-robust cell must be *realised* (all
//!   three transactions commit, history not serializable), and for the
//!   strategy-fixed variants of a non-robust workload the very same
//!   schedules must come back serializable.
//!
//! Each cell appends one JSON line to
//! `target/robustness-trace/cross_validate.jsonl`; CI uploads the file
//! when the matrix disagrees.

use sicost_common::Json;
use sicost_core::{EdgeCost, Sdg, SfuTreatment, Witness, WorkloadSpec};
use sicost_driver::{run, RetryPolicy, RunConfig};
use sicost_engine::{EngineConfig, HistoryObserver};
use sicost_mvsg::SamplingCertifier;
use sicost_workloads::{
    run_witness_script, strategy_programs, CorpusDriver, CorpusWorkload, FixStrategy,
};
use std::sync::Arc;
use std::time::Duration;

const SFU: SfuTreatment = SfuTreatment::AsLockOnly;
const SEED: u64 = 0x00C0_FFEE;

/// Dangerous structures of an analysed mix, by program names. (The
/// checker's `check` entry point refuses mixes that touch the reserved
/// `Conflict` table; materialized cells legitimately do, so the cell
/// verdict re-derives witnesses straight from the SDG.)
fn witnesses_of(sdg: &Sdg) -> Vec<Witness> {
    let name = |i: usize| sdg.programs()[i].name.clone();
    let mut out: Vec<Witness> = sdg
        .dangerous_structures()
        .iter()
        .map(|s| Witness {
            from: name(sdg.edges()[s.incoming].from),
            pivot: name(s.pivot),
            to: name(sdg.edges()[s.outgoing].to),
        })
        .collect();
    out.sort();
    out.dedup();
    out
}

#[test]
fn every_cell_of_the_matrix_agrees_statically_and_dynamically() {
    let mut trace: Vec<String> = Vec::new();
    let mut checked_cells = 0;

    for workload in CorpusWorkload::ALL {
        // The checker must agree with the literature on the base mix.
        let base_report = workload.check_robustness(SFU, EdgeCost::default());
        assert_eq!(
            base_report.robust(),
            workload.expected_robust(),
            "{}: checker disagrees with ground truth",
            workload.name()
        );

        for strategy in FixStrategy::ALL {
            let programs = strategy_programs(&workload, strategy, SFU);
            let cell_sdg = Sdg::build(&programs, SFU);
            let static_robust = cell_sdg.is_si_serializable();
            let cell_witnesses = witnesses_of(&cell_sdg);

            // Any strategy other than Base must leave a non-robust
            // workload robust — the fixes are verified transformations.
            if strategy != FixStrategy::Base {
                assert!(
                    static_robust,
                    "{} × {strategy}: a fix strategy left the mix unsafe",
                    workload.name()
                );
            }

            // Dynamic side 1: seeded concurrent run, online certifier.
            let certifier = SamplingCertifier::with_defaults();
            let driver = CorpusDriver::new(
                workload,
                strategy,
                SFU,
                EngineConfig::functional(),
                Some(Arc::clone(&certifier) as Arc<dyn HistoryObserver>),
            );
            let metrics = run(
                &driver,
                &RunConfig::new(4)
                    .with_seed(SEED ^ checked_cells)
                    .with_measure(Duration::from_millis(150))
                    .with_retry(RetryPolicy::paper_default()),
            );
            certifier.finish();
            let stats = certifier.stats();
            assert!(
                metrics.commits() > 0,
                "{} × {strategy}: the cell made no progress",
                workload.name()
            );
            if static_robust {
                assert_eq!(
                    stats.si_anomalies(),
                    0,
                    "{} × {strategy}: statically robust but the certifier \
                     found SI anomalies: {:?}",
                    workload.name(),
                    stats
                );
            }

            // Dynamic side 2: deterministic witness schedules. Every
            // structure predicted for the cell must be realisable …
            let mut scripted = Vec::new();
            for witness in &cell_witnesses {
                let outcome = run_witness_script(&programs, witness, EngineConfig::functional());
                assert!(
                    outcome.anomalous(),
                    "{} × {strategy}: predicted structure {witness} did not \
                     materialise: {outcome:?}",
                    workload.name()
                );
                scripted.push((witness.clone(), false));
            }
            // … and for fixed variants, the base mix's structures must
            // no longer be: the same schedule aborts the pivot or
            // certifies serializable.
            if strategy != FixStrategy::Base {
                for witness in &base_report.witnesses {
                    let outcome =
                        run_witness_script(&programs, witness, EngineConfig::functional());
                    assert!(
                        outcome.report.serializable,
                        "{} × {strategy}: base anomaly {witness} survived the \
                         fix: {outcome:?}",
                        workload.name()
                    );
                    scripted.push((witness.clone(), true));
                }
            }

            trace.push(
                Json::obj(vec![
                    ("workload", Json::str(workload.name())),
                    ("strategy", Json::str(strategy.name())),
                    ("static_robust", Json::Bool(static_robust)),
                    (
                        "witnesses",
                        Json::Arr(
                            cell_witnesses
                                .iter()
                                .map(|w| Json::str(w.to_string()))
                                .collect(),
                        ),
                    ),
                    ("commits", Json::int(metrics.commits())),
                    ("si_anomalies", Json::int(stats.si_anomalies())),
                    (
                        "scripted",
                        Json::Arr(
                            scripted
                                .iter()
                                .map(|(w, fixed)| {
                                    Json::obj(vec![
                                        ("witness", Json::str(w.to_string())),
                                        ("against_fixed", Json::Bool(*fixed)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
                .render(),
            );
            checked_cells += 1;
        }
    }

    assert_eq!(
        checked_cells as usize,
        CorpusWorkload::ALL.len() * FixStrategy::ALL.len(),
        "the sweep must cover every cell"
    );

    // Per-cell trace for CI artifact upload on failure (and local
    // inspection either way).
    let dir =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/robustness-trace");
    std::fs::create_dir_all(&dir).expect("create trace dir");
    std::fs::write(dir.join("cross_validate.jsonl"), trace.join("\n") + "\n").expect("write trace");
}
