//! Deterministic execution of a static anomaly witness.
//!
//! The checker's [`Witness`] names a dangerous structure
//! `P --v--> Q --v--> R`: the pivot `Q` reads stale data relative to `R`
//! (outgoing rw edge) while `P` reads stale data relative to `Q`
//! (incoming rw edge), and a dependency path closes the cycle. This
//! module replays exactly that shape against the real engine:
//!
//! ```text
//! begin(Q);  Q's reads                   ── pivot on the old snapshot
//! R runs to completion and commits       ── Q now reads-stale w.r.t. R
//! P runs to completion and commits       ── P misses Q's pending writes
//! Q's writes; commit(Q)
//! ```
//!
//! Every parameter of all three instances is bound to row 0 — the
//! collision scenario under which the SDG declared the edges vulnerable.
//! The schedule is single-threaded, so it is deterministic by
//! construction; the captured history is certified offline with the
//! MVSG. For a mix the checker calls **not robust**, the script must
//! yield a non-serializable history (all three commit under plain SI).
//! For the checker-fixed mix, the very same schedule must either abort
//! the pivot (first-committer-wins on the added write) or certify
//! serializable — that agreement is what `tests/cross_validate.rs`
//! asserts for every cell of the corpus × strategy matrix.

use crate::exec::{Binding, CorpusDb, PARAM_ROWS};
use sicost_core::{AccessMode, Program, Witness};
use sicost_engine::{EngineConfig, HistoryObserver};
use sicost_mvsg::{History, Mvsg, SerializabilityReport};
use std::sync::Arc;

/// What one scripted witness run produced.
#[derive(Debug)]
pub struct ScriptOutcome {
    /// Did the incoming-edge source `P` commit?
    pub from_committed: bool,
    /// Did the pivot `Q` commit?
    pub pivot_committed: bool,
    /// Did the outgoing-edge target `R` commit?
    pub to_committed: bool,
    /// Offline MVSG certification of the committed history.
    pub report: SerializabilityReport,
}

impl ScriptOutcome {
    /// True when the script realised the predicted anomaly: everything
    /// committed and the history is not serializable.
    pub fn anomalous(&self) -> bool {
        self.from_committed
            && self.pivot_committed
            && self.to_committed
            && !self.report.serializable
    }
}

/// Runs the witness schedule for `witness` over `programs` on a fresh
/// database under `engine`, and certifies the resulting history.
///
/// # Panics
/// If the witness names a program absent from `programs` — witnesses are
/// only meaningful against the mix that produced them.
pub fn run_witness_script(
    programs: &[Program],
    witness: &Witness,
    engine: EngineConfig,
) -> ScriptOutcome {
    let find = |name: &str| {
        programs
            .iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("witness program {name} not in the mix"))
    };
    let p = find(&witness.from);
    let q = find(&witness.pivot);
    let r = find(&witness.to);

    let history = History::new();
    let db = CorpusDb::build(
        programs,
        PARAM_ROWS,
        engine,
        Some(history.clone() as Arc<dyn HistoryObserver>),
    );
    let binding = Binding::zero(programs);

    // Pivot: reads on the pre-script snapshot.
    let mut pivot_tx = db.db().begin();
    let mut pivot_ok = true;
    for access in q.accesses.iter().filter(|a| a.mode != AccessMode::Write) {
        if db.step(&mut pivot_tx, access, &binding, 1).is_err() {
            pivot_ok = false;
            break;
        }
    }
    // The outgoing edge's target, then the incoming edge's source, each
    // as a complete transaction.
    let to_committed = db.run_program(r, &binding, 2).is_ok();
    let from_committed = db.run_program(p, &binding, 3).is_ok();
    // Pivot: writes (including any strategy-added ones) and commit.
    if pivot_ok {
        for access in q.accesses.iter().filter(|a| a.mode == AccessMode::Write) {
            if db.step(&mut pivot_tx, access, &binding, 1).is_err() {
                pivot_ok = false;
                break;
            }
        }
    }
    let pivot_committed = if pivot_ok {
        pivot_tx.commit().is_ok()
    } else {
        pivot_tx.rollback();
        false
    };

    let report = Mvsg::from_events(&history.events()).certify();
    ScriptOutcome {
        from_committed,
        pivot_committed,
        to_committed,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusWorkload;
    use crate::exec::{strategy_programs, FixStrategy};
    use sicost_core::{EdgeCost, SfuTreatment, WorkloadSpec};

    #[test]
    fn doctors_witness_exhibits_write_skew_under_plain_si() {
        let wl = CorpusWorkload::DoctorsOnCall;
        let report = wl.check_robustness(SfuTreatment::AsLockOnly, EdgeCost::default());
        for witness in &report.witnesses {
            let outcome = run_witness_script(&wl.programs(), witness, EngineConfig::functional());
            assert!(
                outcome.anomalous(),
                "{witness}: expected the anomaly, got {outcome:?}"
            );
        }
    }

    #[test]
    fn doctors_minimal_fix_kills_the_anomaly_under_the_same_schedule() {
        let wl = CorpusWorkload::DoctorsOnCall;
        let report = wl.check_robustness(SfuTreatment::AsLockOnly, EdgeCost::default());
        let fixed = strategy_programs(&wl, FixStrategy::MinimalFix, SfuTreatment::AsLockOnly);
        for witness in &report.witnesses {
            let outcome = run_witness_script(&fixed, witness, EngineConfig::functional());
            assert!(
                outcome.report.serializable,
                "{witness}: fixed mix must certify serializable, got {outcome:?}"
            );
        }
    }

    #[test]
    fn read_only_triple_witness_is_a_three_transaction_cycle() {
        let wl = CorpusWorkload::ReadOnlyTriple;
        let report = wl.check_robustness(SfuTreatment::AsLockOnly, EdgeCost::default());
        let outcome = run_witness_script(
            &wl.programs(),
            &report.witnesses[0],
            EngineConfig::functional(),
        );
        assert!(outcome.anomalous(), "{outcome:?}");
        assert!(
            outcome.report.witness.len() >= 3,
            "the read-only anomaly needs all three transactions: {:?}",
            outcome.report.witness
        );
    }
}
