//! The four corpus workloads and their ground-truth verdicts.
//!
//! Each entry is a transaction mix from the SI-anomaly literature,
//! declared as [`Program`] footprints and exposed through
//! [`WorkloadSpec`] so the robustness checker, the bench matrix and the
//! cross-validation tests all consume one definition. The
//! [`CorpusWorkload::expected_robust`] verdicts are the hand-derived
//! ground truth the checker is tested against — a checker regression
//! that flips one of them fails loudly rather than silently re-deriving
//! its own expectation.

use sicost_core::{Access, AccessMode, KeySpec, Program, WorkloadSpec};

/// A read of `table` at the fixed row `name` (`Const` key).
fn read_const(table: &str, name: &str) -> Access {
    Access {
        table: table.into(),
        key: KeySpec::Const(name.into()),
        mode: AccessMode::Read,
    }
}

/// A write of `table` at the fixed row `name` (`Const` key).
fn write_const(table: &str, name: &str) -> Access {
    Access {
        table: table.into(),
        key: KeySpec::Const(name.into()),
        mode: AccessMode::Write,
    }
}

/// A predicate read over `table` (`Predicate` key: a row *set*).
fn read_pred(table: &str, pred: &str) -> Access {
    Access {
        table: table.into(),
        key: KeySpec::Predicate(pred.into()),
        mode: AccessMode::Read,
    }
}

/// The anomaly workload corpus.
///
/// The variants double as [`WorkloadSpec`] implementations; use
/// [`CorpusWorkload::ALL`] to sweep the whole corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorpusWorkload {
    /// **Doctors on call** (write skew): two doctors each check that the
    /// *other* is still on call before going off duty. Under SI both
    /// checks read the same snapshot and both doctors leave. Two
    /// symmetric dangerous structures; one promoted edge fixes both.
    /// **Not robust.**
    DoctorsOnCall,
    /// **Long fork**: two blind single-row writers and a read-only
    /// auditor reading both rows. Both edges out of the auditor are
    /// vulnerable, but no pivot has a vulnerable edge *in and* out — the
    /// long-fork anomaly requires parallel SI, which SI forbids.
    /// **Robust**, and the cheapest possible demonstration that
    /// vulnerable edges alone prove nothing.
    LongFork,
    /// **Read-only triple** (Fekete, O'Neil & O'Neil 2004): a depositor,
    /// a check-writer and a read-only auditor on one customer's savings
    /// and checking rows. The auditor *creates* the anomaly: the
    /// two-program subset is serializable. One three-edge witness
    /// `Audit --v--> WriteCheck --v--> Deposit`; the minimal fix
    /// promotes the updater-side edge, sparing the read-only program.
    /// **Not robust.**
    ReadOnlyTriple,
    /// **TPC-C lite**: an order/payment/status/delivery mix in the shape
    /// that makes full TPC-C serializable under SI (Fekete et al.,
    /// TODS 2005): every read of a contended row is accompanied by a
    /// write the conflicting program also performs, so the only
    /// vulnerable edges leave the read-only status program and no
    /// dangerous structure forms. **Robust.**
    TpccLite,
    /// **Predicate skew**: the doctors' write skew restated with the
    /// guard as a *predicate* read (`COUNT(*) WHERE on_call`) instead of
    /// two point reads — each doctor scans the duty roster before
    /// writing only their own row. Same two symmetric dangerous
    /// structures, but promotion is **inapplicable** (§II-C: an identity
    /// update cannot cover rows the predicate did not return), so the
    /// minimal fix — and the `PromoteAll` sweep cell — must fall back to
    /// materialization on one shared conflict row. **Not robust.**
    PredicateSkew,
}

impl CorpusWorkload {
    /// The whole corpus, in report order.
    pub const ALL: [CorpusWorkload; 5] = [
        CorpusWorkload::DoctorsOnCall,
        CorpusWorkload::LongFork,
        CorpusWorkload::ReadOnlyTriple,
        CorpusWorkload::TpccLite,
        CorpusWorkload::PredicateSkew,
    ];

    /// Ground-truth SI-robustness of the declared mix, hand-derived in
    /// the variant docs. The checker must agree (tested).
    pub fn expected_robust(&self) -> bool {
        match self {
            CorpusWorkload::DoctorsOnCall
            | CorpusWorkload::ReadOnlyTriple
            | CorpusWorkload::PredicateSkew => false,
            CorpusWorkload::LongFork | CorpusWorkload::TpccLite => true,
        }
    }

    /// Stable program (= driver kind) names, in [`WorkloadSpec::programs`]
    /// order. Strategy transformations keep program names and order, so
    /// these label every cell of the sweep.
    pub fn kind_names(&self) -> &'static [&'static str] {
        match self {
            CorpusWorkload::DoctorsOnCall => &["EndShiftX", "EndShiftY"],
            CorpusWorkload::LongFork => &["CreditX", "CreditY", "Audit"],
            CorpusWorkload::ReadOnlyTriple => &["Deposit", "WriteCheck", "Audit"],
            CorpusWorkload::TpccLite => &["NewOrder", "Payment", "OrderStatus", "Delivery"],
            CorpusWorkload::PredicateSkew => &["VacateX", "VacateY"],
        }
    }
}

impl WorkloadSpec for CorpusWorkload {
    fn name(&self) -> &'static str {
        match self {
            CorpusWorkload::DoctorsOnCall => "doctors",
            CorpusWorkload::LongFork => "long-fork",
            CorpusWorkload::ReadOnlyTriple => "read-only-triple",
            CorpusWorkload::TpccLite => "tpcc-lite",
            CorpusWorkload::PredicateSkew => "predicate-skew",
        }
    }

    fn programs(&self) -> Vec<Program> {
        match self {
            CorpusWorkload::DoctorsOnCall => vec![
                Program::new(
                    "EndShiftX",
                    [],
                    vec![
                        read_const("Oncall", "dr-x"),
                        read_const("Oncall", "dr-y"),
                        write_const("Oncall", "dr-x"),
                    ],
                ),
                Program::new(
                    "EndShiftY",
                    [],
                    vec![
                        read_const("Oncall", "dr-x"),
                        read_const("Oncall", "dr-y"),
                        write_const("Oncall", "dr-y"),
                    ],
                ),
            ],
            CorpusWorkload::LongFork => vec![
                Program::new("CreditX", [], vec![write_const("Acct", "x")]),
                Program::new("CreditY", [], vec![write_const("Acct", "y")]),
                Program::new(
                    "Audit",
                    [],
                    vec![read_const("Acct", "x"), read_const("Acct", "y")],
                ),
            ],
            CorpusWorkload::ReadOnlyTriple => vec![
                Program::new(
                    "Deposit",
                    [],
                    vec![read_const("Saving", "acct"), write_const("Saving", "acct")],
                ),
                Program::new(
                    "WriteCheck",
                    [],
                    vec![
                        read_const("Saving", "acct"),
                        read_const("Checking", "acct"),
                        write_const("Checking", "acct"),
                    ],
                ),
                Program::new(
                    "Audit",
                    [],
                    vec![read_const("Saving", "acct"), read_const("Checking", "acct")],
                ),
            ],
            CorpusWorkload::TpccLite => vec![
                Program::new(
                    "NewOrder",
                    ["W", "C"],
                    vec![
                        Access::read("Warehouse", "W"),
                        Access::read("District", "W"),
                        Access::write("District", "W"),
                        Access::read("Stock", "W"),
                        Access::write("Stock", "W"),
                        Access::write("Order", "C"),
                    ],
                ),
                Program::new(
                    "Payment",
                    ["W", "C"],
                    vec![
                        Access::read("Warehouse", "W"),
                        Access::write("Warehouse", "W"),
                        Access::read("District", "W"),
                        Access::write("District", "W"),
                        Access::read("Customer", "C"),
                        Access::write("Customer", "C"),
                    ],
                ),
                Program::new(
                    "OrderStatus",
                    ["C"],
                    vec![Access::read("Customer", "C"), Access::read("Order", "C")],
                ),
                Program::new(
                    "Delivery",
                    ["C"],
                    vec![
                        Access::read("Order", "C"),
                        Access::write("Order", "C"),
                        Access::read("Customer", "C"),
                        Access::write("Customer", "C"),
                    ],
                ),
            ],
            CorpusWorkload::PredicateSkew => vec![
                Program::new(
                    "VacateX",
                    [],
                    vec![read_pred("Duty", "on_call"), write_const("Duty", "dr-x")],
                ),
                Program::new(
                    "VacateY",
                    [],
                    vec![read_pred("Duty", "on_call"), write_const("Duty", "dr-y")],
                ),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sicost_core::{EdgeCost, SfuTreatment, Technique};

    #[test]
    fn checker_agrees_with_the_literature_on_every_entry() {
        for wl in CorpusWorkload::ALL {
            for sfu in [SfuTreatment::AsLockOnly, SfuTreatment::AsWrite] {
                let report = wl.check_robustness(sfu, EdgeCost::default());
                assert_eq!(
                    report.robust(),
                    wl.expected_robust(),
                    "{} under sfu={sfu}: checker disagrees with ground truth\n{}",
                    wl.name(),
                    report.render()
                );
                assert_eq!(report.residual_structures, 0);
            }
        }
    }

    #[test]
    fn doctors_write_skew_has_two_symmetric_witnesses_and_a_one_edge_fix() {
        let report = CorpusWorkload::DoctorsOnCall
            .check_robustness(SfuTreatment::AsLockOnly, EdgeCost::default());
        assert_eq!(report.witnesses.len(), 2, "{}", report.render());
        assert_eq!(report.fix_set.len(), 1, "one promotion breaks both pivots");
        assert_eq!(report.fix_set[0].technique, Technique::PromoteUpdate);
        assert!(report.fix_optimal);
    }

    #[test]
    fn long_fork_is_robust_despite_two_vulnerable_edges() {
        let report = CorpusWorkload::LongFork
            .check_robustness(SfuTreatment::AsLockOnly, EdgeCost::default());
        assert!(report.robust());
        assert_eq!(
            report.vulnerable_edges,
            vec![
                ("Audit".into(), "CreditX".into()),
                ("Audit".into(), "CreditY".into())
            ],
            "both auditor edges are vulnerable yet no structure forms"
        );
        assert!(report.fix_set.is_empty());
    }

    #[test]
    fn read_only_triple_witness_and_fix_spare_the_read_only_program() {
        let report = CorpusWorkload::ReadOnlyTriple
            .check_robustness(SfuTreatment::AsLockOnly, EdgeCost::default());
        assert_eq!(report.witnesses.len(), 1);
        let w = &report.witnesses[0];
        assert_eq!(
            (w.from.as_str(), w.pivot.as_str(), w.to.as_str()),
            ("Audit", "WriteCheck", "Deposit")
        );
        assert_eq!(report.fix_set.len(), 1);
        let fix = &report.fix_set[0];
        assert_eq!(
            (fix.from.as_str(), fix.to.as_str()),
            ("WriteCheck", "Deposit"),
            "the read-only-penalised cover picks the updater-side edge"
        );
        assert_eq!(report.cost_delta.read_only_programs_made_updaters, 0);
        assert!(report.fix_optimal);
    }

    /// The predicate entry exists to pin the Materialize-only corner:
    /// promotion is undefined on its vulnerable edges, so the verified
    /// minimal fix must consist of materializations — and like the
    /// doctors, one materialized edge shields the symmetric one for free.
    #[test]
    fn predicate_skew_minimal_fix_is_materialize_only() {
        let report = CorpusWorkload::PredicateSkew
            .check_robustness(SfuTreatment::AsLockOnly, EdgeCost::default());
        assert!(!report.robust());
        assert_eq!(report.witnesses.len(), 2, "{}", report.render());
        assert!(!report.fix_set.is_empty());
        for fix in &report.fix_set {
            assert_eq!(
                fix.technique,
                Technique::Materialize,
                "promotion is inapplicable to a predicate read: {}",
                report.render()
            );
        }
        assert_eq!(
            report.fix_set.len(),
            1,
            "one materialized edge shields the symmetric structure too"
        );
        assert_eq!(report.residual_structures, 0, "the fix verifies safe");
    }

    #[test]
    fn tpcc_lite_is_robust_with_vulnerable_edges_only_out_of_order_status() {
        let report = CorpusWorkload::TpccLite
            .check_robustness(SfuTreatment::AsLockOnly, EdgeCost::default());
        assert!(report.robust(), "{}", report.render());
        assert!(!report.vulnerable_edges.is_empty());
        for (from, _) in &report.vulnerable_edges {
            assert_eq!(from, "OrderStatus");
        }
    }
}
