//! The generic footprint interpreter and the strategy matrix.
//!
//! [`CorpusDb`] turns *any* program mix into an executable database: one
//! `(Id INT PRIMARY KEY, Val INT)` table per table named in the
//! footprints (plus the reserved [`CONFLICT_TABLE`], so strategy-
//! transformed mixes run unchanged), populated with a small parameter
//! domain and one fixed row per `Const` key. Program instances execute
//! access-by-access against the real engine: `Read` is a snapshot read,
//! `SfuRead` a `SELECT … FOR UPDATE`, `Write` an update of the selected
//! row. The MVSG certifier cares only about which rows are read and
//! written, so this direct interpretation is exactly what the SDG
//! analyses — no application semantics needed.
//!
//! [`FixStrategy`] names the four program variants every corpus workload
//! is swept under, mirroring SmallBank's strategy axis: the declared mix,
//! the checker's minimal fix, and the two sledgehammers.

use sicost_common::{TableId, Xoshiro256};
use sicost_core::{
    apply, AccessMode, EdgeCost, KeySpec, Program, Sdg, SfuTreatment, StrategyPlan, Technique,
    WorkloadSpec, CONFLICT_TABLE,
};
use sicost_engine::{Database, EngineConfig, HistoryObserver, Transaction, TxnError};
use sicost_storage::{ColumnDef, ColumnType, Predicate, Row, TableSchema, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Default parameter domain: `Param` keys bind to rows `0..PARAM_ROWS`.
/// Small on purpose — the corpus exists to *provoke* conflicts.
pub const PARAM_ROWS: i64 = 4;

/// First row id used for `Const` keys, clear of the parameter domain.
const CONST_BASE: i64 = 1_000;

/// A parameter binding: one concrete row id per parameter name.
///
/// Bindings are what turn a program (a parameterised footprint) into an
/// instance (a transaction). The same binding object can serve several
/// programs at once — parameter names are global within a script, which
/// is how the witness script ties the colliding parameters of its three
/// instances to one row.
#[derive(Debug, Clone, Default)]
pub struct Binding(BTreeMap<String, i64>);

impl Binding {
    /// An empty binding (sufficient for all-`Const` mixes).
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `param` to `row` (builder-style).
    pub fn with(mut self, param: impl Into<String>, row: i64) -> Self {
        self.0.insert(param.into(), row);
        self
    }

    /// Draws a uniform binding for `params` over `0..param_rows`.
    pub fn sample(params: &[String], rng: &mut Xoshiro256, param_rows: i64) -> Self {
        let mut b = Self::new();
        for p in params {
            b.0.insert(p.clone(), rng.next_below(param_rows as u64) as i64);
        }
        b
    }

    /// Binds every parameter of every program to row 0 — the collision
    /// scenario the SDG's vulnerability analysis reasons about.
    pub fn zero(programs: &[Program]) -> Self {
        let mut b = Self::new();
        for p in programs {
            for param in &p.params {
                b.0.insert(param.clone(), 0);
            }
        }
        b
    }

    /// The row bound to `param`.
    ///
    /// # Panics
    /// If the parameter is unbound — a binding/footprint mismatch is a
    /// harness bug, not a runtime condition.
    pub fn row(&self, param: &str) -> i64 {
        *self
            .0
            .get(param)
            .unwrap_or_else(|| panic!("parameter :{param} is unbound"))
    }
}

/// An executable database synthesised from a program mix.
pub struct CorpusDb {
    db: Database,
    tables: BTreeMap<String, TableId>,
    const_ids: BTreeMap<String, i64>,
    param_rows: i64,
}

impl CorpusDb {
    /// Builds and populates a database able to execute `programs`.
    ///
    /// Every table named by any footprint exists (plus the reserved
    /// [`CONFLICT_TABLE`]), each with rows `0..param_rows` and one row
    /// per distinct `Const` key name (shared across tables, so equal
    /// constants collide exactly as the SDG assumes).
    ///
    /// # Panics
    /// On schema or population failure — both are static properties of
    /// the mix, so failing loudly at build time is correct.
    pub fn build(
        programs: &[Program],
        param_rows: i64,
        engine: EngineConfig,
        observer: Option<Arc<dyn HistoryObserver>>,
    ) -> Self {
        let mut table_names: BTreeSet<String> = programs
            .iter()
            .flat_map(|p| p.accesses.iter().map(|a| a.table.clone()))
            .collect();
        table_names.insert(CONFLICT_TABLE.to_string());
        let const_names: BTreeSet<String> = programs
            .iter()
            .flat_map(|p| p.accesses.iter())
            .filter_map(|a| match &a.key {
                KeySpec::Const(c) => Some(c.clone()),
                _ => None,
            })
            .collect();
        let const_ids: BTreeMap<String, i64> = const_names
            .into_iter()
            .enumerate()
            .map(|(i, c)| (c, CONST_BASE + i as i64))
            .collect();

        let mut builder = Database::builder();
        for name in &table_names {
            builder = builder
                .table(
                    TableSchema::new(
                        name,
                        vec![
                            ColumnDef::new("Id", ColumnType::Int),
                            ColumnDef::new("Val", ColumnType::Int),
                        ],
                        0,
                        vec![],
                    )
                    .expect("static corpus schema"),
                )
                .unwrap_or_else(|e| panic!("create table {name}: {e}"));
        }
        builder = builder.config(engine);
        if let Some(obs) = observer {
            builder = builder.observer(obs);
        }
        let db = builder.build();

        let mut tables = BTreeMap::new();
        for name in &table_names {
            let id = db.table_id(name).expect("just created");
            let rows = (0..param_rows)
                .chain(const_ids.values().copied())
                .map(|i| Row::new(vec![Value::int(i), Value::int(0)]))
                .collect::<Vec<_>>();
            db.bulk_load(id, rows).expect("populate corpus table");
            tables.insert(name.clone(), id);
        }
        Self {
            db,
            tables,
            const_ids,
            param_rows,
        }
    }

    /// The underlying engine database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The parameter domain size this database was populated for.
    pub fn param_rows(&self) -> i64 {
        self.param_rows
    }

    /// Resolves a single-row key spec to the concrete row id under
    /// `binding`.
    ///
    /// # Panics
    /// On `Predicate` keys, which denote *sets* of rows — [`CorpusDb::step`]
    /// executes those as table scans instead of resolving a row id.
    pub fn resolve(&self, key: &KeySpec, binding: &Binding) -> i64 {
        match key {
            KeySpec::Param(p) => binding.row(p),
            KeySpec::Const(c) => *self
                .const_ids
                .get(c)
                .unwrap_or_else(|| panic!("const key '{c}' not in the built mix")),
            KeySpec::Predicate(p) => {
                panic!("predicate key ({p}) denotes a row set, not a single row")
            }
        }
    }

    /// Executes one access of a program instance inside `tx`.
    ///
    /// Writes store `tag` in `Val` — a blind single-row update. Values
    /// carry no application semantics here; conflicts (and therefore the
    /// MVSG) depend only on which rows each transaction reads and writes.
    ///
    /// A `Predicate` read executes as a whole-table snapshot scan: the
    /// footprint model treats a predicate as denoting an arbitrary
    /// parameter-dependent row set, and reading every row is the superset
    /// that realises every conflict the SDG conservatively assumes
    /// (including the phantom-shaped ones a selective predicate would
    /// produce under some binding).
    ///
    /// # Panics
    /// On a `Predicate` key in `SfuRead` or `Write` mode — the strategy
    /// transformations never produce those (promotion is inapplicable to
    /// predicate reads; materialization lands on a `Const` row).
    pub fn step(
        &self,
        tx: &mut Transaction<'_>,
        access: &sicost_core::Access,
        binding: &Binding,
        tag: i64,
    ) -> Result<(), TxnError> {
        let table = *self
            .tables
            .get(&access.table)
            .unwrap_or_else(|| panic!("table {} not in the built mix", access.table));
        if let KeySpec::Predicate(p) = &access.key {
            assert!(
                access.mode == AccessMode::Read,
                "predicate key ({p}) is only executable as a plain read"
            );
            tx.scan(table, &Predicate::True)?;
            return Ok(());
        }
        let id = self.resolve(&access.key, binding);
        let key = Value::int(id);
        match access.mode {
            AccessMode::Read => {
                tx.read(table, &key)?;
            }
            AccessMode::SfuRead => {
                tx.read_for_update(table, &key)?;
            }
            AccessMode::Write => {
                tx.update(table, &key, Row::new(vec![Value::int(id), Value::int(tag)]))?;
            }
        }
        Ok(())
    }

    /// Runs one full instance of `program` under `binding`: begin, every
    /// access in footprint order, commit. On any engine error the
    /// transaction is rolled back and the error returned.
    pub fn run_program(
        &self,
        program: &Program,
        binding: &Binding,
        tag: i64,
    ) -> Result<(), TxnError> {
        let mut tx = self.db.begin();
        for access in &program.accesses {
            if let Err(e) = self.step(&mut tx, access, binding, tag) {
                tx.rollback();
                return Err(e);
            }
        }
        tx.commit().map(|_| ())
    }
}

/// The strategy axis of the corpus sweep — which program variant runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FixStrategy {
    /// The declared mix, untouched (plain SI).
    Base,
    /// The robustness checker's verified minimal fix set
    /// ([`sicost_core::RobustnessReport::plan`]). Identical to `Base`
    /// when the workload is already robust.
    MinimalFix,
    /// Materialize every vulnerable edge (the paper's MaterializeALL).
    MaterializeAll,
    /// Promote every vulnerable edge's read to an update (PromoteALL).
    PromoteAll,
}

impl FixStrategy {
    /// All strategies, in sweep order.
    pub const ALL: [FixStrategy; 4] = [
        FixStrategy::Base,
        FixStrategy::MinimalFix,
        FixStrategy::MaterializeAll,
        FixStrategy::PromoteAll,
    ];

    /// Stable label used in reports and trace files.
    pub fn name(&self) -> &'static str {
        match self {
            FixStrategy::Base => "base",
            FixStrategy::MinimalFix => "minimal-fix",
            FixStrategy::MaterializeAll => "materialize-all",
            FixStrategy::PromoteAll => "promote-all",
        }
    }
}

impl std::fmt::Display for FixStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The executable program set of one (workload × strategy) cell.
///
/// `Base` returns the declared programs; `MinimalFix` the checker's
/// verified fix ([`sicost_core::check`]); the ALL variants apply the
/// corresponding blanket plan to every vulnerable edge. `PromoteAll`
/// promotes every edge where promotion is defined and falls back to
/// materialization on vulnerable predicate reads
/// ([`StrategyPlan::all_vulnerable_auto`]), so every corpus entry —
/// including predicate mixes — runs under all four strategies.
pub fn strategy_programs(
    spec: &dyn WorkloadSpec,
    strategy: FixStrategy,
    sfu: SfuTreatment,
) -> Vec<Program> {
    let base = spec.programs();
    match strategy {
        FixStrategy::Base => base,
        FixStrategy::MinimalFix => {
            spec.check_robustness(sfu, EdgeCost::default())
                .fixed_programs
        }
        FixStrategy::MaterializeAll => {
            let sdg = Sdg::build(&base, sfu);
            let plan = StrategyPlan::all_vulnerable(&sdg, Technique::Materialize);
            apply(&sdg, &plan).expect("materialize-all always applies")
        }
        FixStrategy::PromoteAll => {
            let sdg = Sdg::build(&base, sfu);
            let plan = StrategyPlan::all_vulnerable_auto(&sdg);
            apply(&sdg, &plan).expect("the per-edge auto plan always applies")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sicost_core::Access;

    fn tiny_mix() -> Vec<Program> {
        vec![
            Program::new(
                "Writer",
                ["N"],
                vec![Access::read("T", "N"), Access::write("T", "N")],
            ),
            Program::new(
                "Reader",
                ["N"],
                vec![
                    Access::read("T", "N"),
                    Access {
                        table: "U".into(),
                        key: KeySpec::Const("hot".into()),
                        mode: AccessMode::Read,
                    },
                ],
            ),
        ]
    }

    #[test]
    fn interpreter_builds_and_commits_footprints() {
        let mix = tiny_mix();
        let db = CorpusDb::build(&mix, PARAM_ROWS, EngineConfig::functional(), None);
        let binding = Binding::new().with("N", 2);
        db.run_program(&mix[0], &binding, 7)
            .expect("writer commits");
        db.run_program(&mix[1], &binding, 8)
            .expect("reader commits");
        // The blind write landed: row 2 of T now holds Val = 7.
        let t = db.db().table_id("T").expect("table T");
        let mut tx = db.db().begin();
        let row = tx.read(t, &Value::int(2)).expect("read back").expect("row");
        assert_eq!(row.int(1), 7);
        tx.rollback();
    }

    #[test]
    fn const_keys_resolve_to_one_shared_row() {
        let mix = tiny_mix();
        let db = CorpusDb::build(&mix, PARAM_ROWS, EngineConfig::functional(), None);
        let a = db.resolve(&KeySpec::Const("hot".into()), &Binding::new());
        let b = db.resolve(&KeySpec::Const("hot".into()), &Binding::new());
        assert_eq!(a, b);
        assert!(
            a >= super::CONST_BASE,
            "consts live outside the param domain"
        );
    }

    #[test]
    fn zero_binding_covers_every_parameter() {
        let mix = tiny_mix();
        let b = Binding::zero(&mix);
        assert_eq!(b.row("N"), 0);
    }

    #[test]
    fn base_strategy_returns_the_declared_programs() {
        struct S;
        impl WorkloadSpec for S {
            fn name(&self) -> &'static str {
                "tiny"
            }
            fn programs(&self) -> Vec<Program> {
                tiny_mix()
            }
        }
        let progs = strategy_programs(&S, FixStrategy::Base, SfuTreatment::AsLockOnly);
        assert_eq!(progs, tiny_mix());
    }
}
