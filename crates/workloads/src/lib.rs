//! The **anomaly workload corpus** and its executable model.
//!
//! SmallBank is the paper's single worked example; this crate grows it
//! into a corpus of declared transaction mixes whose SI-robustness is
//! known from the literature, each expressed as
//! [`sicost_core::WorkloadSpec`] footprints:
//!
//! * [`CorpusWorkload::DoctorsOnCall`] — the classic write-skew pair
//!   (two doctors may not both go off call): **not robust**;
//! * [`CorpusWorkload::LongFork`] — two blind writers and an auditor
//!   reading both rows: **robust** against SI (the long-fork anomaly
//!   needs *parallel* SI, which SI itself forbids);
//! * [`CorpusWorkload::ReadOnlyTriple`] — Fekete, O'Neil & O'Neil's
//!   read-only-transaction anomaly as a three-program mix: **not
//!   robust**, with a three-edge witness cycle;
//! * [`CorpusWorkload::TpccLite`] — a reduced order/payment/status/
//!   delivery mix in the shape that makes full TPC-C run serializably
//!   under SI: vulnerable edges exist but none are consecutive, so it is
//!   **robust**;
//! * [`CorpusWorkload::PredicateSkew`] — the write skew restated with a
//!   *predicate* guard read, so promotion is inapplicable and the only
//!   admissible fix is materialization: **not robust**. The interpreter
//!   executes the predicate read as a whole-table snapshot scan.
//!
//! What makes the corpus more than a list of [`sicost_core::Program`]
//! declarations is the **generic footprint interpreter** ([`CorpusDb`]):
//! it synthesises a database schema from any program mix (one `(Id,
//! Val)` table per footprint table plus the reserved `Conflict` table)
//! and executes program instances access-by-access against the real
//! engine. The MVSG certifier only sees reads and writes, so executing
//! footprints *directly* is enough to test the SDG theory end to end —
//! every static verdict from [`sicost_core::check`] is confronted with
//! dynamic evidence:
//!
//! * concurrent seeded driver runs with a sampling certifier attached
//!   (robust mixes must show **zero** SI anomalies);
//! * the deterministic [`run_witness_script`] that turns a static
//!   [`sicost_core::Witness`] `P --v--> Q --v--> R` into a concrete
//!   interleaving (not-robust mixes must exhibit a non-serializable
//!   history; after the checker's minimal fix the same script must
//!   certify serializable).
//!
//! [`FixStrategy`] enumerates the program variants swept by the
//! `robustness` bench harness and the `cross_validate` test.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod corpus;
pub mod driver_adapter;
pub mod exec;
pub mod witness;

pub use corpus::CorpusWorkload;
pub use driver_adapter::{CorpusDriver, CorpusRequest};
pub use exec::{strategy_programs, Binding, CorpusDb, FixStrategy};
pub use witness::{run_witness_script, ScriptOutcome};
