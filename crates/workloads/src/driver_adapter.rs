//! Adapter exposing a corpus cell to the closed-system driver.
//!
//! One [`CorpusDriver`] is one cell of the workloads × strategies
//! matrix: a [`CorpusWorkload`] executed under a [`FixStrategy`] against
//! a fresh [`CorpusDb`]. Attach a
//! [`sicost_mvsg::SamplingCertifier`] at construction and the seeded
//! concurrent run becomes the *dynamic* side of the robustness
//! cross-validation: a statically robust cell must certify zero SI
//! anomalies.

use crate::corpus::CorpusWorkload;
use crate::exec::{strategy_programs, Binding, CorpusDb, FixStrategy, PARAM_ROWS};
use sicost_common::Xoshiro256;
use sicost_core::{Program, SfuTreatment};
use sicost_driver::{Outcome, Workload};
use sicost_engine::{EngineConfig, HistoryObserver, TxnError};
use std::sync::Arc;

/// One sampled client request: a program instance, replayable across
/// retry attempts (same binding, same tag).
#[derive(Debug, Clone)]
pub struct CorpusRequest {
    /// Index into the cell's program list (= kind index).
    pub program: usize,
    /// Concrete parameter binding.
    pub binding: Binding,
    /// Value written by the instance's blind updates.
    pub tag: i64,
}

/// A measurable corpus cell: programs, database, and request generator.
pub struct CorpusDriver {
    workload: CorpusWorkload,
    programs: Vec<Program>,
    db: CorpusDb,
}

impl CorpusDriver {
    /// Builds the cell: derives the strategy's program variant, then a
    /// database able to execute it, optionally observed (pass a
    /// [`sicost_mvsg::SamplingCertifier`] to certify the run online).
    pub fn new(
        workload: CorpusWorkload,
        strategy: FixStrategy,
        sfu: SfuTreatment,
        engine: EngineConfig,
        observer: Option<Arc<dyn HistoryObserver>>,
    ) -> Self {
        let programs = strategy_programs(&workload, strategy, sfu);
        let db = CorpusDb::build(&programs, PARAM_ROWS, engine, observer);
        Self {
            workload,
            programs,
            db,
        }
    }

    /// The executable programs of this cell (strategy already applied).
    pub fn programs(&self) -> &[Program] {
        &self.programs
    }

    /// The database under test.
    pub fn db(&self) -> &CorpusDb {
        &self.db
    }
}

fn classify(result: Result<(), TxnError>) -> Outcome {
    match result {
        Ok(()) => Outcome::Committed,
        Err(TxnError::Deadlock) => Outcome::Deadlock,
        Err(TxnError::Transient(_)) => Outcome::TransientFault,
        Err(e) if e.is_serialization_failure() => Outcome::SerializationFailure,
        Err(_) => Outcome::ApplicationRollback,
    }
}

impl Workload for CorpusDriver {
    type Request = CorpusRequest;

    fn kinds(&self) -> Vec<&'static str> {
        self.workload.kind_names().to_vec()
    }

    fn sample(&self, rng: &mut Xoshiro256) -> (usize, CorpusRequest) {
        let program = rng.next_below(self.programs.len() as u64) as usize;
        let binding = Binding::sample(&self.programs[program].params, rng, PARAM_ROWS);
        let tag = rng.next_below(i64::MAX as u64) as i64;
        (
            program,
            CorpusRequest {
                program,
                binding,
                tag,
            },
        )
    }

    fn execute(&self, request: &CorpusRequest, _attempt: u32) -> Outcome {
        classify(self.db.run_program(
            &self.programs[request.program],
            &request.binding,
            request.tag,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sicost_driver::{run, RunConfig};

    #[test]
    fn a_corpus_cell_runs_under_the_driver_and_makes_progress() {
        let driver = CorpusDriver::new(
            CorpusWorkload::DoctorsOnCall,
            FixStrategy::Base,
            SfuTreatment::AsLockOnly,
            EngineConfig::functional(),
            None,
        );
        assert_eq!(driver.kinds().len(), driver.programs().len());
        let metrics = run(&driver, &RunConfig::quick(4));
        assert!(metrics.commits() > 0, "the cell must make progress");
    }

    #[test]
    fn classification_maps_engine_errors_to_driver_outcomes() {
        assert_eq!(classify(Ok(())), Outcome::Committed);
        assert_eq!(classify(Err(TxnError::Deadlock)), Outcome::Deadlock);
        assert_eq!(
            classify(Err(TxnError::Transient("x".into()))),
            Outcome::TransientFault
        );
        assert_eq!(
            classify(Err(TxnError::Constraint("x".into()))),
            Outcome::ApplicationRollback
        );
    }
}
