//! Cross-shard oracle: the serialization-point stripe count is a
//! performance knob, never a semantics knob. Every accepted/rejected
//! outcome — the scripted SmallBank anomaly across strategies and engine
//! modes, and a deterministic batch of conflict scripts across the SI/SSI
//! modes — must be bit-identical at 1, 4 and 16 shards (1 reproduces the
//! old fully-global engine).

use sicost_common::Money;
use sicost_engine::{CcMode, EngineConfig};
use sicost_smallbank::anomaly::run_write_skew_script;
use sicost_smallbank::{SbError, SmallBank, SmallBankConfig, Strategy};
use sicost_storage::{Row, Value};

const SHARD_COUNTS: [usize; 3] = [1, 4, 16];

/// Stable rendering of a transaction outcome: success or the error's
/// class (serialization failures collapse to one tag so message wording
/// can evolve without breaking the oracle).
fn tag<T>(r: &Result<T, SbError>) -> String {
    match r {
        Ok(_) => "ok".into(),
        Err(e) if e.is_serialization_failure() => "serialization".into(),
        Err(e) => format!("err:{e:?}"),
    }
}

#[test]
fn anomaly_verdicts_are_invariant_under_shard_count() {
    let cases: Vec<(Strategy, EngineConfig, &str)> = vec![
        (Strategy::BaseSI, EngineConfig::functional(), "base-si"),
        (
            Strategy::PromoteWTUpd,
            EngineConfig::functional(),
            "promote",
        ),
        (
            Strategy::MaterializeALL,
            EngineConfig::functional(),
            "materialize",
        ),
        (
            Strategy::BaseSI,
            EngineConfig::functional().with_cc(CcMode::Ssi),
            "ssi",
        ),
        (
            Strategy::BaseSI,
            EngineConfig::functional().with_cc(CcMode::S2pl),
            "s2pl",
        ),
    ];
    for (strategy, engine, label) in cases {
        let mut baseline: Option<String> = None;
        for shards in SHARD_COUNTS {
            let bank = SmallBank::new(
                &SmallBankConfig::small(4),
                engine.clone().with_shards(shards),
                strategy,
            );
            let o = run_write_skew_script(&bank);
            let signature = format!(
                "anomalous={} ts={} wc={} bal={} seen={:?} saving={:?} checking={:?}",
                o.is_anomalous(),
                tag(&o.ts_result),
                tag(&o.wc_result),
                tag(&o.balance_seen),
                o.balance_seen.as_ref().ok(),
                o.final_saving,
                o.final_checking,
            );
            match &baseline {
                None => baseline = Some(signature),
                Some(b) => assert_eq!(
                    &signature, b,
                    "{label}: shards={shards} diverged from the 1-shard baseline"
                ),
            }
        }
    }
}

/// A deterministic, single-threaded batch of conflict scripts against the
/// raw engine API. Runs under the three snapshot-based modes (S2PL is
/// covered by the threaded anomaly script above — its blocking semantics
/// would wedge a single-threaded script). Every per-step outcome, the
/// final balances, and the final commit clock must match across shard
/// counts.
#[test]
fn scripted_semantics_are_invariant_under_shard_count() {
    for cc in [
        CcMode::SiFirstUpdaterWins,
        CcMode::SiFirstCommitterWins,
        CcMode::Ssi,
    ] {
        let mut baseline: Option<String> = None;
        for shards in SHARD_COUNTS {
            let bank = SmallBank::new(
                &SmallBankConfig::small(8),
                EngineConfig::functional().with_cc(cc).with_shards(shards),
                Strategy::BaseSI,
            );
            let db = bank.db();
            let tables = *bank.tables();
            let mut log: Vec<String> = Vec::new();

            // -- Script 1: stale write. T1 snapshots, T2 updates the same
            // row and commits, then T1 writes it.
            {
                let mut t1 = db.begin();
                let _ = t1.read(tables.checking, &Value::int(1));
                let mut t2 = db.begin();
                let w2 = t2.update(
                    tables.checking,
                    &Value::int(1),
                    Row::new(vec![Value::int(1), Value::int(111)]),
                );
                log.push(format!("s1.w2={:?}", w2.is_ok()));
                log.push(format!("s1.c2={:?}", t2.commit().map(|_| ())));
                let w1 = t1.update(
                    tables.checking,
                    &Value::int(1),
                    Row::new(vec![Value::int(1), Value::int(222)]),
                );
                log.push(format!("s1.w1={w1:?}"));
                if w1.is_ok() {
                    log.push(format!("s1.c1={:?}", t1.commit().map(|_| ())));
                }
            }

            // -- Script 2: write skew across two accounts.
            {
                let mut t1 = db.begin();
                let mut t2 = db.begin();
                let _ = t1.read(tables.saving, &Value::int(2));
                let _ = t1.read(tables.checking, &Value::int(2));
                let _ = t2.read(tables.saving, &Value::int(2));
                let _ = t2.read(tables.checking, &Value::int(2));
                let w2 = t2.update(
                    tables.saving,
                    &Value::int(2),
                    Row::new(vec![Value::int(2), Value::int(5)]),
                );
                log.push(format!("s2.w2={:?}", w2.map(|_| ())));
                log.push(format!("s2.c2={:?}", t2.commit().map(|_| ())));
                let w1 = t1.update(
                    tables.checking,
                    &Value::int(2),
                    Row::new(vec![Value::int(2), Value::int(7)]),
                );
                log.push(format!("s2.w1={:?}", w1.as_ref().map(|_| ())));
                if w1.is_ok() {
                    log.push(format!("s2.c1={:?}", t1.commit().map(|_| ())));
                }
            }

            // -- Script 3: duplicate-key insert is a constraint error.
            {
                let mut t = db.begin();
                let ins = t.insert(
                    tables.checking,
                    Row::new(vec![Value::int(3), Value::int(1)]),
                );
                log.push(format!("s3.dup={:?}", ins.is_err()));
                t.rollback();
            }

            // -- Script 4: delete then re-read within one txn, commit, and
            // confirm invisibility after.
            {
                let mut t = db.begin();
                let del = t.delete(tables.saving, &Value::int(4));
                log.push(format!("s4.del={del:?}"));
                let gone = t.read(tables.saving, &Value::int(4)).map(|r| r.is_none());
                log.push(format!("s4.gone={gone:?}"));
                log.push(format!("s4.c={:?}", t.commit().map(|_| ())));
            }

            // -- Script 5: procedure-level ops and the conservation scan.
            log.push(format!(
                "s5.dep={}",
                tag(&bank.deposit_checking(
                    &sicost_smallbank::schema::customer_name(5),
                    Money::dollars(7)
                ))
            ));
            log.push(format!(
                "s5.amal={}",
                tag(&bank.amalgamate(
                    &sicost_smallbank::schema::customer_name(6),
                    &sicost_smallbank::schema::customer_name(7),
                ))
            ));
            log.push(format!(
                "s5.total={:?}",
                sicost_smallbank::schema::total_balance(db, &tables)
            ));

            log.push(format!("clock={:?}", db.clock()));
            let signature = log.join("\n");
            match &baseline {
                None => baseline = Some(signature),
                Some(b) => assert_eq!(
                    &signature, b,
                    "cc={cc:?} shards={shards} diverged from the 1-shard baseline"
                ),
            }
        }
    }
}
