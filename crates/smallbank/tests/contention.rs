//! The mechanism behind Figure 6, pinned deterministically: promotion on
//! the BW edge turns the read-only Balance into a Checking writer, which
//! makes it conflict with DepositChecking and Amalgamate; the WT-side
//! fixes leave Balance untouched.

use sicost_common::Money;
use sicost_engine::EngineConfig;
use sicost_smallbank::{schema::customer_name, SmallBank, SmallBankConfig, Strategy};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Two threads hammer one customer: one with Balance, one with
/// DepositChecking. Returns (balance serialization aborts, deposit
/// serialization aborts).
fn duel(strategy: Strategy) -> (u64, u64) {
    let bank = Arc::new(SmallBank::new(
        &SmallBankConfig::small(4),
        EngineConfig::functional(),
        strategy,
    ));
    let name = customer_name(0);
    let bal_aborts = AtomicU64::new(0);
    let dc_aborts = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let bank2 = Arc::clone(&bank);
        let name2 = name.clone();
        let bal_ref = &bal_aborts;
        let stop_ref = &stop;
        s.spawn(move || {
            for _ in 0..400 {
                if let Err(e) = bank2.balance(&name2) {
                    if e.is_serialization_failure() {
                        bal_ref.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            stop_ref.store(true, Ordering::Relaxed);
        });
        let dc_ref = &dc_aborts;
        let bank3 = Arc::clone(&bank);
        let name3 = name.clone();
        s.spawn(move || {
            while !stop_ref.load(Ordering::Relaxed) {
                if let Err(e) = bank3.deposit_checking(&name3, Money::dollars(1)) {
                    if e.is_serialization_failure() {
                        dc_ref.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        });
    });
    (
        bal_aborts.load(Ordering::Relaxed),
        dc_aborts.load(Ordering::Relaxed),
    )
}

#[test]
fn promote_bw_makes_balance_contend_with_deposits() {
    // Figure 6's striking bars: under PromoteBW-upd, Balance and
    // DepositChecking both update Checking and serialization failures
    // appear on that pair.
    let (bal, dc) = duel(Strategy::PromoteBWUpd);
    assert!(
        bal + dc > 0,
        "promoted Balance must conflict with DepositChecking (bal={bal}, dc={dc})"
    );
}

#[test]
fn wt_side_fixes_leave_balance_conflict_free() {
    for strategy in [
        Strategy::BaseSI,
        Strategy::MaterializeWT,
        Strategy::PromoteWTUpd,
    ] {
        let (bal, dc) = duel(strategy);
        assert_eq!(
            (bal, dc),
            (0, 0),
            "{strategy}: Balance is read-only and DC only conflicts with itself"
        );
    }
}

#[test]
fn materialize_bw_contends_only_via_the_conflict_table() {
    // MaterializeBW puts Conflict updates in Bal and WC, so Bal–DC stays
    // clean (DC does not touch Conflict in this option)…
    let (bal, dc) = duel(Strategy::MaterializeBW);
    assert_eq!(
        (bal, dc),
        (0, 0),
        "Bal–DC must not conflict under MaterializeBW"
    );
    // …which is exactly why its Figure 6 abort profile is mild compared
    // to PromoteBW-upd even though both fix the same edge.
}
