//! The SmallBank programs as [`sicost_core`] footprints, and the mapping
//! from [`Strategy`] to a [`StrategyPlan`] — the bridge between the
//! executable benchmark and the static theory. Tests in this module
//! reproduce the paper's Figure 1 (the SmallBank SDG), Figures 2–3 (the
//! SDGs after each option), and the logic behind Table I.

use crate::strategy::Strategy;
use sicost_core::{
    Access, AccessMode, Program, Sdg, SfuTreatment, StrategyPlan, Technique, WorkloadSpec,
};

/// Program names as used in the SDG (the paper's abbreviations).
pub const BAL: &str = "Bal";
/// WriteCheck.
pub const WC: &str = "WC";
/// TransactSaving.
pub const TS: &str = "TS";
/// Amalgamate.
pub const AMG: &str = "Amg";
/// DepositChecking.
pub const DC: &str = "DC";

/// The five base programs' data footprints (§III-B).
pub fn smallbank_programs() -> Vec<Program> {
    vec![
        Program::new(
            BAL,
            ["N"],
            vec![
                Access::read("Account", "N"),
                Access::read("Saving", "N"),
                Access::read("Checking", "N"),
            ],
        ),
        Program::new(
            WC,
            ["N"],
            vec![
                Access::read("Account", "N"),
                Access::read("Saving", "N"),
                Access::read("Checking", "N"),
                Access::write("Checking", "N"),
            ],
        ),
        Program::new(
            TS,
            ["N"],
            vec![
                Access::read("Account", "N"),
                Access::read("Saving", "N"),
                Access::write("Saving", "N"),
            ],
        ),
        Program::new(
            AMG,
            ["N1", "N2"],
            vec![
                Access::read("Account", "N1"),
                Access::read("Account", "N2"),
                Access::read("Saving", "N1"),
                Access::read("Checking", "N1"),
                Access::read("Checking", "N2"),
                Access::write("Saving", "N1"),
                Access::write("Checking", "N1"),
                Access::write("Checking", "N2"),
            ],
        ),
        Program::new(
            DC,
            ["N"],
            vec![
                Access::read("Account", "N"),
                Access::read("Checking", "N"),
                Access::write("Checking", "N"),
            ],
        ),
    ]
}

/// Builds the base SmallBank SDG under a platform's sfu treatment.
pub fn smallbank_sdg(sfu: SfuTreatment) -> Sdg {
    Sdg::build(&smallbank_programs(), sfu)
}

/// SmallBank as a declared [`WorkloadSpec`]: the same footprints the
/// figures are built from, consumable by the robustness checker and the
/// corpus-wide bench matrix.
#[derive(Debug, Clone, Copy, Default)]
pub struct SmallBankSpec;

impl WorkloadSpec for SmallBankSpec {
    fn name(&self) -> &'static str {
        "smallbank"
    }

    fn programs(&self) -> Vec<Program> {
        smallbank_programs()
    }
}

/// The [`StrategyPlan`] equivalent of each benchmark [`Strategy`]
/// (`BaseSI` maps to the empty plan).
pub fn plan_for(strategy: Strategy) -> StrategyPlan {
    match strategy {
        Strategy::BaseSI => StrategyPlan::default(),
        Strategy::MaterializeWT => StrategyPlan::single(WC, TS, Technique::Materialize),
        Strategy::PromoteWTUpd => StrategyPlan::single(WC, TS, Technique::PromoteUpdate),
        Strategy::PromoteWTSfu => StrategyPlan::single(WC, TS, Technique::PromoteSfu),
        Strategy::MaterializeBW => StrategyPlan::single(BAL, WC, Technique::Materialize),
        Strategy::PromoteBWUpd => StrategyPlan::single(BAL, WC, Technique::PromoteUpdate),
        Strategy::PromoteBWSfu => StrategyPlan::single(BAL, WC, Technique::PromoteSfu),
        Strategy::MaterializeALL => StrategyPlan::all_vulnerable(
            &smallbank_sdg(SfuTreatment::AsLockOnly),
            Technique::Materialize,
        ),
        Strategy::PromoteALL => StrategyPlan::all_vulnerable(
            &smallbank_sdg(SfuTreatment::AsLockOnly),
            Technique::PromoteUpdate,
        ),
    }
}

/// Rows of the paper's Table I for one strategy: per program, the set of
/// *extra* tables it updates compared to the base coding (derived from
/// the modified footprints, not hand-written).
pub fn table_i_row(strategy: Strategy, sfu: SfuTreatment) -> Vec<(String, Vec<String>)> {
    let base = smallbank_programs();
    let sdg = Sdg::build(&base, sfu);
    let modified = sicost_core::apply(&sdg, &plan_for(strategy)).expect("plans are valid");
    base.iter()
        .zip(&modified)
        .map(|(b, m)| {
            let before: std::collections::HashSet<&str> = b.written_tables().into_iter().collect();
            let mut extra: Vec<String> = m
                .written_tables()
                .into_iter()
                .filter(|t| !before.contains(t))
                .map(String::from)
                .collect();
            // sfu promotions: surface as a marker on the table read
            // FOR UPDATE (they add no write in the footprint model).
            for (ba, ma) in b.accesses.iter().zip(&m.accesses) {
                if ba.mode == AccessMode::Read && ma.mode == AccessMode::SfuRead {
                    extra.push(format!("{} (sfu)", ma.table));
                }
            }
            extra.sort();
            (b.name.clone(), extra)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sicost_core::verify_safe;

    /// Figure 1: the exact vulnerable-edge set of the SmallBank SDG.
    #[test]
    fn figure_1_vulnerable_edges() {
        let sdg = smallbank_sdg(SfuTreatment::AsLockOnly);
        let name = |i: usize| sdg.programs()[i].name.as_str();
        let mut vulnerable: Vec<(String, String)> = sdg
            .vulnerable_edges()
            .into_iter()
            .map(|i| {
                let e = &sdg.edges()[i];
                (name(e.from).to_string(), name(e.to).to_string())
            })
            .collect();
        vulnerable.sort();
        let mut expected = vec![
            ("Bal".into(), "WC".into()),
            ("Bal".into(), "TS".into()),
            ("Bal".into(), "Amg".into()),
            ("Bal".into(), "DC".into()),
            ("WC".into(), "TS".into()),
        ];
        expected.sort();
        assert_eq!(
            vulnerable, expected,
            "§III-C: exactly these five vulnerable edges"
        );
    }

    /// §III-C's subtle cases, verified mechanically.
    #[test]
    fn figure_1_subtleties() {
        let sdg = smallbank_sdg(SfuTreatment::AsLockOnly);
        let idx = |n: &str| {
            sdg.programs()
                .iter()
                .position(|p| p.name == n)
                .expect("known program")
        };
        // WC -> Amg not vulnerable: Amg's Saving write comes with a
        // Checking write that WC also writes.
        let e = sdg.edge_between(idx(WC), idx(AMG)).expect("edge exists");
        assert!(!e.vulnerable, "WC -> Amg must be shielded");
        // WC -> TS vulnerable: TS writes Saving but not Checking.
        assert!(sdg.edge_between(idx(WC), idx(TS)).unwrap().vulnerable);
        // TS/DC/Amg have no vulnerable outgoing edges at all.
        for p in [TS, DC, AMG] {
            for e in sdg.edges().iter().filter(|e| e.from == idx(p)) {
                assert!(!e.vulnerable, "{p} must have no vulnerable out-edges");
            }
        }
    }

    /// Figure 1: exactly one dangerous structure, Bal → WC → TS.
    #[test]
    fn figure_1_dangerous_structure() {
        let sdg = smallbank_sdg(SfuTreatment::AsLockOnly);
        let ds = sdg.dangerous_structures();
        assert_eq!(ds.len(), 1, "exactly one dangerous structure");
        let s = ds[0];
        let e1 = &sdg.edges()[s.incoming];
        let e2 = &sdg.edges()[s.outgoing];
        assert_eq!(sdg.programs()[e1.from].name, BAL);
        assert_eq!(sdg.programs()[e1.to].name, WC);
        assert_eq!(sdg.programs()[e2.to].name, TS);
        assert!(!sdg.is_si_serializable());
    }

    /// Figures 2–3 + §III-D: every strategy that claims to guarantee
    /// serializability eliminates all dangerous structures, on the
    /// platform whose sfu semantics it assumes.
    #[test]
    fn figures_2_and_3_strategies_eliminate_the_structure() {
        for strategy in Strategy::all() {
            for sfu in [SfuTreatment::AsLockOnly, SfuTreatment::AsWrite] {
                let sdg = smallbank_sdg(sfu);
                let plan = plan_for(strategy);
                let (_, re) = verify_safe(&sdg, &plan, sfu).expect("plan applies");
                let sfu_is_write = sfu == SfuTreatment::AsWrite;
                assert_eq!(
                    re.is_si_serializable(),
                    strategy.guarantees_serializable(sfu_is_write),
                    "strategy {strategy} under {sfu:?}"
                );
            }
        }
    }

    /// The ALL strategies leave no vulnerable edge anywhere (§III-D c).
    #[test]
    fn all_strategies_remove_every_vulnerability() {
        let sfu = SfuTreatment::AsLockOnly;
        for strategy in [Strategy::MaterializeALL, Strategy::PromoteALL] {
            let sdg = smallbank_sdg(sfu);
            let (_, re) = verify_safe(&sdg, &plan_for(strategy), sfu).unwrap();
            assert!(
                re.vulnerable_edges().is_empty(),
                "{strategy} must remove all vulnerable edges"
            );
        }
    }

    /// Table I, derived: which tables each option makes each program
    /// newly update.
    #[test]
    fn table_i_matches_the_paper() {
        let row = |s: Strategy| table_i_row(s, SfuTreatment::AsWrite);
        let get = |r: &Vec<(String, Vec<String>)>, p: &str| -> Vec<String> {
            r.iter().find(|(n, _)| n == p).expect("program").1.clone()
        };

        let r = row(Strategy::MaterializeWT);
        assert_eq!(get(&r, BAL), Vec::<String>::new());
        assert_eq!(get(&r, WC), vec!["Conflict"]);
        assert_eq!(get(&r, TS), vec!["Conflict"]);

        let r = row(Strategy::PromoteWTUpd);
        assert_eq!(get(&r, WC), vec!["Saving"]);
        assert_eq!(get(&r, TS), Vec::<String>::new());

        let r = row(Strategy::MaterializeBW);
        assert_eq!(get(&r, BAL), vec!["Conflict"]);
        assert_eq!(get(&r, WC), vec!["Conflict"]);

        let r = row(Strategy::PromoteBWUpd);
        assert_eq!(get(&r, BAL), vec!["Checking"]);
        assert_eq!(get(&r, WC), Vec::<String>::new());

        let r = row(Strategy::MaterializeALL);
        for p in [BAL, WC, TS, AMG, DC] {
            assert_eq!(get(&r, p), vec!["Conflict"], "{p}");
        }

        let r = row(Strategy::PromoteALL);
        assert_eq!(get(&r, BAL), vec!["Checking", "Saving"]);
        assert_eq!(get(&r, WC), vec!["Saving"]);
        assert_eq!(get(&r, TS), Vec::<String>::new());

        let r = row(Strategy::PromoteWTSfu);
        assert_eq!(get(&r, WC), vec!["Saving (sfu)"]);
        let r = row(Strategy::PromoteBWSfu);
        assert_eq!(get(&r, BAL), vec!["Checking (sfu)"]);
    }

    /// The robustness checker, pointed at the SmallBank spec, rediscovers
    /// the paper end to end: not robust, one witness (Bal → WC → TS), and
    /// the minimal fix is Option WT by promotion.
    #[test]
    fn checker_rediscovers_the_paper_on_smallbank() {
        let report = SmallBankSpec
            .check_robustness(SfuTreatment::AsLockOnly, sicost_core::EdgeCost::default());
        assert!(!report.robust());
        assert_eq!(report.witnesses.len(), 1);
        assert_eq!(report.witnesses[0].to_string(), "Bal --v--> WC --v--> TS");
        assert_eq!(report.fix_set.len(), 1);
        assert_eq!(
            (
                report.fix_set[0].from.as_str(),
                report.fix_set[0].to.as_str()
            ),
            (WC, TS)
        );
        assert_eq!(report.fix_set[0].technique, Technique::PromoteUpdate);
        assert!(report.fix_optimal);
        // The fix plan is exactly the paper's PromoteWTUpd strategy.
        let (_, re) = verify_safe(
            &smallbank_sdg(SfuTreatment::AsLockOnly),
            &report.plan(),
            SfuTreatment::AsLockOnly,
        )
        .unwrap();
        assert!(re.is_si_serializable());
        // On the commercial platform the verdict is the same (sfu
        // treatment changes nothing for the base coding).
        let com =
            SmallBankSpec.check_robustness(SfuTreatment::AsWrite, sicost_core::EdgeCost::default());
        assert!(!com.robust());
    }

    /// The minimal-cover solver, pointed at SmallBank, independently
    /// discovers the paper's guideline: fix WT, not BW (Balance is
    /// read-only).
    #[test]
    fn cover_solver_recommends_option_wt() {
        let sdg = smallbank_sdg(SfuTreatment::AsLockOnly);
        let sol = sicost_core::minimal_edge_cover(&sdg, sicost_core::EdgeCost::default());
        assert!(sol.optimal);
        assert_eq!(sol.edges.len(), 1);
        let e = &sdg.edges()[sol.edges[0]];
        assert_eq!(sdg.programs()[e.from].name, WC);
        assert_eq!(sdg.programs()[e.to].name, TS);
    }

    /// The executable `Mods` flags and the abstract plans agree on which
    /// programs gain writes (consistency between theory and benchmark).
    #[test]
    fn mods_agree_with_plans() {
        for strategy in Strategy::all() {
            if strategy.uses_sfu() {
                continue; // sfu adds no write in the footprint model
            }
            let rows = table_i_row(strategy, SfuTreatment::AsLockOnly);
            let m = strategy.mods();
            let extra_of = |p: &str| !rows.iter().find(|(n, _)| n == p).unwrap().1.is_empty();
            assert_eq!(
                extra_of(BAL),
                m.bal_conflict || m.bal_ident_checking || m.bal_ident_saving,
                "{strategy} Bal"
            );
            assert_eq!(
                extra_of(WC),
                m.wc_conflict || m.wc_ident_saving,
                "{strategy} WC"
            );
            assert_eq!(extra_of(TS), m.ts_conflict, "{strategy} TS");
            assert_eq!(extra_of(DC), m.dc_conflict, "{strategy} DC");
            assert_eq!(extra_of(AMG), m.amg_conflict, "{strategy} Amg");
        }
    }
}
