//! The five SmallBank transaction programs (§III-B), with the strategy
//! modifications woven in exactly where the paper's Table I puts them.

use crate::schema::{build_database, SmallBankConfig, Tables};
use crate::strategy::{Mods, Strategy};
use sicost_common::Money;
use sicost_engine::{Database, EngineConfig, HistoryObserver, Transaction, TxnError};
use sicost_storage::{Row, Value};
use std::sync::Arc;

/// Outcome domain of the procedures: either the engine aborted us
/// (serialization failure / deadlock) or the application rolled back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SbError {
    /// Engine-level abort (serialization failure, deadlock, constraint).
    Txn(TxnError),
    /// The customer name does not exist (DC/WC/TS/Amg rollback rule).
    AccountMissing,
    /// Negative deposit amount (DC rollback rule).
    InvalidAmount,
    /// TransactSaving would drive savings negative (rollback rule).
    InsufficientFunds,
}

impl From<TxnError> for SbError {
    fn from(e: TxnError) -> Self {
        SbError::Txn(e)
    }
}

impl SbError {
    /// True for engine serialization failures (the aborts Figure 6 counts).
    pub fn is_serialization_failure(&self) -> bool {
        matches!(self, SbError::Txn(e) if e.is_serialization_failure())
    }

    /// True for application-rule rollbacks.
    pub fn is_application_rollback(&self) -> bool {
        matches!(
            self,
            SbError::AccountMissing | SbError::InvalidAmount | SbError::InsufficientFunds
        )
    }
}

impl std::fmt::Display for SbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SbError::Txn(e) => write!(f, "{e}"),
            SbError::AccountMissing => write!(f, "account not found"),
            SbError::InvalidAmount => write!(f, "invalid amount"),
            SbError::InsufficientFunds => write!(f, "insufficient funds"),
        }
    }
}

impl std::error::Error for SbError {}

/// The SmallBank application: a database, its table handles, and the
/// strategy the procedures run with. Share behind an `Arc` across client
/// threads.
pub struct SmallBank {
    db: Database,
    tables: Tables,
    strategy: Strategy,
    mods: Mods,
}

impl SmallBank {
    /// Builds and populates a SmallBank instance.
    pub fn new(config: &SmallBankConfig, engine: EngineConfig, strategy: Strategy) -> Self {
        Self::with_observer(config, engine, strategy, None)
    }

    /// As [`SmallBank::new`], with a history observer for MVSG capture.
    pub fn with_observer(
        config: &SmallBankConfig,
        engine: EngineConfig,
        strategy: Strategy,
        observer: Option<Arc<dyn HistoryObserver>>,
    ) -> Self {
        let (db, tables) = build_database(config, engine, observer);
        Self {
            db,
            tables,
            strategy,
            mods: strategy.mods(),
        }
    }

    /// Wraps an existing database (e.g. one rebuilt by crash recovery
    /// via [`crate::schema::recover_database`]) without repopulating it.
    pub fn adopt(db: Database, tables: Tables, strategy: Strategy) -> Self {
        Self {
            db,
            tables,
            strategy,
            mods: strategy.mods(),
        }
    }

    /// The underlying database (metrics, vacuum, log).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Table handles.
    pub fn tables(&self) -> &Tables {
        &self.tables
    }

    /// The strategy in force.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Total money in the bank (conservation oracle).
    pub fn total_balance(&self) -> Money {
        crate::schema::total_balance(&self.db, &self.tables)
    }

    // ----- shared fragments -------------------------------------------------

    /// `SELECT CustomerId FROM Account WHERE Name = :n`
    fn lookup_cid(&self, tx: &mut Transaction<'_>, name: &str) -> Result<Option<i64>, TxnError> {
        Ok(tx
            .read(self.tables.account, &Value::str(name))?
            .map(|row| row.int(1)))
    }

    fn read_balance(
        &self,
        tx: &mut Transaction<'_>,
        table: sicost_common::TableId,
        cid: i64,
        for_update: bool,
    ) -> Result<Money, TxnError> {
        let row = if for_update {
            tx.read_for_update(table, &Value::int(cid))?
        } else {
            tx.read(table, &Value::int(cid))?
        };
        // Population guarantees a row per customer; a missing row would be
        // an engine bug, but fail soft as zero like the SQL would (NULL sum).
        Ok(row.map(|r| Money::cents(r.int(1))).unwrap_or(Money::ZERO))
    }

    fn write_balance(
        &self,
        tx: &mut Transaction<'_>,
        table: sicost_common::TableId,
        cid: i64,
        balance: Money,
    ) -> Result<(), TxnError> {
        tx.update(
            table,
            &Value::int(cid),
            Row::new(vec![Value::int(cid), Value::int(balance.as_cents())]),
        )
    }

    /// The identity update of promotion: `UPDATE t SET Balance = Balance
    /// WHERE CustomerId = :cid`.
    fn identity_update(
        &self,
        tx: &mut Transaction<'_>,
        table: sicost_common::TableId,
        cid: i64,
    ) -> Result<(), TxnError> {
        let current = self.read_balance(tx, table, cid, false)?;
        self.write_balance(tx, table, cid, current)
    }

    /// The materialization statement: `UPDATE Conflict SET Value = Value+1
    /// WHERE Id = :cid`.
    fn bump_conflict(&self, tx: &mut Transaction<'_>, cid: i64) -> Result<(), TxnError> {
        let key = Value::int(cid);
        let row = tx.read(self.tables.conflict, &key)?;
        let v = row.map(|r| r.int(1)).unwrap_or(0);
        tx.update(
            self.tables.conflict,
            &key,
            Row::new(vec![key.clone(), Value::int(v + 1)]),
        )
    }

    // ----- the five programs ------------------------------------------------

    /// `Balance(N)` — total of savings and checking (§III-B). Read-only in
    /// the base coding; the BW/ALL strategies add writes here.
    pub fn balance(&self, name: &str) -> Result<Money, SbError> {
        let mut tx = self.db.begin();
        let Some(cid) = self.lookup_cid(&mut tx, name)? else {
            tx.rollback();
            return Err(SbError::AccountMissing);
        };
        let sav = self.read_balance(&mut tx, self.tables.saving, cid, false)?;
        let chk = self.read_balance(
            &mut tx,
            self.tables.checking,
            cid,
            self.mods.bal_sfu_checking,
        )?;
        if self.mods.bal_ident_saving {
            self.identity_update(&mut tx, self.tables.saving, cid)?;
        }
        if self.mods.bal_ident_checking {
            self.identity_update(&mut tx, self.tables.checking, cid)?;
        }
        if self.mods.bal_conflict {
            self.bump_conflict(&mut tx, cid)?;
        }
        tx.commit()?;
        Ok(sav + chk)
    }

    /// `DepositChecking(N, V)` (§III-B): rolls back on negative `V` or
    /// unknown name.
    pub fn deposit_checking(&self, name: &str, v: Money) -> Result<(), SbError> {
        if v.is_negative() {
            return Err(SbError::InvalidAmount);
        }
        let mut tx = self.db.begin();
        let Some(cid) = self.lookup_cid(&mut tx, name)? else {
            tx.rollback();
            return Err(SbError::AccountMissing);
        };
        let chk = self.read_balance(&mut tx, self.tables.checking, cid, false)?;
        self.write_balance(&mut tx, self.tables.checking, cid, chk + v)?;
        if self.mods.dc_conflict {
            self.bump_conflict(&mut tx, cid)?;
        }
        tx.commit()?;
        Ok(())
    }

    /// `TransactSaving(N, V)` (§III-B): deposit or withdrawal on savings;
    /// rolls back if the result would be negative or the name is unknown.
    pub fn transact_saving(&self, name: &str, v: Money) -> Result<(), SbError> {
        let mut tx = self.db.begin();
        let Some(cid) = self.lookup_cid(&mut tx, name)? else {
            tx.rollback();
            return Err(SbError::AccountMissing);
        };
        let sav = self.read_balance(&mut tx, self.tables.saving, cid, false)?;
        let new = sav + v;
        if new.is_negative() {
            tx.rollback();
            return Err(SbError::InsufficientFunds);
        }
        self.write_balance(&mut tx, self.tables.saving, cid, new)?;
        if self.mods.ts_conflict {
            self.bump_conflict(&mut tx, cid)?;
        }
        tx.commit()?;
        Ok(())
    }

    /// `Amalgamate(N1, N2)` (§III-B): moves all funds of `n1` to `n2`'s
    /// checking account.
    pub fn amalgamate(&self, n1: &str, n2: &str) -> Result<(), SbError> {
        let mut tx = self.db.begin();
        let (Some(cid1), Some(cid2)) =
            (self.lookup_cid(&mut tx, n1)?, self.lookup_cid(&mut tx, n2)?)
        else {
            tx.rollback();
            return Err(SbError::AccountMissing);
        };
        let sav1 = self.read_balance(&mut tx, self.tables.saving, cid1, false)?;
        let chk1 = self.read_balance(&mut tx, self.tables.checking, cid1, false)?;
        let chk2 = self.read_balance(&mut tx, self.tables.checking, cid2, false)?;
        self.write_balance(&mut tx, self.tables.saving, cid1, Money::ZERO)?;
        self.write_balance(&mut tx, self.tables.checking, cid1, Money::ZERO)?;
        self.write_balance(&mut tx, self.tables.checking, cid2, chk2 + sav1 + chk1)?;
        if self.mods.amg_conflict {
            self.bump_conflict(&mut tx, cid1)?;
            self.bump_conflict(&mut tx, cid2)?;
        }
        tx.commit()?;
        Ok(())
    }

    /// `WriteCheck` run with §II-D's third approach: the *pivot*
    /// transaction executes under (simulated) 2PL by taking an explicit
    /// table-granularity exclusive lock on `Saving` before its reads.
    /// By Fekete's allocation theorem (running every pivot with 2PL makes
    /// all executions serializable), this removes the dangerous structure
    /// without touching the other four programs — at the price the paper
    /// predicts: "the explicit locks are all of table granularity and
    /// thus will have very poor performance."
    ///
    /// Only effective when the engine runs with
    /// [`sicost_engine::EngineConfig::table_intent_locks`] so that other
    /// writers conflict with the table lock.
    pub fn write_check_with_table_lock(&self, name: &str, v: Money) -> Result<(), SbError> {
        let mut tx = self.db.begin();
        tx.lock_table(self.tables.saving, true)?;
        // PostgreSQL pattern: LOCK TABLE as the first statement means the
        // snapshot is established only after the lock is granted — which
        // is exactly what makes the pivot's reads 2PL-stable.
        tx.refresh_snapshot()?;
        self.write_check_body(&mut tx, name, v)?;
        tx.commit()?;
        Ok(())
    }

    /// `WriteCheck(N, V)` (§III-B / Program 1): charges `V` against
    /// checking, with a $1 overdraft penalty when savings+checking can't
    /// cover it.
    pub fn write_check(&self, name: &str, v: Money) -> Result<(), SbError> {
        let mut tx = self.db.begin();
        self.write_check_body(&mut tx, name, v)?;
        tx.commit()?;
        Ok(())
    }

    fn write_check_body(
        &self,
        tx: &mut Transaction<'_>,
        name: &str,
        v: Money,
    ) -> Result<(), SbError> {
        let Some(cid) = self.lookup_cid(tx, name)? else {
            // The caller's transaction handle rolls back on drop; surface
            // the application error.
            return Err(SbError::AccountMissing);
        };
        let sav = self.read_balance(tx, self.tables.saving, cid, self.mods.wc_sfu_saving)?;
        let chk = self.read_balance(tx, self.tables.checking, cid, false)?;
        let charge = if (sav + chk) < v {
            v + Money::dollars(1)
        } else {
            v
        };
        self.write_balance(tx, self.tables.checking, cid, chk - charge)?;
        if self.mods.wc_ident_saving {
            self.write_balance(tx, self.tables.saving, cid, sav)?;
        }
        if self.mods.wc_conflict {
            self.bump_conflict(tx, cid)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::customer_name;

    fn bank(strategy: Strategy) -> SmallBank {
        SmallBank::new(
            &SmallBankConfig::small(20),
            EngineConfig::functional(),
            strategy,
        )
    }

    #[test]
    fn balance_sums_savings_and_checking() {
        let b = bank(Strategy::BaseSI);
        let n = customer_name(3);
        let total = b.balance(&n).unwrap();
        b.deposit_checking(&n, Money::dollars(25)).unwrap();
        assert_eq!(b.balance(&n).unwrap(), total + Money::dollars(25));
    }

    #[test]
    fn unknown_customer_rolls_back_every_program() {
        let b = bank(Strategy::BaseSI);
        assert_eq!(b.balance("ghost"), Err(SbError::AccountMissing));
        assert_eq!(
            b.deposit_checking("ghost", Money::dollars(1)),
            Err(SbError::AccountMissing)
        );
        assert_eq!(
            b.transact_saving("ghost", Money::dollars(1)),
            Err(SbError::AccountMissing)
        );
        assert_eq!(
            b.write_check("ghost", Money::dollars(1)),
            Err(SbError::AccountMissing)
        );
        assert_eq!(
            b.amalgamate("ghost", &customer_name(1)),
            Err(SbError::AccountMissing)
        );
        // All ended as application rollbacks, not serialization aborts.
        let m = b.db().metrics();
        assert_eq!(m.serialization_failures(), 0);
        assert!(m.aborts_application >= 5);
    }

    #[test]
    fn deposit_rejects_negative_amounts() {
        let b = bank(Strategy::BaseSI);
        assert_eq!(
            b.deposit_checking(&customer_name(0), Money::dollars(-5)),
            Err(SbError::InvalidAmount)
        );
    }

    #[test]
    fn transact_saving_enforces_non_negative_balance() {
        let b = bank(Strategy::BaseSI);
        let n = customer_name(2);
        let before = b.total_balance();
        // Drain far beyond the max initial balance.
        assert_eq!(
            b.transact_saving(&n, Money::dollars(-100_000)),
            Err(SbError::InsufficientFunds)
        );
        assert_eq!(b.total_balance(), before, "rollback must not move money");
        // A modest deposit works.
        b.transact_saving(&n, Money::dollars(10)).unwrap();
        assert_eq!(b.total_balance(), before + Money::dollars(10));
    }

    #[test]
    fn write_check_applies_overdraft_penalty() {
        let b = bank(Strategy::BaseSI);
        let n = customer_name(4);
        let total = b.balance(&n).unwrap();
        let before = b.total_balance();
        // Overdraw: charge = v + $1.
        let v = total + Money::dollars(5);
        b.write_check(&n, v).unwrap();
        assert_eq!(b.total_balance(), before - v - Money::dollars(1));
        // Non-overdraw WC charges exactly v (account now deep negative,
        // so deposit first).
        b.deposit_checking(&n, v + v).unwrap();
        let before = b.total_balance();
        b.write_check(&n, Money::dollars(1)).unwrap();
        assert_eq!(b.total_balance(), before - Money::dollars(1));
    }

    #[test]
    fn amalgamate_moves_everything() {
        let b = bank(Strategy::BaseSI);
        let (n1, n2) = (customer_name(5), customer_name(6));
        let t1 = b.balance(&n1).unwrap();
        let t2 = b.balance(&n2).unwrap();
        let before = b.total_balance();
        b.amalgamate(&n1, &n2).unwrap();
        assert_eq!(b.balance(&n1).unwrap(), Money::ZERO);
        assert_eq!(b.balance(&n2).unwrap(), t1 + t2);
        assert_eq!(b.total_balance(), before, "amalgamate conserves money");
    }

    #[test]
    fn every_strategy_preserves_semantics() {
        // The modifications must not change observable behaviour.
        for strategy in Strategy::all() {
            let b = bank(strategy);
            let n = customer_name(7);
            let total = b.balance(&n).unwrap();
            b.deposit_checking(&n, Money::dollars(10)).unwrap();
            b.transact_saving(&n, Money::dollars(5)).unwrap();
            b.write_check(&n, Money::dollars(3)).unwrap();
            assert_eq!(
                b.balance(&n).unwrap(),
                total + Money::dollars(12),
                "strategy {strategy} changed semantics"
            );
            b.amalgamate(&n, &customer_name(8)).unwrap();
            assert_eq!(b.balance(&n).unwrap(), Money::ZERO);
        }
    }

    #[test]
    fn conflict_table_is_bumped_only_by_materialize_strategies() {
        let read_conflict_sum = |b: &SmallBank| {
            let mut sum = 0;
            b.db().catalog().table(b.tables().conflict).scan_at(
                b.db().clock(),
                &sicost_storage::Predicate::True,
                |_, row, _| sum += row.int(1),
            );
            sum
        };
        let b = bank(Strategy::MaterializeWT);
        let n = customer_name(1);
        b.write_check(&n, Money::dollars(1)).unwrap();
        b.transact_saving(&n, Money::dollars(1)).unwrap();
        b.balance(&n).unwrap();
        b.deposit_checking(&n, Money::dollars(1)).unwrap();
        assert_eq!(read_conflict_sum(&b), 2, "only WC and TS bump Conflict");

        let b = bank(Strategy::PromoteALL);
        b.write_check(&n, Money::dollars(1)).unwrap();
        b.balance(&n).unwrap();
        assert_eq!(read_conflict_sum(&b), 0, "promotion never touches Conflict");

        let b = bank(Strategy::MaterializeALL);
        b.write_check(&n, Money::dollars(1)).unwrap();
        b.transact_saving(&n, Money::dollars(1)).unwrap();
        b.balance(&n).unwrap();
        b.deposit_checking(&n, Money::dollars(1)).unwrap();
        b.amalgamate(&n, &customer_name(2)).unwrap();
        assert_eq!(read_conflict_sum(&b), 6, "Amg bumps two rows");
    }

    #[test]
    fn write_check_with_table_lock_has_identical_semantics() {
        let mut cfg = EngineConfig::functional();
        cfg.table_intent_locks = true;
        let b = SmallBank::new(&SmallBankConfig::small(20), cfg, Strategy::BaseSI);
        let n = customer_name(9);
        let total = b.balance(&n).unwrap();
        let before = b.total_balance();
        b.write_check_with_table_lock(&n, Money::dollars(5))
            .unwrap();
        assert_eq!(b.balance(&n).unwrap(), total - Money::dollars(5));
        assert_eq!(b.total_balance(), before - Money::dollars(5));
        // Unknown customer still rolls back.
        assert_eq!(
            b.write_check_with_table_lock("ghost", Money::dollars(1)),
            Err(SbError::AccountMissing)
        );
    }

    #[test]
    fn bw_strategies_make_balance_an_updater() {
        for (strategy, expect_wal) in [
            (Strategy::BaseSI, false),
            (Strategy::MaterializeWT, false),
            (Strategy::PromoteWTUpd, false),
            (Strategy::MaterializeBW, true),
            (Strategy::PromoteBWUpd, true),
            (Strategy::PromoteALL, true),
        ] {
            let b = bank(strategy);
            let before = b.db().wal_stats().records;
            b.balance(&customer_name(0)).unwrap();
            let wrote = b.db().wal_stats().records > before;
            assert_eq!(
                wrote, expect_wal,
                "strategy {strategy}: Balance WAL behaviour"
            );
        }
    }
}
