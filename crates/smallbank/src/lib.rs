//! The **SmallBank** benchmark (§III of the paper).
//!
//! A small banking application contrived to offer a diverse choice of
//! serializability-ensuring modifications: three tables
//! (`Account(Name, CustomerId)`, `Saving(CustomerId, Balance)`,
//! `Checking(CustomerId, Balance)`), five transaction programs
//! (Balance, DepositChecking, TransactSaving, Amalgamate, WriteCheck),
//! and — under plain SI — exactly one dangerous structure:
//! `Bal ──v──▶ WC ──v──▶ TS`.
//!
//! [`Strategy`] enumerates the nine program variants measured in the
//! paper (plain SI, the WT/BW single-edge fixes by materialization and
//! both promotions, and the MaterializeALL/PromoteALL sledgehammers);
//! [`SmallBank`] executes the procedures against a
//! [`sicost_engine::Database`] with the chosen strategy's extra
//! statements; [`sdg_spec`] declares the same programs for
//! [`sicost_core`]'s static analysis so the tests can *prove* each
//! strategy safe (or prove Base SI unsafe) and regenerate Figures 1–3
//! and Table I; [`anomaly`] scripts the concrete non-serializable
//! interleaving for the MVSG certifier.

#![warn(missing_docs)]

pub mod anomaly;
pub mod driver_adapter;
pub mod procs;
pub mod schema;
pub mod sdg_spec;
pub mod strategy;
pub mod workload;

pub use driver_adapter::SmallBankDriver;
pub use procs::{SbError, SmallBank};
pub use schema::{recover_database, schema_builder, SmallBankConfig};
pub use sdg_spec::SmallBankSpec;
pub use strategy::Strategy;
pub use workload::{MixWeights, SmallBankWorkload, TxnKind, WorkloadParams};
