//! Workload generation: transaction mixes and parameter sampling (§IV).

use crate::procs::{SbError, SmallBank};
use crate::schema::customer_name;
use sicost_common::{DiscreteDist, HotspotSampler, Money, Xoshiro256};

/// The five transaction types, in the paper's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnKind {
    /// Balance (read-only in the base coding).
    Balance,
    /// DepositChecking.
    DepositChecking,
    /// TransactSaving.
    TransactSaving,
    /// Amalgamate.
    Amalgamate,
    /// WriteCheck.
    WriteCheck,
}

impl TxnKind {
    /// All kinds, index-aligned with [`MixWeights::as_array`].
    pub const ALL: [TxnKind; 5] = [
        TxnKind::Balance,
        TxnKind::DepositChecking,
        TxnKind::TransactSaving,
        TxnKind::Amalgamate,
        TxnKind::WriteCheck,
    ];

    /// Short display name (as used in the paper's Figure 6).
    pub fn name(self) -> &'static str {
        match self {
            TxnKind::Balance => "Balance",
            TxnKind::DepositChecking => "DepositChecking",
            TxnKind::TransactSaving => "TransactSaving",
            TxnKind::Amalgamate => "Amalgamate",
            TxnKind::WriteCheck => "WriteCheck",
        }
    }
}

/// Mix weights over the five transaction types.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixWeights {
    /// Balance weight.
    pub balance: f64,
    /// DepositChecking weight.
    pub deposit_checking: f64,
    /// TransactSaving weight.
    pub transact_saving: f64,
    /// Amalgamate weight.
    pub amalgamate: f64,
    /// WriteCheck weight.
    pub write_check: f64,
}

impl MixWeights {
    /// The paper's default: uniform across the five types.
    pub fn uniform() -> Self {
        Self {
            balance: 1.0,
            deposit_checking: 1.0,
            transact_saving: 1.0,
            amalgamate: 1.0,
            write_check: 1.0,
        }
    }

    /// The paper's high-contention mix: 60 % Balance, 10 % each other.
    pub fn high_contention() -> Self {
        Self {
            balance: 60.0,
            deposit_checking: 10.0,
            transact_saving: 10.0,
            amalgamate: 10.0,
            write_check: 10.0,
        }
    }

    /// Weights as an array aligned with [`TxnKind::ALL`].
    pub fn as_array(&self) -> [f64; 5] {
        [
            self.balance,
            self.deposit_checking,
            self.transact_saving,
            self.amalgamate,
            self.write_check,
        ]
    }
}

/// Full workload parameters (§IV): population, hotspot, mix.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadParams {
    /// Number of customers in the database.
    pub customers: u64,
    /// Hotspot size (1 000 normally, 10 for high contention).
    pub hotspot: u64,
    /// Probability of drawing a customer from the hotspot (0.9).
    pub p_hot: f64,
    /// Transaction mix.
    pub mix: MixWeights,
}

impl WorkloadParams {
    /// §IV defaults: 18 000 customers, hotspot 1 000 at 90 %, uniform mix.
    pub fn paper_default() -> Self {
        Self {
            customers: 18_000,
            hotspot: 1_000,
            p_hot: 0.9,
            mix: MixWeights::uniform(),
        }
    }

    /// §IV-E: hotspot of 10 customers and 60 % Balance transactions.
    pub fn paper_high_contention() -> Self {
        Self {
            customers: 18_000,
            hotspot: 10,
            p_hot: 0.9,
            mix: MixWeights::high_contention(),
        }
    }

    /// Shrinks the population (tests / quick runs), keeping proportions.
    pub fn scaled(mut self, customers: u64, hotspot: u64) -> Self {
        self.customers = customers;
        self.hotspot = hotspot;
        self
    }
}

/// One sampled transaction request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnRequest {
    /// Balance(N).
    Balance {
        /// Customer name.
        name: String,
    },
    /// DepositChecking(N, V).
    DepositChecking {
        /// Customer name.
        name: String,
        /// Amount (non-negative).
        v: Money,
    },
    /// TransactSaving(N, V).
    TransactSaving {
        /// Customer name.
        name: String,
        /// Amount (either sign).
        v: Money,
    },
    /// Amalgamate(N1, N2).
    Amalgamate {
        /// Source customer.
        n1: String,
        /// Destination customer.
        n2: String,
    },
    /// WriteCheck(N, V).
    WriteCheck {
        /// Customer name.
        name: String,
        /// Check amount.
        v: Money,
    },
}

impl TxnRequest {
    /// The request's kind.
    pub fn kind(&self) -> TxnKind {
        match self {
            TxnRequest::Balance { .. } => TxnKind::Balance,
            TxnRequest::DepositChecking { .. } => TxnKind::DepositChecking,
            TxnRequest::TransactSaving { .. } => TxnKind::TransactSaving,
            TxnRequest::Amalgamate { .. } => TxnKind::Amalgamate,
            TxnRequest::WriteCheck { .. } => TxnKind::WriteCheck,
        }
    }
}

/// A workload generator bound to parameters: samples kinds from the mix
/// and customers from the hotspot distribution.
#[derive(Debug, Clone)]
pub struct SmallBankWorkload {
    params: WorkloadParams,
    kind_dist: DiscreteDist,
    customer_dist: HotspotSampler,
    wc_table_lock: bool,
}

impl SmallBankWorkload {
    /// Creates the generator.
    pub fn new(params: WorkloadParams) -> Self {
        Self {
            kind_dist: DiscreteDist::new(&params.mix.as_array()),
            customer_dist: HotspotSampler::new(params.customers, params.hotspot, params.p_hot),
            params,
            wc_table_lock: false,
        }
    }

    /// Runs WriteCheck through
    /// [`SmallBank::write_check_with_table_lock`] (§II-D's
    /// pivot-under-2PL approach; requires an engine with
    /// `table_intent_locks`).
    pub fn with_wc_table_lock(mut self) -> Self {
        self.wc_table_lock = true;
        self
    }

    /// The parameters.
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// Samples the next transaction request.
    pub fn sample(&self, rng: &mut Xoshiro256) -> TxnRequest {
        let kind = TxnKind::ALL[self.kind_dist.sample(rng)];
        let name = customer_name(self.customer_dist.sample(rng));
        match kind {
            TxnKind::Balance => TxnRequest::Balance { name },
            TxnKind::DepositChecking => TxnRequest::DepositChecking {
                name,
                v: Money::cents(rng.range_inclusive(100, 10_000)),
            },
            TxnKind::TransactSaving => TxnRequest::TransactSaving {
                name,
                // Mostly deposits, some withdrawals (can trigger the
                // insufficient-funds rollback, as in the paper's §III-B).
                v: Money::cents(rng.range_inclusive(-5_000, 10_000)),
            },
            TxnKind::Amalgamate => {
                let (a, b) = self.customer_dist.sample_pair(rng);
                TxnRequest::Amalgamate {
                    n1: customer_name(a),
                    n2: customer_name(b),
                }
            }
            TxnKind::WriteCheck => TxnRequest::WriteCheck {
                name,
                v: Money::cents(rng.range_inclusive(100, 5_000)),
            },
        }
    }

    /// Executes one sampled request against `bank`.
    pub fn execute(&self, bank: &SmallBank, req: &TxnRequest) -> Result<(), SbError> {
        match req {
            TxnRequest::Balance { name } => bank.balance(name).map(|_| ()),
            TxnRequest::DepositChecking { name, v } => bank.deposit_checking(name, *v),
            TxnRequest::TransactSaving { name, v } => bank.transact_saving(name, *v),
            TxnRequest::Amalgamate { n1, n2 } => bank.amalgamate(n1, n2),
            TxnRequest::WriteCheck { name, v } => {
                if self.wc_table_lock {
                    bank.write_check_with_table_lock(name, *v)
                } else {
                    bank.write_check(name, *v)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_ratios_are_respected() {
        let wl = SmallBankWorkload::new(WorkloadParams::paper_high_contention().scaled(100, 10));
        let mut rng = Xoshiro256::seed_from_u64(1);
        let n = 50_000;
        let mut bal = 0;
        for _ in 0..n {
            if wl.sample(&mut rng).kind() == TxnKind::Balance {
                bal += 1;
            }
        }
        let frac = bal as f64 / n as f64;
        assert!((frac - 0.6).abs() < 0.02, "balance fraction {frac}");
    }

    #[test]
    fn hotspot_concentration() {
        let wl = SmallBankWorkload::new(WorkloadParams::paper_default().scaled(1_000, 10));
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mut hot = 0;
        let n = 20_000;
        for _ in 0..n {
            let name = match wl.sample(&mut rng) {
                TxnRequest::Balance { name }
                | TxnRequest::DepositChecking { name, .. }
                | TxnRequest::TransactSaving { name, .. }
                | TxnRequest::WriteCheck { name, .. }
                | TxnRequest::Amalgamate { n1: name, .. } => name,
            };
            let idx: u64 = name[1..].parse().unwrap();
            if idx < 10 {
                hot += 1;
            }
        }
        let frac = hot as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.02, "hot fraction {frac}");
    }

    #[test]
    fn amalgamate_pairs_are_distinct() {
        let wl = SmallBankWorkload::new(WorkloadParams::paper_default().scaled(50, 5));
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..5_000 {
            if let TxnRequest::Amalgamate { n1, n2 } = wl.sample(&mut rng) {
                assert_ne!(n1, n2);
            }
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let wl = SmallBankWorkload::new(WorkloadParams::paper_default().scaled(100, 10));
        let mut a = Xoshiro256::seed_from_u64(7);
        let mut b = Xoshiro256::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(wl.sample(&mut a), wl.sample(&mut b));
        }
    }

    #[test]
    fn execute_round_trip_against_small_bank() {
        use crate::schema::SmallBankConfig;
        use crate::strategy::Strategy;
        use sicost_engine::EngineConfig;
        let bank = SmallBank::new(
            &SmallBankConfig::small(50),
            EngineConfig::functional(),
            Strategy::BaseSI,
        );
        let wl = SmallBankWorkload::new(WorkloadParams::paper_default().scaled(50, 5));
        let mut rng = Xoshiro256::seed_from_u64(4);
        let mut commits = 0;
        for _ in 0..500 {
            let req = wl.sample(&mut rng);
            match wl.execute(&bank, &req) {
                Ok(()) => commits += 1,
                Err(e) => assert!(
                    e.is_application_rollback(),
                    "single-threaded run can only roll back by app rule: {e}"
                ),
            }
        }
        assert!(commits > 400);
        assert_eq!(bank.db().metrics().serialization_failures(), 0);
    }
}
