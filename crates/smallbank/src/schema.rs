//! Schema, database construction, and population (§III-A, §IV).

use sicost_common::{HotspotSampler, Money, TableId, Xoshiro256};
use sicost_engine::{
    Database, DatabaseBuilder, DurableImage, EngineConfig, HistoryObserver, RecoveryError,
    RecoveryOutcome,
};
use sicost_storage::{ColumnDef, ColumnType, Row, TableSchema, Value};
use std::sync::Arc;

/// Population parameters (§IV: 18 000 customers, hotspot of 1 000 or 10).
#[derive(Debug, Clone, Copy)]
pub struct SmallBankConfig {
    /// Number of customers (Account/Saving/Checking rows each).
    pub customers: u64,
    /// Initial savings balance range, inclusive, in cents.
    pub savings_range: (i64, i64),
    /// Initial checking balance range, inclusive, in cents.
    pub checking_range: (i64, i64),
    /// Seed for the population RNG.
    pub seed: u64,
}

impl SmallBankConfig {
    /// The paper's population: 18 000 randomly generated customers.
    pub fn paper() -> Self {
        Self {
            customers: 18_000,
            ..Self::small(18_000)
        }
    }

    /// A smaller population for tests.
    pub fn small(customers: u64) -> Self {
        Self {
            customers,
            savings_range: (10_000, 100_000), // $100 – $1000
            checking_range: (5_000, 50_000),  // $50 – $500
            seed: 0x5B_5B_5B,
        }
    }
}

/// The canonical customer name for index `i` (also the Account PK).
pub fn customer_name(i: u64) -> String {
    format!("c{i:07}")
}

/// Table handles resolved once at setup.
#[derive(Debug, Clone, Copy)]
pub struct Tables {
    /// `Account(Name PK, CustomerId UNIQUE)`.
    pub account: TableId,
    /// `Saving(CustomerId PK, Balance)`.
    pub saving: TableId,
    /// `Checking(CustomerId PK, Balance)`.
    pub checking: TableId,
    /// `Conflict(Id PK, Value)` — present in every build (harmless when
    /// unused) so all strategies run against the same physical schema.
    pub conflict: TableId,
}

/// A [`DatabaseBuilder`] carrying the four-table SmallBank schema and the
/// given engine config, with no population — the shared starting point
/// for [`build_database`] and [`recover_database`].
pub fn schema_builder(engine: EngineConfig) -> DatabaseBuilder {
    Database::builder()
        .table(
            TableSchema::new(
                "Account",
                vec![
                    ColumnDef::new("Name", ColumnType::Str),
                    ColumnDef::new("CustomerId", ColumnType::Int),
                ],
                0,
                vec![1],
            )
            .expect("static schema"),
        )
        .expect("create Account")
        .table(
            TableSchema::new(
                "Saving",
                vec![
                    ColumnDef::new("CustomerId", ColumnType::Int),
                    ColumnDef::new("Balance", ColumnType::Int),
                ],
                0,
                vec![],
            )
            .expect("static schema"),
        )
        .expect("create Saving")
        .table(
            TableSchema::new(
                "Checking",
                vec![
                    ColumnDef::new("CustomerId", ColumnType::Int),
                    ColumnDef::new("Balance", ColumnType::Int),
                ],
                0,
                vec![],
            )
            .expect("static schema"),
        )
        .expect("create Checking")
        .table(
            TableSchema::new(
                "Conflict",
                vec![
                    ColumnDef::new("Id", ColumnType::Int),
                    ColumnDef::new("Value", ColumnType::Int),
                ],
                0,
                vec![],
            )
            .expect("static schema"),
        )
        .expect("create Conflict")
        .config(engine)
}

fn resolve_tables(db: &Database) -> Tables {
    Tables {
        account: db.table_id("Account").expect("Account exists"),
        saving: db.table_id("Saving").expect("Saving exists"),
        checking: db.table_id("Checking").expect("Checking exists"),
        conflict: db.table_id("Conflict").expect("Conflict exists"),
    }
}

/// Rebuilds a SmallBank database from a crashed instance's durable state
/// (checkpoint slots, manifests, and WAL) — the restart path the
/// crash-recovery torture harness and the recovery bench exercise.
pub fn recover_database(
    engine: EngineConfig,
    image: &DurableImage,
) -> Result<(Database, Tables, RecoveryOutcome), RecoveryError> {
    let (db, outcome) = schema_builder(engine).recover(image)?;
    let tables = resolve_tables(&db);
    Ok((db, tables, outcome))
}

/// Builds the SmallBank database: schema, engine config, optional history
/// observer, and full population (including one `Conflict` row per
/// customer, as §III-D requires for the materialization strategies).
pub fn build_database(
    config: &SmallBankConfig,
    engine: EngineConfig,
    observer: Option<Arc<dyn HistoryObserver>>,
) -> (Database, Tables) {
    let mut builder = schema_builder(engine);
    if let Some(obs) = observer {
        builder = builder.observer(obs);
    }
    let db = builder.build();
    let tables = resolve_tables(&db);

    let mut rng = Xoshiro256::seed_from_u64(config.seed);
    let n = config.customers;
    db.bulk_load(
        tables.account,
        (0..n).map(|i| Row::new(vec![Value::str(customer_name(i)), Value::int(i as i64)])),
    )
    .expect("load Account");
    let (slo, shi) = config.savings_range;
    let savings: Vec<Row> = (0..n)
        .map(|i| {
            Row::new(vec![
                Value::int(i as i64),
                Value::int(rng.range_inclusive(slo, shi)),
            ])
        })
        .collect();
    db.bulk_load(tables.saving, savings).expect("load Saving");
    let (clo, chi) = config.checking_range;
    let checkings: Vec<Row> = (0..n)
        .map(|i| {
            Row::new(vec![
                Value::int(i as i64),
                Value::int(rng.range_inclusive(clo, chi)),
            ])
        })
        .collect();
    db.bulk_load(tables.checking, checkings)
        .expect("load Checking");
    db.bulk_load(
        tables.conflict,
        (0..n).map(|i| Row::new(vec![Value::int(i as i64), Value::int(0)])),
    )
    .expect("load Conflict");
    (db, tables)
}

/// The paper's access pattern (§IV): 90 % of transactions pick a customer
/// uniformly from the hotspot, 10 % uniformly from the rest.
pub fn paper_sampler(customers: u64, hotspot: u64) -> HotspotSampler {
    HotspotSampler::paper_default(customers, hotspot)
}

/// Scans Saving+Checking, returning total money in the bank (the
/// conservation oracle used by tests and the audit harness).
pub fn total_balance(db: &Database, tables: &Tables) -> Money {
    let ts = db.clock();
    let mut total = 0i64;
    for t in [tables.saving, tables.checking] {
        db.catalog()
            .table(t)
            .scan_at(ts, &sicost_storage::Predicate::True, |_, row, _| {
                total += row.int(1);
            });
    }
    Money::cents(total)
}

/// Strategy-aware sanity check used by tests: the Conflict table is
/// required by materialization strategies and must have one row per
/// customer.
pub fn conflict_rows(db: &Database, tables: &Tables) -> usize {
    db.catalog().table(tables.conflict).count_at(db.clock())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn population_counts_and_shapes() {
        let cfg = SmallBankConfig::small(100);
        let (db, t) = build_database(&cfg, EngineConfig::functional(), None);
        let ts = db.clock();
        assert_eq!(db.catalog().table(t.account).count_at(ts), 100);
        assert_eq!(db.catalog().table(t.saving).count_at(ts), 100);
        assert_eq!(db.catalog().table(t.checking).count_at(ts), 100);
        assert_eq!(conflict_rows(&db, &t), 100);
    }

    #[test]
    fn balances_within_configured_ranges() {
        let cfg = SmallBankConfig::small(50);
        let (db, t) = build_database(&cfg, EngineConfig::functional(), None);
        let ts = db.clock();
        db.catalog()
            .table(t.saving)
            .scan_at(ts, &sicost_storage::Predicate::True, |_, row, _| {
                let b = row.int(1);
                assert!((10_000..=100_000).contains(&b), "savings {b}");
            });
        db.catalog().table(t.checking).scan_at(
            ts,
            &sicost_storage::Predicate::True,
            |_, row, _| {
                let b = row.int(1);
                assert!((5_000..=50_000).contains(&b), "checking {b}");
            },
        );
    }

    #[test]
    fn population_is_deterministic_per_seed() {
        let cfg = SmallBankConfig::small(20);
        let (db1, t1) = build_database(&cfg, EngineConfig::functional(), None);
        let (db2, t2) = build_database(&cfg, EngineConfig::functional(), None);
        assert_eq!(total_balance(&db1, &t1), total_balance(&db2, &t2));
        let mut cfg2 = cfg;
        cfg2.seed ^= 1;
        let (db3, t3) = build_database(&cfg2, EngineConfig::functional(), None);
        assert_ne!(total_balance(&db1, &t1), total_balance(&db3, &t3));
    }

    #[test]
    fn customer_names_are_unique_and_ordered() {
        assert_eq!(customer_name(0), "c0000000");
        assert_eq!(customer_name(17_999), "c0017999");
        assert_ne!(customer_name(1), customer_name(10));
    }

    #[test]
    fn strategy_presets_exist_for_all() {
        for s in Strategy::all() {
            let _ = s.mods();
        }
    }
}
