//! Adapter exposing SmallBank to the closed-system driver.

use crate::procs::{SbError, SmallBank};
use crate::workload::{SmallBankWorkload, TxnKind, TxnRequest};
use sicost_common::Xoshiro256;
use sicost_driver::{Outcome, Workload};
use sicost_engine::TxnError;
use std::sync::Arc;

/// A measurable SmallBank workload: the bank plus its request generator.
pub struct SmallBankDriver {
    bank: Arc<SmallBank>,
    workload: SmallBankWorkload,
}

impl SmallBankDriver {
    /// Bundles a bank and a workload for the driver.
    pub fn new(bank: Arc<SmallBank>, workload: SmallBankWorkload) -> Self {
        Self { bank, workload }
    }

    /// The bank under test.
    pub fn bank(&self) -> &Arc<SmallBank> {
        &self.bank
    }
}

fn classify(result: Result<(), SbError>) -> Outcome {
    match result {
        Ok(()) => Outcome::Committed,
        Err(SbError::Txn(TxnError::Deadlock)) => Outcome::Deadlock,
        Err(SbError::Txn(TxnError::Transient(_))) => Outcome::TransientFault,
        Err(SbError::Txn(e)) if e.is_serialization_failure() => Outcome::SerializationFailure,
        Err(_) => Outcome::ApplicationRollback,
    }
}

impl Workload for SmallBankDriver {
    type Request = TxnRequest;

    fn kinds(&self) -> Vec<&'static str> {
        TxnKind::ALL.iter().map(|k| k.name()).collect()
    }

    fn sample(&self, rng: &mut Xoshiro256) -> (usize, TxnRequest) {
        let req = self.workload.sample(rng);
        let kind_idx = TxnKind::ALL
            .iter()
            .position(|k| *k == req.kind())
            .expect("known kind");
        (kind_idx, req)
    }

    fn execute(&self, req: &TxnRequest, _attempt: u32) -> Outcome {
        classify(self.workload.execute(&self.bank, req))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SmallBankConfig;
    use crate::strategy::Strategy;
    use crate::workload::WorkloadParams;
    use sicost_driver::{run, RunConfig};
    use sicost_engine::EngineConfig;

    fn driver(strategy: Strategy) -> SmallBankDriver {
        let bank = Arc::new(SmallBank::new(
            &SmallBankConfig::small(200),
            EngineConfig::functional(),
            strategy,
        ));
        let wl = SmallBankWorkload::new(WorkloadParams::paper_default().scaled(200, 20));
        SmallBankDriver::new(bank, wl)
    }

    #[test]
    fn classification_of_outcomes() {
        assert_eq!(classify(Ok(())), Outcome::Committed);
        assert_eq!(
            classify(Err(SbError::Txn(TxnError::Deadlock))),
            Outcome::Deadlock
        );
        assert_eq!(
            classify(Err(SbError::Txn(TxnError::Serialization(
                sicost_engine::SerializationKind::FirstUpdaterWins
            )))),
            Outcome::SerializationFailure
        );
        assert_eq!(
            classify(Err(SbError::InsufficientFunds)),
            Outcome::ApplicationRollback
        );
    }

    #[test]
    fn measured_run_conserves_money_modulo_committed_deltas() {
        // The strongest cheap invariant: no torn writes, no lost money
        // beyond what committed transactions moved. With deposits and
        // checks flowing, we verify the bank still *balances its books*
        // by re-running the audit twice and checking engine metrics add up.
        let d = driver(Strategy::BaseSI);
        let metrics = run(&d, &RunConfig::quick(4));
        assert!(metrics.commits() > 0, "the run must make progress");
        let em = d.bank().db().metrics();
        assert!(em.commits >= metrics.commits());
        // Under plain SI, single-row FUW conflicts are the only
        // serialization failures possible; they should be rare but legal.
        let _ = metrics.serialization_failures();
        // Books must be internally consistent: a second audit sees the
        // same total (quiesced system).
        assert_eq!(d.bank().total_balance(), d.bank().total_balance());
    }

    #[test]
    fn strategies_run_under_concurrency_without_wedging() {
        for strategy in [Strategy::MaterializeALL, Strategy::PromoteALL] {
            let d = driver(strategy);
            let metrics = run(&d, &RunConfig::quick(4));
            assert!(
                metrics.commits() > 0,
                "{strategy} wedged: {:?}",
                metrics.per_kind.iter().map(|k| k.attempts()).sum::<u64>()
            );
        }
    }
}
