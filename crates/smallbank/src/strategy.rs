//! The nine program variants measured in the paper.

use std::fmt;

/// Which serializability-ensuring modification the procedures run with.
///
/// Option WT fixes the `WriteCheck → TransactSaving` edge; Option BW fixes
/// `Balance → WriteCheck`; the ALL variants remove every vulnerable edge
/// without SDG analysis (§III-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Unmodified programs on plain SI — fast, but admits the anomaly.
    BaseSI,
    /// Materialize the WT conflict: WC and TS update `Conflict[cid]`.
    MaterializeWT,
    /// Promote WC's Saving read with an identity update.
    PromoteWTUpd,
    /// Promote WC's Saving read to `SELECT … FOR UPDATE` (effective only
    /// where sfu is treated as a write — the commercial platform).
    PromoteWTSfu,
    /// Materialize the BW conflict: Bal and WC update `Conflict[cid]`.
    MaterializeBW,
    /// Promote Bal's Checking read with an identity update.
    PromoteBWUpd,
    /// Promote Bal's Checking read to `SELECT … FOR UPDATE`.
    PromoteBWSfu,
    /// Materialize every vulnerable edge: every program updates
    /// `Conflict` (Amalgamate updates two rows).
    MaterializeALL,
    /// Promote every vulnerable edge: identity updates on Saving+Checking
    /// in Bal and on Saving in WC.
    PromoteALL,
}

/// Per-procedure modification flags derived from a [`Strategy`]
/// (the executable form of the paper's Table I).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mods {
    /// Bal updates `Conflict[cid]`.
    pub bal_conflict: bool,
    /// Bal identity-updates `Checking[cid]`.
    pub bal_ident_checking: bool,
    /// Bal identity-updates `Saving[cid]`.
    pub bal_ident_saving: bool,
    /// Bal reads `Checking` with `FOR UPDATE`.
    pub bal_sfu_checking: bool,
    /// WC updates `Conflict[cid]`.
    pub wc_conflict: bool,
    /// WC identity-updates `Saving[cid]`.
    pub wc_ident_saving: bool,
    /// WC reads `Saving` with `FOR UPDATE`.
    pub wc_sfu_saving: bool,
    /// TS updates `Conflict[cid]`.
    pub ts_conflict: bool,
    /// DC updates `Conflict[cid]`.
    pub dc_conflict: bool,
    /// Amg updates `Conflict[cid1]` and `Conflict[cid2]`.
    pub amg_conflict: bool,
}

impl Strategy {
    /// All nine variants, in the paper's presentation order.
    pub fn all() -> [Strategy; 9] {
        [
            Strategy::BaseSI,
            Strategy::MaterializeWT,
            Strategy::PromoteWTUpd,
            Strategy::PromoteWTSfu,
            Strategy::MaterializeBW,
            Strategy::PromoteBWUpd,
            Strategy::PromoteBWSfu,
            Strategy::MaterializeALL,
            Strategy::PromoteALL,
        ]
    }

    /// The paper's name for the variant.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::BaseSI => "SI",
            Strategy::MaterializeWT => "MaterializeWT",
            Strategy::PromoteWTUpd => "PromoteWT-upd",
            Strategy::PromoteWTSfu => "PromoteWT-sfu",
            Strategy::MaterializeBW => "MaterializeBW",
            Strategy::PromoteBWUpd => "PromoteBW-upd",
            Strategy::PromoteBWSfu => "PromoteBW-sfu",
            Strategy::MaterializeALL => "MaterializeALL",
            Strategy::PromoteALL => "PromoteALL",
        }
    }

    /// Whether the strategy requires the dedicated `Conflict` table.
    pub fn needs_conflict_table(self) -> bool {
        self.mods().bal_conflict
            || self.mods().wc_conflict
            || self.mods().ts_conflict
            || self.mods().dc_conflict
            || self.mods().amg_conflict
    }

    /// Whether the strategy relies on `FOR UPDATE` being treated as a
    /// write (only guaranteed on the commercial platform, §II-C).
    pub fn uses_sfu(self) -> bool {
        matches!(self, Strategy::PromoteWTSfu | Strategy::PromoteBWSfu)
    }

    /// Whether this strategy guarantees serializable executions on a
    /// platform with the given sfu-as-write property. Base SI never does;
    /// sfu promotions only when `sfu_is_write`.
    pub fn guarantees_serializable(self, sfu_is_write: bool) -> bool {
        match self {
            Strategy::BaseSI => false,
            s if s.uses_sfu() => sfu_is_write,
            _ => true,
        }
    }

    /// The executable modification flags (Table I).
    pub fn mods(self) -> Mods {
        let mut m = Mods::default();
        match self {
            Strategy::BaseSI => {}
            Strategy::MaterializeWT => {
                m.wc_conflict = true;
                m.ts_conflict = true;
            }
            Strategy::PromoteWTUpd => m.wc_ident_saving = true,
            Strategy::PromoteWTSfu => m.wc_sfu_saving = true,
            Strategy::MaterializeBW => {
                m.bal_conflict = true;
                m.wc_conflict = true;
            }
            Strategy::PromoteBWUpd => m.bal_ident_checking = true,
            Strategy::PromoteBWSfu => m.bal_sfu_checking = true,
            Strategy::MaterializeALL => {
                m.bal_conflict = true;
                m.wc_conflict = true;
                m.ts_conflict = true;
                m.dc_conflict = true;
                m.amg_conflict = true;
            }
            Strategy::PromoteALL => {
                m.wc_ident_saving = true;
                m.bal_ident_checking = true;
                m.bal_ident_saving = true;
            }
        }
        m
    }

    /// Does the strategy leave the Balance program read-only? (§IV-D:
    /// "except for Option WT, all options introduce updates into the
    /// originally read-only Balance transaction" — the root of the BW
    /// variants' MPL-1 penalty.)
    pub fn balance_stays_read_only(self) -> bool {
        let m = self.mods();
        !(m.bal_conflict || m.bal_ident_checking || m.bal_ident_saving)
        // bal_sfu_checking keeps Bal read-only on PostgreSQL but makes it
        // an updater on the commercial platform; the caller combines this
        // with the platform's SfuSemantics.
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_flags_match_the_paper() {
        // MaterializeWT: Conf in WC and TS only.
        let m = Strategy::MaterializeWT.mods();
        assert!(m.wc_conflict && m.ts_conflict);
        assert!(!m.bal_conflict && !m.dc_conflict && !m.amg_conflict);
        assert!(!m.wc_ident_saving && !m.bal_ident_checking);

        // PromoteWT: Sav identity in WC only.
        let m = Strategy::PromoteWTUpd.mods();
        assert!(m.wc_ident_saving);
        assert_eq!(
            m,
            Mods {
                wc_ident_saving: true,
                ..Mods::default()
            }
        );

        // MaterializeBW: Conf in Bal and WC.
        let m = Strategy::MaterializeBW.mods();
        assert!(m.bal_conflict && m.wc_conflict && !m.ts_conflict);

        // PromoteBW: Check identity in Bal only.
        let m = Strategy::PromoteBWUpd.mods();
        assert_eq!(
            m,
            Mods {
                bal_ident_checking: true,
                ..Mods::default()
            }
        );

        // MaterializeALL: Conf everywhere.
        let m = Strategy::MaterializeALL.mods();
        assert!(
            m.bal_conflict && m.wc_conflict && m.ts_conflict && m.dc_conflict && m.amg_conflict
        );

        // PromoteALL: Sav+Check in Bal, Sav in WC.
        let m = Strategy::PromoteALL.mods();
        assert!(m.bal_ident_checking && m.bal_ident_saving && m.wc_ident_saving);
        assert!(!m.bal_conflict && !m.ts_conflict);
    }

    #[test]
    fn read_only_balance_classification() {
        for s in Strategy::all() {
            let expect = matches!(
                s,
                Strategy::BaseSI
                    | Strategy::MaterializeWT
                    | Strategy::PromoteWTUpd
                    | Strategy::PromoteWTSfu
                    | Strategy::PromoteBWSfu
            );
            assert_eq!(s.balance_stays_read_only(), expect, "{s}");
        }
    }

    #[test]
    fn serializability_guarantees() {
        assert!(!Strategy::BaseSI.guarantees_serializable(true));
        assert!(Strategy::MaterializeWT.guarantees_serializable(false));
        assert!(Strategy::PromoteWTSfu.guarantees_serializable(true));
        assert!(
            !Strategy::PromoteWTSfu.guarantees_serializable(false),
            "lock-only sfu leaves the vulnerability (PostgreSQL)"
        );
        assert!(Strategy::PromoteALL.guarantees_serializable(false));
    }

    #[test]
    fn conflict_table_requirement() {
        assert!(Strategy::MaterializeWT.needs_conflict_table());
        assert!(Strategy::MaterializeALL.needs_conflict_table());
        assert!(!Strategy::PromoteALL.needs_conflict_table());
        assert!(!Strategy::BaseSI.needs_conflict_table());
    }

    #[test]
    fn names_are_the_papers() {
        assert_eq!(Strategy::BaseSI.name(), "SI");
        assert_eq!(Strategy::PromoteWTUpd.to_string(), "PromoteWT-upd");
        assert_eq!(Strategy::all().len(), 9);
    }
}
