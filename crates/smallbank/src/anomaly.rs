//! The concrete SmallBank anomaly (§III-C), scripted deterministically.
//!
//! The execution from Fekete, O'Neil & O'Neil's "read-only transaction
//! anomaly", transplanted onto SmallBank exactly as the paper describes:
//! `WriteCheck` and `TransactSaving` run concurrently on the same
//! snapshot, and a `Balance` transaction between their commits observes a
//! total that is inconsistent with the overdraft penalty the final state
//! shows. Under plain SI all three commit (non-serializable); under every
//! correct strategy the engine aborts one of them.
//!
//! The script drives `WriteCheck` step-by-step through the raw engine API
//! (with the strategy's extra statements included), because the anomaly
//! needs its reads and writes separated in time; `TransactSaving` runs on
//! its own thread (it may legitimately block on promoted locks) and
//! `Balance` runs inline through the normal procedure.

use crate::procs::{SbError, SmallBank};
use crate::schema::customer_name;
use sicost_common::Money;
use sicost_storage::{Row, Value};

/// Outcome of one scripted run.
#[derive(Debug)]
pub struct AnomalyOutcome {
    /// What the mid-script Balance transaction returned (it always
    /// commits under WT-side strategies; under BW-side strategies it can
    /// itself abort).
    pub balance_seen: Result<Money, SbError>,
    /// Outcome of the concurrent TransactSaving(+$20).
    pub ts_result: Result<(), SbError>,
    /// Outcome of the scripted WriteCheck($10).
    pub wc_result: Result<(), SbError>,
    /// Final savings balance.
    pub final_saving: Money,
    /// Final checking balance.
    pub final_checking: Money,
}

impl AnomalyOutcome {
    /// The semantic test for the anomaly: every transaction committed,
    /// the check was penalised (checking = −$11), yet Balance saw $20 —
    /// a total under which no serial order charges the penalty.
    pub fn is_anomalous(&self) -> bool {
        self.ts_result.is_ok()
            && self.wc_result.is_ok()
            && self.balance_seen == Ok(Money::dollars(20))
            && self.final_checking == Money::dollars(-11)
    }
}

/// Runs the scripted interleaving against customer 0 of `bank`:
///
/// ```text
/// begin(WC)  read sav, chk            (sees 0, 0)
///            ── TS(+$20) runs to completion (may block, then abort)
///            ── Bal runs               (sees $20 when TS committed)
/// WC:        charge $10 (+$1 penalty since its snapshot shows $0)
/// commit(WC)
/// ```
pub fn run_write_skew_script(bank: &SmallBank) -> AnomalyOutcome {
    let name = customer_name(0);
    let tables = *bank.tables();
    let db = bank.db();
    let mods = bank.strategy().mods();

    // Deterministic starting state: both balances zero (setup-level load,
    // outside the measured interleaving).
    let cid = 0i64;
    db.bulk_load(
        tables.saving,
        [Row::new(vec![Value::int(cid), Value::int(0)])],
    )
    .expect("reset saving");
    db.bulk_load(
        tables.checking,
        [Row::new(vec![Value::int(cid), Value::int(0)])],
    )
    .expect("reset checking");

    let v = Money::dollars(10);

    // ---- WC begins and performs its reads on the pre-TS snapshot.
    let mut wc = db.begin();
    let mut wc_failed: Option<SbError> = None;
    let mut sav_seen = Money::ZERO;
    let mut chk_seen = Money::ZERO;
    {
        let step = (|| -> Result<(), SbError> {
            let acct = wc
                .read(tables.account, &Value::str(&name))?
                .ok_or(SbError::AccountMissing)?;
            let cid = acct.int(1);
            let sav_row = if mods.wc_sfu_saving {
                wc.read_for_update(tables.saving, &Value::int(cid))?
            } else {
                wc.read(tables.saving, &Value::int(cid))?
            };
            sav_seen = sav_row
                .map(|r| Money::cents(r.int(1)))
                .unwrap_or(Money::ZERO);
            let chk_row = wc.read(tables.checking, &Value::int(cid))?;
            chk_seen = chk_row
                .map(|r| Money::cents(r.int(1)))
                .unwrap_or(Money::ZERO);
            Ok(())
        })();
        if let Err(e) = step {
            wc_failed = Some(e);
        }
    }

    // ---- TS(+$20) runs concurrently on its own thread (it may block on
    // a promoted lock until WC finishes).
    let (ts_result, balance_seen) = std::thread::scope(|s| {
        let ts_handle = s.spawn(|| bank.transact_saving(&name, Money::dollars(20)));
        // Give TS time to commit when it is not blocked.
        std::thread::sleep(std::time::Duration::from_millis(60));
        // ---- Bal observes the state between the two commits.
        let balance_seen = bank.balance(&name);

        // ---- WC finishes on its original snapshot.
        if wc_failed.is_none() {
            let step = (|| -> Result<(), SbError> {
                let charge = if sav_seen + chk_seen < v {
                    v + Money::dollars(1)
                } else {
                    v
                };
                wc.update(
                    tables.checking,
                    &Value::int(cid),
                    Row::new(vec![
                        Value::int(cid),
                        Value::int((chk_seen - charge).as_cents()),
                    ]),
                )?;
                if mods.wc_ident_saving {
                    wc.update(
                        tables.saving,
                        &Value::int(cid),
                        Row::new(vec![Value::int(cid), Value::int(sav_seen.as_cents())]),
                    )?;
                }
                if mods.wc_conflict {
                    let key = Value::int(cid);
                    let cur = wc
                        .read(tables.conflict, &key)?
                        .map(|r| r.int(1))
                        .unwrap_or(0);
                    wc.update(
                        tables.conflict,
                        &key,
                        Row::new(vec![key.clone(), Value::int(cur + 1)]),
                    )?;
                }
                Ok(())
            })();
            if let Err(e) = step {
                wc_failed = Some(e);
            }
        }
        let wc_result = match wc_failed.take() {
            Some(e) => {
                // The transaction may already be poisoned; dropping it is
                // the rollback.
                Err(e)
            }
            None => wc.commit().map(|_| ()).map_err(SbError::from),
        };
        let ts_result = ts_handle.join().expect("TS thread");
        (ts_result, (balance_seen, wc_result))
    });
    let (balance_seen, wc_result) = balance_seen;

    // ---- Final state.
    let read_cents = |table| {
        db.catalog()
            .table(table)
            .read_at(&Value::int(cid), db.clock())
            .and_then(|v| v.row)
            .map(|r| r.int(1))
            .unwrap_or(0)
    };
    AnomalyOutcome {
        balance_seen,
        ts_result,
        wc_result,
        final_saving: Money::cents(read_cents(tables.saving)),
        final_checking: Money::cents(read_cents(tables.checking)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SmallBankConfig;
    use crate::strategy::Strategy;
    use sicost_engine::{CcMode, EngineConfig, SfuSemantics};
    use sicost_mvsg::{History, Mvsg};
    use std::sync::Arc;

    fn run(strategy: Strategy, engine: EngineConfig) -> (AnomalyOutcome, Arc<History>) {
        let history = History::new();
        let bank = SmallBank::with_observer(
            &SmallBankConfig::small(4),
            engine,
            strategy,
            Some(history.clone() as Arc<dyn sicost_engine::HistoryObserver>),
        );
        let outcome = run_write_skew_script(&bank);
        (outcome, history)
    }

    #[test]
    fn base_si_exhibits_the_anomaly_and_fails_certification() {
        let (outcome, history) = run(Strategy::BaseSI, EngineConfig::functional());
        assert!(
            outcome.is_anomalous(),
            "plain SI must exhibit the anomaly: {outcome:?}"
        );
        let report = Mvsg::from_events(&history.events()).certify();
        assert!(
            !report.serializable,
            "the MVSG certifier must reject the SI execution"
        );
    }

    #[test]
    fn wt_strategies_prevent_the_anomaly_on_postgres() {
        for strategy in [
            Strategy::MaterializeWT,
            Strategy::PromoteWTUpd,
            Strategy::MaterializeBW,
            Strategy::PromoteBWUpd,
            Strategy::MaterializeALL,
            Strategy::PromoteALL,
        ] {
            let (outcome, history) = run(strategy, EngineConfig::functional());
            assert!(
                !outcome.is_anomalous(),
                "{strategy} must prevent the anomaly: {outcome:?}"
            );
            // Exactly one of the participants must have died by a
            // serialization failure (they genuinely conflict now).
            let serialization_abort = [
                outcome.ts_result.as_ref().err(),
                outcome.wc_result.as_ref().err(),
                outcome.balance_seen.as_ref().err(),
            ]
            .into_iter()
            .flatten()
            .any(|e| e.is_serialization_failure());
            assert!(
                serialization_abort,
                "{strategy}: some transaction must abort: {outcome:?}"
            );
            let report = Mvsg::from_events(&history.events()).certify();
            assert!(report.serializable, "{strategy} execution must certify");
        }
    }

    #[test]
    fn sfu_promotion_works_only_on_the_commercial_platform() {
        // PostgreSQL semantics: lock-only sfu leaves the §II-C
        // interleaving open. The cleanest demonstration is PromoteBW-sfu:
        // Bal sfu-reads Checking, commits, and WriteCheck's later write
        // proceeds — all three commit and the anomaly survives.
        let (outcome, history) = run(Strategy::PromoteBWSfu, EngineConfig::functional());
        assert!(
            outcome.is_anomalous(),
            "lock-only sfu must NOT fix the anomaly (§II-C): {outcome:?}"
        );
        assert!(!Mvsg::from_events(&history.events()).is_serializable());

        // PromoteWT-sfu under lock-only semantics: the SDG still flags
        // the WT edge as vulnerable (see sdg_spec tests), but in *this*
        // script the saving lock delays TS past WC's commit, which
        // forces a serializable order — no assertion of anomaly either way.
        let (outcome, _) = run(Strategy::PromoteWTSfu, EngineConfig::functional());
        assert!(
            !outcome.is_anomalous(),
            "the lock ordering serialises this particular script: {outcome:?}"
        );

        // Commercial semantics: sfu is an identity write.
        let commercial = EngineConfig::functional()
            .with_cc(CcMode::SiFirstCommitterWins)
            .with_sfu(SfuSemantics::IdentityWrite);
        let (outcome, history) = run(Strategy::PromoteWTSfu, commercial.clone());
        assert!(
            !outcome.is_anomalous(),
            "sfu-as-write must fix the anomaly: {outcome:?}"
        );
        assert!(Mvsg::from_events(&history.events()).is_serializable());

        let (outcome, history) = run(Strategy::PromoteBWSfu, commercial);
        assert!(!outcome.is_anomalous(), "{outcome:?}");
        assert!(Mvsg::from_events(&history.events()).is_serializable());
    }

    #[test]
    fn ssi_engine_prevents_the_anomaly_without_program_changes() {
        let (outcome, history) = run(
            Strategy::BaseSI,
            EngineConfig::functional().with_cc(CcMode::Ssi),
        );
        assert!(
            !outcome.is_anomalous(),
            "SSI must block the anomaly with unmodified programs: {outcome:?}"
        );
        let report = Mvsg::from_events(&history.events()).certify();
        assert!(report.serializable);
    }

    #[test]
    fn s2pl_engine_prevents_the_anomaly_without_program_changes() {
        let (outcome, history) = run(
            Strategy::BaseSI,
            EngineConfig::functional().with_cc(CcMode::S2pl),
        );
        assert!(!outcome.is_anomalous(), "{outcome:?}");
        assert!(Mvsg::from_events(&history.events()).is_serializable());
    }

    #[test]
    fn anomalous_state_details_under_plain_si() {
        let (outcome, _) = run(Strategy::BaseSI, EngineConfig::functional());
        // TS deposited $20 into savings; WC charged $10 + $1 penalty
        // against a $0 snapshot.
        assert_eq!(outcome.final_saving, Money::dollars(20));
        assert_eq!(outcome.final_checking, Money::dollars(-11));
        assert_eq!(outcome.balance_seen, Ok(Money::dollars(20)));
    }
}
