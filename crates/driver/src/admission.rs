//! The admission controller: a bounded queue between the arrival process
//! and the worker pool.
//!
//! Past saturation an open system must choose what to do with work it
//! cannot start: queue it without limit (latency diverges), shed it at
//! the door (goodput holds, latency stays bounded, clients see explicit
//! rejections), or apply backpressure by blocking the submitter for a
//! bounded time. [`AdmissionPolicy`] names the three choices;
//! [`AdmissionQueue`] implements them over one mutex + two condvars.
//!
//! State machine of one offered request:
//!
//! ```text
//!              ┌────────── queue full? ──────────┐
//! offered ──►  │ Unbounded        → enqueue      │ ──► queued ──► popped
//!              │ DropOnFull       → SHED         │       by a worker
//!              │ BlockWithTimeout → wait not_full│
//!              │     ├─ space within timeout →   │
//!              │     │             enqueue       │
//!              │     └─ deadline passes → TIMEOUT│
//!              └─────────────────────────────────┘
//! ```

use sicost_common::sync::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// What the admission controller does when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Every arrival is queued; the queue grows without bound. Past
    /// saturation the backlog — and with it end-to-end latency — grows
    /// linearly for as long as the overload lasts.
    Unbounded,
    /// Load shedding: an arrival that finds `capacity` requests already
    /// queued is rejected immediately ([`Admission::Shed`]). Bounds the
    /// queue delay of everything that *is* served at roughly
    /// `capacity × service time ÷ workers`.
    DropOnFull {
        /// Maximum queued (not yet started) requests.
        capacity: usize,
    },
    /// Backpressure: the submitter blocks until space frees up or
    /// `timeout` elapses; expiry surfaces as [`Admission::TimedOut`],
    /// distinct from a shed. Note that blocking the submitter distorts
    /// the offered process itself — that is the point of backpressure.
    BlockWithTimeout {
        /// Maximum queued requests.
        capacity: usize,
        /// How long a submitter is willing to wait for space.
        timeout: Duration,
    },
}

impl AdmissionPolicy {
    /// Short name for reports (`unbounded` / `drop-on-full` /
    /// `block-with-timeout`).
    pub fn name(&self) -> &'static str {
        match self {
            AdmissionPolicy::Unbounded => "unbounded",
            AdmissionPolicy::DropOnFull { .. } => "drop-on-full",
            AdmissionPolicy::BlockWithTimeout { .. } => "block-with-timeout",
        }
    }

    /// The queue bound, when the policy has one.
    pub fn capacity(&self) -> Option<usize> {
        match self {
            AdmissionPolicy::Unbounded => None,
            AdmissionPolicy::DropOnFull { capacity }
            | AdmissionPolicy::BlockWithTimeout { capacity, .. } => Some(*capacity),
        }
    }
}

/// The admission controller's verdict on one offered request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Enqueued; a worker will pick it up.
    Admitted,
    /// Rejected immediately because the queue was full (`DropOnFull`).
    Shed,
    /// The submitter waited the full timeout and space never freed up
    /// (`BlockWithTimeout`).
    TimedOut,
}

struct Inner<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// A multi-producer multi-consumer admission queue with a configurable
/// full-queue policy. Producers call [`AdmissionQueue::offer`], workers
/// loop on [`AdmissionQueue::pop`] until it returns `None` (closed *and*
/// drained), and the run coordinator calls [`AdmissionQueue::close`]
/// once the arrival schedule is exhausted.
pub struct AdmissionQueue<T> {
    policy: AdmissionPolicy,
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    shed: AtomicU64,
    timed_out: AtomicU64,
    admitted: AtomicU64,
    max_depth: AtomicU64,
}

impl<T> AdmissionQueue<T> {
    /// Creates an empty queue under the given policy.
    pub fn new(policy: AdmissionPolicy) -> Self {
        Self {
            policy,
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            shed: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            max_depth: AtomicU64::new(0),
        }
    }

    /// The policy the queue was built with.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Offers one request, applying the policy. Offers against a closed
    /// queue are shed regardless of policy (shutdown must not block).
    pub fn offer(&self, item: T) -> Admission {
        let mut inner = self.inner.lock();
        if inner.closed {
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Admission::Shed;
        }
        match self.policy {
            AdmissionPolicy::Unbounded => {}
            AdmissionPolicy::DropOnFull { capacity } => {
                if inner.queue.len() >= capacity {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    return Admission::Shed;
                }
            }
            AdmissionPolicy::BlockWithTimeout { capacity, timeout } => {
                // The wait's own expiry is the authoritative timeout
                // signal: under simulation the timeout elapses in
                // *virtual* time, so re-deriving it from a wall-clock
                // deadline would spin forever. `remaining` only shrinks
                // the budget across spurious wakeups (wall-clock
                // best-effort; zero under the sim, which is fine — the
                // virtual wait re-arms with the same budget and expires
                // deterministically).
                let mut remaining = timeout;
                while inner.queue.len() >= capacity && !inner.closed {
                    if remaining.is_zero() {
                        self.timed_out.fetch_add(1, Ordering::Relaxed);
                        return Admission::TimedOut;
                    }
                    let waited = Instant::now();
                    let timed_out = self.not_full.wait_timeout(&mut inner, remaining);
                    if timed_out {
                        if inner.queue.len() >= capacity && !inner.closed {
                            self.timed_out.fetch_add(1, Ordering::Relaxed);
                            return Admission::TimedOut;
                        }
                        break;
                    }
                    remaining = remaining.saturating_sub(waited.elapsed());
                }
                if inner.closed {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    return Admission::Shed;
                }
            }
        }
        inner.queue.push_back(item);
        let depth = inner.queue.len() as u64;
        self.max_depth.fetch_max(depth, Ordering::Relaxed);
        self.admitted.fetch_add(1, Ordering::Relaxed);
        drop(inner);
        self.not_empty.notify_one();
        Admission::Admitted
    }

    /// Takes the oldest queued request, blocking while the queue is empty
    /// but open. Returns `None` once the queue is closed *and* drained —
    /// the worker-pool shutdown signal.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(item) = inner.queue.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            self.not_empty.wait(&mut inner);
        }
    }

    /// Closes the queue: no further admissions; workers drain what is
    /// queued and then see `None`. Blocked submitters are released (their
    /// offers are shed).
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Requests currently queued (racy snapshot).
    pub fn depth(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Deepest the queue ever got.
    pub fn max_depth(&self) -> u64 {
        self.max_depth.load(Ordering::Relaxed)
    }

    /// Total offers admitted.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Total offers shed (drop-on-full, or any offer after close).
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Total offers that timed out waiting for space.
    pub fn timed_out(&self) -> u64 {
        self.timed_out.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn unbounded_admits_everything() {
        let q = AdmissionQueue::new(AdmissionPolicy::Unbounded);
        for i in 0..1000 {
            assert_eq!(q.offer(i), Admission::Admitted);
        }
        assert_eq!(q.admitted(), 1000);
        assert_eq!(q.shed(), 0);
        assert_eq!(q.max_depth(), 1000);
    }

    #[test]
    fn drop_on_full_sheds_and_counts() {
        let q = AdmissionQueue::new(AdmissionPolicy::DropOnFull { capacity: 3 });
        assert_eq!(q.offer(1), Admission::Admitted);
        assert_eq!(q.offer(2), Admission::Admitted);
        assert_eq!(q.offer(3), Admission::Admitted);
        assert_eq!(q.offer(4), Admission::Shed, "queue is at capacity");
        assert_eq!(q.shed(), 1);
        assert_eq!(q.timed_out(), 0, "a shed is not a timeout");
        // Popping frees a slot.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.offer(5), Admission::Admitted);
        assert_eq!(q.max_depth(), 3);
    }

    #[test]
    fn block_with_timeout_times_out_distinctly() {
        let q = AdmissionQueue::new(AdmissionPolicy::BlockWithTimeout {
            capacity: 1,
            timeout: Duration::from_millis(20),
        });
        assert_eq!(q.offer(1), Admission::Admitted);
        let t0 = Instant::now();
        assert_eq!(q.offer(2), Admission::TimedOut, "no consumer frees space");
        assert!(
            t0.elapsed() >= Duration::from_millis(15),
            "the submitter must actually have waited"
        );
        assert_eq!(q.timed_out(), 1);
        assert_eq!(q.shed(), 0, "a timeout is not a shed");
    }

    #[test]
    fn block_with_timeout_admits_once_space_frees_up() {
        let q = Arc::new(AdmissionQueue::new(AdmissionPolicy::BlockWithTimeout {
            capacity: 1,
            timeout: Duration::from_secs(5),
        }));
        assert_eq!(q.offer(1u32), Admission::Admitted);
        let q2 = q.clone();
        let consumer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            q2.pop()
        });
        // Blocks ~30ms, then the pop frees the slot well inside the budget.
        assert_eq!(q.offer(2), Admission::Admitted);
        assert_eq!(consumer.join().unwrap(), Some(1));
        assert_eq!(q.timed_out(), 0);
    }

    #[test]
    fn close_drains_then_stops_workers_and_sheds_late_offers() {
        let q = AdmissionQueue::new(AdmissionPolicy::Unbounded);
        q.offer(1);
        q.offer(2);
        q.close();
        assert_eq!(q.pop(), Some(1), "queued work is drained after close");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "drained + closed → shutdown signal");
        assert_eq!(q.offer(3), Admission::Shed, "offers after close are shed");
    }

    #[test]
    fn close_releases_a_blocked_submitter() {
        let q = Arc::new(AdmissionQueue::new(AdmissionPolicy::BlockWithTimeout {
            capacity: 1,
            timeout: Duration::from_secs(30),
        }));
        q.offer(1u32);
        let q2 = q.clone();
        let submitter = std::thread::spawn(move || q2.offer(2));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(
            submitter.join().unwrap(),
            Admission::Shed,
            "shutdown must not leave the submitter blocked for the full timeout"
        );
    }

    #[test]
    fn pop_blocks_until_an_offer_arrives() {
        let q = Arc::new(AdmissionQueue::new(AdmissionPolicy::Unbounded));
        let q2 = q.clone();
        let worker = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(10));
        q.offer(42u32);
        assert_eq!(worker.join().unwrap(), Some(42));
    }
}
