//! The closed-system runner.

use crate::metrics::{Outcome, RunMetrics};
use sicost_common::{OnlineStats, Summary, Xoshiro256};
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// Something the driver can measure: a transaction source.
pub trait Workload: Send + Sync {
    /// Names of the transaction kinds (stable indexes).
    fn kinds(&self) -> Vec<&'static str>;

    /// Runs one transaction to completion (commit or abort), returning
    /// its kind index and outcome. Blocking inside (locks, group commit)
    /// is expected — that is the system under test.
    fn run_once(&self, rng: &mut Xoshiro256) -> (usize, Outcome);
}

/// Parameters of one measured run.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Multiprogramming level: number of closed-loop client threads.
    pub mpl: usize,
    /// Warm-up excluded from measurement (paper: 30 s; scaled down here).
    pub ramp_up: Duration,
    /// Measurement interval (paper: 60 s).
    pub measure: Duration,
    /// Base RNG seed; thread `i` uses an independent stream.
    pub seed: u64,
}

impl RunConfig {
    /// A fast configuration for tests.
    pub fn quick(mpl: usize) -> Self {
        Self {
            mpl,
            ramp_up: Duration::from_millis(50),
            measure: Duration::from_millis(300),
            seed: 0xD1CE,
        }
    }
}

const PHASE_RAMP: u8 = 0;
const PHASE_MEASURE: u8 = 1;
const PHASE_DONE: u8 = 2;

/// Runs the closed system: `mpl` threads, each looping
/// submit-wait-submit with no think time. Returns the merged metrics for
/// the measurement interval only. Attempts are attributed to the interval
/// in which they *finish*.
pub fn run_closed<W: Workload>(workload: &W, config: RunConfig) -> RunMetrics {
    let kinds = workload.kinds();
    let phase = AtomicU8::new(PHASE_RAMP);
    let base_rng = Xoshiro256::seed_from_u64(config.seed);

    let mut merged = RunMetrics::new(kinds.clone(), config.mpl);
    let measured = std::thread::scope(|s| {
        let phase_ref = &phase;
        let handles: Vec<_> = (0..config.mpl)
            .map(|i| {
                let mut rng = base_rng.stream(i as u64);
                let kinds_len = kinds.len();
                s.spawn(move || {
                    let mut local = RunMetrics::new(vec![""; kinds_len].clone(), 0);
                    loop {
                        match phase_ref.load(Ordering::Acquire) {
                            PHASE_DONE => break,
                            current_phase => {
                                let t0 = Instant::now();
                                let (kind, outcome) = workload.run_once(&mut rng);
                                let latency = t0.elapsed();
                                // Count only if we are *still* measuring
                                // (or were when we started): attribute to
                                // finish-time phase.
                                if phase_ref.load(Ordering::Acquire) == PHASE_MEASURE
                                    && current_phase != PHASE_DONE
                                {
                                    local.per_kind[kind].record(outcome, latency);
                                }
                            }
                        }
                    }
                    local
                })
            })
            .collect();

        std::thread::sleep(config.ramp_up);
        phase.store(PHASE_MEASURE, Ordering::Release);
        let t0 = Instant::now();
        std::thread::sleep(config.measure);
        phase.store(PHASE_DONE, Ordering::Release);
        let measured = t0.elapsed();

        for h in handles {
            let local = h.join().expect("client thread");
            for (agg, part) in merged.per_kind.iter_mut().zip(&local.per_kind) {
                agg.merge(part);
            }
        }
        measured
    });
    merged.measured = measured;
    merged
}

/// Runs `repeats` independent runs (each against a workload freshly built
/// by `factory`, mirroring the paper's five repetitions) and summarises
/// throughput.
pub fn repeat_summary<W: Workload>(
    mut factory: impl FnMut(u64) -> W,
    config: RunConfig,
    repeats: u64,
) -> (Summary, Vec<RunMetrics>) {
    let mut stats = OnlineStats::new();
    let mut runs = Vec::with_capacity(repeats as usize);
    for r in 0..repeats {
        let workload = factory(r);
        let mut cfg = config;
        cfg.seed = config.seed.wrapping_add(r.wrapping_mul(0x9E37_79B9));
        let metrics = run_closed(&workload, cfg);
        stats.push(metrics.tps());
        runs.push(metrics);
    }
    (stats.summary(), runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// A deterministic workload: kind 0 always commits in ~1ms, kind 1
    /// always serialization-fails.
    struct Toy {
        attempts: AtomicU64,
    }

    impl Workload for Toy {
        fn kinds(&self) -> Vec<&'static str> {
            vec!["ok", "fail"]
        }
        fn run_once(&self, rng: &mut Xoshiro256) -> (usize, Outcome) {
            self.attempts.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_micros(500));
            if rng.next_bool(0.5) {
                (0, Outcome::Committed)
            } else {
                (1, Outcome::SerializationFailure)
            }
        }
    }

    #[test]
    fn closed_run_counts_only_the_measurement_interval() {
        let toy = Toy {
            attempts: AtomicU64::new(0),
        };
        let m = run_closed(&toy, RunConfig::quick(4));
        let counted = m.commits() + m.serialization_failures();
        let attempted = toy.attempts.load(Ordering::Relaxed);
        assert!(counted > 0, "something must be measured");
        assert!(
            counted < attempted,
            "ramp-up attempts must be excluded ({counted} vs {attempted})"
        );
        assert_eq!(m.deadlocks(), 0);
        assert!(m.kind("ok").unwrap().commits > 0);
        assert_eq!(m.kind("fail").unwrap().commits, 0);
    }

    #[test]
    fn tps_scales_with_mpl_for_a_sleep_bound_workload() {
        let toy = Toy {
            attempts: AtomicU64::new(0),
        };
        let m1 = run_closed(&toy, RunConfig::quick(1));
        let toy2 = Toy {
            attempts: AtomicU64::new(0),
        };
        let m8 = run_closed(&toy2, RunConfig::quick(8));
        assert!(
            m8.tps() > m1.tps() * 3.0,
            "8 threads must far outrun 1 on a sleep-bound load: {} vs {}",
            m8.tps(),
            m1.tps()
        );
    }

    #[test]
    fn repeats_summarise_with_ci() {
        let (summary, runs) = repeat_summary(
            |_| Toy {
                attempts: AtomicU64::new(0),
            },
            RunConfig::quick(2),
            3,
        );
        assert_eq!(runs.len(), 3);
        assert_eq!(summary.n, 3);
        assert!(summary.mean > 0.0);
    }

    #[test]
    fn latency_is_recorded_for_commits() {
        let toy = Toy {
            attempts: AtomicU64::new(0),
        };
        let m = run_closed(&toy, RunConfig::quick(2));
        let lat = m.mean_latency();
        assert!(
            lat >= Duration::from_micros(400),
            "mean latency must reflect the sleep: {lat:?}"
        );
    }
}
