//! The closed-system runner.

use crate::hooks::AttemptObserver;
use crate::metrics::{Outcome, RunMetrics};
use crate::retry::{RetryDecision, RetryPolicy};
use sicost_common::{OnlineStats, Summary, Xoshiro256};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Something the driver can measure: a transaction source.
///
/// Sampling and execution are split so the retry loop can re-execute the
/// *same* request after a retryable abort — retrying a SmallBank transfer
/// must not silently turn it into a different transfer.
pub trait Workload: Send + Sync {
    /// One sampled client request, replayable across attempts.
    type Request: Send;

    /// Names of the transaction kinds (stable indexes).
    fn kinds(&self) -> Vec<&'static str>;

    /// Draws the next request and its kind index from the client's RNG.
    fn sample(&self, rng: &mut Xoshiro256) -> (usize, Self::Request);

    /// Runs one attempt of `request` to completion (commit or abort).
    /// `attempt` is 1-based and increments on each retry of the same
    /// request. Blocking inside (locks, group commit) is expected — that
    /// is the system under test.
    fn execute(&self, request: &Self::Request, attempt: u32) -> Outcome;
}

/// Parameters of one measured run.
///
/// Built builder-style from [`RunConfig::new`]; the attempt observer —
/// previously a separate `run_closed_observed` entry point — is part of
/// the configuration ([`RunConfig::with_observer`]), so [`run`] is the
/// single way to execute a closed-system run.
#[derive(Clone)]
pub struct RunConfig {
    /// Multiprogramming level: number of closed-loop client threads.
    pub mpl: usize,
    /// Warm-up excluded from measurement (paper: 30 s; scaled down here).
    pub ramp_up: Duration,
    /// Measurement interval (paper: 60 s).
    pub measure: Duration,
    /// Base RNG seed; thread `i` uses an independent stream.
    pub seed: u64,
    /// Client retry policy applied to every request.
    pub retry: RetryPolicy,
    /// Observer that sees every attempt (including ramp-up ones) on the
    /// client thread that runs it — how the `sicost-trace` sink learns
    /// which kind and attempt the engine events that follow belong to.
    pub observer: Option<Arc<dyn AttemptObserver>>,
}

impl std::fmt::Debug for RunConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunConfig")
            .field("mpl", &self.mpl)
            .field("ramp_up", &self.ramp_up)
            .field("measure", &self.measure)
            .field("seed", &self.seed)
            .field("retry", &self.retry)
            .field("observer", &self.observer.as_ref().map(|_| "<observer>"))
            .finish()
    }
}

impl RunConfig {
    /// A configuration at `mpl` with fast test-friendly defaults (50 ms
    /// ramp-up, 300 ms measurement, retry disabled, no observer); adjust
    /// with the `with_*` builders.
    pub fn new(mpl: usize) -> Self {
        Self {
            mpl,
            ramp_up: Duration::from_millis(50),
            measure: Duration::from_millis(300),
            seed: 0xD1CE,
            retry: RetryPolicy::disabled(),
            observer: None,
        }
    }

    /// A fast configuration for tests. Retry is disabled so every attempt
    /// is final, as in the pre-retry driver. (Alias of [`RunConfig::new`].)
    pub fn quick(mpl: usize) -> Self {
        Self::new(mpl)
    }

    /// Sets the ramp-up period excluded from measurement (builder-style).
    pub fn with_ramp_up(mut self, ramp_up: Duration) -> Self {
        self.ramp_up = ramp_up;
        self
    }

    /// Sets the measurement interval (builder-style).
    pub fn with_measure(mut self, measure: Duration) -> Self {
        self.measure = measure;
        self
    }

    /// Sets the base RNG seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the retry policy (builder-style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attaches an [`AttemptObserver`] (builder-style). The observer sees
    /// every attempt, including ramp-up ones, on the thread running it.
    pub fn with_observer(mut self, observer: Arc<dyn AttemptObserver>) -> Self {
        self.observer = Some(observer);
        self
    }
}

const PHASE_RAMP: u8 = 0;
const PHASE_MEASURE: u8 = 1;
const PHASE_DONE: u8 = 2;

/// Runs the closed system: `mpl` threads, each looping
/// sample–execute–retry with no think time. Each client retries its
/// current request under [`RunConfig::retry`] until it commits, fails
/// non-retryably, or exhausts the budget (a give-up). The configured
/// [`RunConfig::observer`], if any, sees every attempt (including
/// ramp-up ones) on the client thread that runs it. Returns the merged
/// metrics for the measurement interval only; a whole operation (all of
/// its attempts) is attributed to the measurement interval only when it
/// both *began* and *finished* inside it, so per-kind attempt counts stay
/// exact multiples of the per-request retry schedule and no ramp-up
/// attempts or ramp-up latency leak into the measured numbers.
pub fn run<W: Workload>(workload: &W, config: &RunConfig) -> RunMetrics {
    run_inner(workload, config, config.observer.as_deref())
}

fn run_inner<W: Workload>(
    workload: &W,
    config: &RunConfig,
    hook: Option<&dyn AttemptObserver>,
) -> RunMetrics {
    let kinds = workload.kinds();
    let phase = AtomicU8::new(PHASE_RAMP);
    let base_rng = Xoshiro256::seed_from_u64(config.seed);

    let mut merged = RunMetrics::new(kinds.clone(), config.mpl);
    let measured = std::thread::scope(|s| {
        let phase_ref = &phase;
        let handles: Vec<_> = (0..config.mpl)
            .map(|i| {
                let mut rng = base_rng.stream(i as u64);
                let kind_names = kinds.clone();
                s.spawn(move || {
                    let mut local = RunMetrics::new(vec![""; kind_names.len()], 0);
                    // Attempt outcomes of the in-flight operation, buffered
                    // so the whole operation is recorded atomically at its
                    // completion (or discarded outside the interval).
                    let mut attempts_buf: Vec<Outcome> = Vec::new();
                    while phase_ref.load(Ordering::Acquire) != PHASE_DONE {
                        // Phase at the operation's *start*: an op that
                        // straddles the ramp→measure boundary must not
                        // attribute its ramp-up attempts (or their latency)
                        // to the measurement interval.
                        let started_in_measure = phase_ref.load(Ordering::Acquire) == PHASE_MEASURE;
                        let (kind, request) = workload.sample(&mut rng);
                        let op_t0 = Instant::now();
                        let mut attempt = 1u32;
                        attempts_buf.clear();
                        let mut last_attempt_time;
                        let (final_outcome, gave_up) = loop {
                            if let Some(h) = hook {
                                h.attempt_begin(kind, kind_names[kind], attempt);
                            }
                            let t0 = Instant::now();
                            let outcome = workload.execute(&request, attempt);
                            last_attempt_time = t0.elapsed();
                            if let Some(h) = hook {
                                h.attempt_end(outcome, last_attempt_time);
                            }
                            attempts_buf.push(outcome);
                            match config.retry.decide(outcome, attempt, &mut rng) {
                                RetryDecision::Done => break (outcome, false),
                                RetryDecision::GiveUp => break (outcome, true),
                                RetryDecision::Retry(backoff) => {
                                    // Stop retrying once the run is over so
                                    // shutdown never waits on a backoff chain.
                                    if phase_ref.load(Ordering::Acquire) == PHASE_DONE {
                                        break (outcome, false);
                                    }
                                    if !backoff.is_zero() {
                                        std::thread::sleep(backoff);
                                    }
                                    attempt += 1;
                                }
                            }
                        };
                        if !started_in_measure || phase_ref.load(Ordering::Acquire) != PHASE_MEASURE
                        {
                            continue;
                        }
                        let op_latency = op_t0.elapsed();
                        let k = &mut local.per_kind[kind];
                        for outcome in &attempts_buf {
                            // Commit latency is recorded at operation
                            // granularity below, not per attempt.
                            if *outcome != Outcome::Committed {
                                k.record(*outcome, Duration::ZERO);
                            }
                        }
                        if final_outcome == Outcome::Committed {
                            k.record(Outcome::Committed, op_latency);
                            k.record_commit_op(
                                attempts_buf.len() as u64,
                                op_latency.saturating_sub(last_attempt_time),
                            );
                        } else if gave_up {
                            k.record_give_up();
                        }
                    }
                    local
                })
            })
            .collect();

        std::thread::sleep(config.ramp_up);
        phase.store(PHASE_MEASURE, Ordering::Release);
        let t0 = Instant::now();
        std::thread::sleep(config.measure);
        phase.store(PHASE_DONE, Ordering::Release);
        let measured = t0.elapsed();

        for h in handles {
            let local = h.join().expect("client thread");
            for (agg, part) in merged.per_kind.iter_mut().zip(&local.per_kind) {
                agg.merge(part);
            }
        }
        measured
    });
    merged.measured = measured;
    merged
}

/// Runs `repeats` independent runs (each against a workload freshly built
/// by `factory`, mirroring the paper's five repetitions) and summarises
/// throughput.
pub fn repeat_summary<W: Workload>(
    mut factory: impl FnMut(u64) -> W,
    config: RunConfig,
    repeats: u64,
) -> (Summary, Vec<RunMetrics>) {
    let mut stats = OnlineStats::new();
    let mut runs = Vec::with_capacity(repeats as usize);
    for r in 0..repeats {
        let workload = factory(r);
        let mut cfg = config.clone();
        cfg.seed = config.seed.wrapping_add(r.wrapping_mul(0x9E37_79B9));
        let metrics = run(&workload, &cfg);
        stats.push(metrics.tps());
        runs.push(metrics);
    }
    (stats.summary(), runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// A deterministic workload: kind 0 always commits in ~1ms, kind 1
    /// always serialization-fails.
    struct Toy {
        attempts: AtomicU64,
    }

    impl Workload for Toy {
        type Request = bool;

        fn kinds(&self) -> Vec<&'static str> {
            vec!["ok", "fail"]
        }
        fn sample(&self, rng: &mut Xoshiro256) -> (usize, bool) {
            let ok = rng.next_bool(0.5);
            (usize::from(!ok), ok)
        }
        fn execute(&self, ok: &bool, _attempt: u32) -> Outcome {
            self.attempts.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_micros(500));
            if *ok {
                Outcome::Committed
            } else {
                Outcome::SerializationFailure
            }
        }
    }

    #[test]
    fn closed_run_counts_only_the_measurement_interval() {
        let toy = Toy {
            attempts: AtomicU64::new(0),
        };
        let m = run(&toy, &RunConfig::quick(4));
        let counted = m.commits() + m.serialization_failures();
        let attempted = toy.attempts.load(Ordering::Relaxed);
        assert!(counted > 0, "something must be measured");
        assert!(
            counted < attempted,
            "ramp-up attempts must be excluded ({counted} vs {attempted})"
        );
        assert_eq!(m.deadlocks(), 0);
        assert!(m.kind("ok").unwrap().commits > 0);
        assert_eq!(m.kind("fail").unwrap().commits, 0);
    }

    #[test]
    fn tps_scales_with_mpl_for_a_sleep_bound_workload() {
        let toy = Toy {
            attempts: AtomicU64::new(0),
        };
        let m1 = run(&toy, &RunConfig::quick(1));
        let toy2 = Toy {
            attempts: AtomicU64::new(0),
        };
        let m8 = run(&toy2, &RunConfig::quick(8));
        assert!(
            m8.tps() > m1.tps() * 3.0,
            "8 threads must far outrun 1 on a sleep-bound load: {} vs {}",
            m8.tps(),
            m1.tps()
        );
    }

    #[test]
    fn repeats_summarise_with_ci() {
        let (summary, runs) = repeat_summary(
            |_| Toy {
                attempts: AtomicU64::new(0),
            },
            RunConfig::quick(2),
            3,
        );
        assert_eq!(runs.len(), 3);
        assert_eq!(summary.n, 3);
        assert!(summary.mean > 0.0);
    }

    #[test]
    fn latency_is_recorded_for_commits() {
        let toy = Toy {
            attempts: AtomicU64::new(0),
        };
        let m = run(&toy, &RunConfig::quick(2));
        let lat = m.mean_latency();
        assert!(
            lat >= Duration::from_micros(400),
            "mean latency must reflect the sleep: {lat:?}"
        );
    }

    /// A single kind that serialization-fails on every attempt before the
    /// `succeed_on`-th and then commits — the deterministic retry fixture.
    struct FlakyN {
        succeed_on: u32,
    }

    impl Workload for FlakyN {
        type Request = ();

        fn kinds(&self) -> Vec<&'static str> {
            vec!["flaky"]
        }
        fn sample(&self, _rng: &mut Xoshiro256) -> (usize, ()) {
            (0, ())
        }
        fn execute(&self, _req: &(), attempt: u32) -> Outcome {
            if attempt >= self.succeed_on {
                Outcome::Committed
            } else {
                Outcome::SerializationFailure
            }
        }
    }

    #[test]
    fn retry_separates_attempts_from_goodput() {
        const N: u32 = 4;
        let w = FlakyN { succeed_on: N };
        let cfg = RunConfig {
            mpl: 2,
            ramp_up: Duration::from_millis(20),
            measure: Duration::from_millis(150),
            seed: 7,
            retry: RetryPolicy {
                max_attempts: 8,
                base_backoff: Duration::from_micros(50),
                max_backoff: Duration::from_micros(400),
                jitter: 0.5,
            },
            observer: None,
        };
        let m = run(&w, &cfg);
        let k = m.kind("flaky").unwrap();
        assert!(k.commits > 0, "the workload commits on attempt {N}");
        // Goodput counts one commit per operation; the metrics must still
        // show every failed attempt — exactly N-1 per commit.
        assert_eq!(
            k.serialization_failures,
            u64::from(N - 1) * k.commits,
            "each commit takes exactly {N} attempts"
        );
        assert_eq!(k.give_ups, 0);
        assert_eq!(k.attempts_per_commit.count(), k.commits);
        assert!((k.attempts_per_commit.mean() - f64::from(N)).abs() < 1e-9);
        assert!((k.retries_per_commit() - f64::from(N - 1)).abs() < 1e-9);
        assert_eq!(k.attempts_per_commit.bin(u64::from(N)), k.commits);
        assert_eq!(
            k.retry_latency.count(),
            k.commits,
            "every commit needed retries, so each records retry time"
        );
        assert!(k.retry_latency.mean() >= Duration::from_micros(75));
    }

    #[test]
    fn exhausted_budget_counts_a_give_up_not_a_commit() {
        let w = FlakyN { succeed_on: 100 };
        let cfg = RunConfig {
            mpl: 1,
            ramp_up: Duration::from_millis(10),
            measure: Duration::from_millis(80),
            seed: 7,
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::ZERO,
                max_backoff: Duration::ZERO,
                jitter: 0.0,
            },
            observer: None,
        };
        let m = run(&w, &cfg);
        let k = m.kind("flaky").unwrap();
        assert_eq!(k.commits, 0);
        assert!(k.give_ups > 0);
        assert_eq!(
            k.serialization_failures,
            3 * k.give_ups,
            "each abandoned operation burned its whole 3-attempt budget"
        );
        assert_eq!(m.give_ups(), k.give_ups);
    }

    /// The very first attempt (which starts during ramp-up) is slow and
    /// serialization-fails; every later attempt commits instantly. Before
    /// the straddle fix, the first *operation* finished inside the
    /// measurement window and charged its ramp-up failure and ~140ms of
    /// ramp-up latency to the measured interval.
    struct SlowStart {
        calls: AtomicU64,
    }

    impl Workload for SlowStart {
        type Request = ();

        fn kinds(&self) -> Vec<&'static str> {
            vec!["slow_start"]
        }
        fn sample(&self, _rng: &mut Xoshiro256) -> (usize, ()) {
            (0, ())
        }
        fn execute(&self, _req: &(), _attempt: u32) -> Outcome {
            if self.calls.fetch_add(1, Ordering::Relaxed) == 0 {
                // Outlives the 40ms ramp, lands mid-measurement.
                std::thread::sleep(Duration::from_millis(140));
                Outcome::SerializationFailure
            } else {
                Outcome::Committed
            }
        }
    }

    #[test]
    fn op_straddling_ramp_boundary_is_not_measured() {
        let w = SlowStart {
            calls: AtomicU64::new(0),
        };
        let cfg = RunConfig {
            mpl: 1,
            ramp_up: Duration::from_millis(40),
            measure: Duration::from_millis(200),
            seed: 1,
            retry: RetryPolicy {
                max_attempts: 4,
                base_backoff: Duration::ZERO,
                max_backoff: Duration::ZERO,
                jitter: 0.0,
            },
            observer: None,
        };
        let m = run(&w, &cfg);
        let k = m.kind("slow_start").unwrap();
        assert!(k.commits > 0, "later operations commit inside the window");
        assert_eq!(
            k.serialization_failures, 0,
            "the ramp-started operation's failed attempt must be discarded"
        );
        assert!(
            m.mean_latency() < Duration::from_millis(40),
            "ramp-up latency must not pollute measured latency: {:?}",
            m.mean_latency()
        );
    }

    #[test]
    fn backoff_schedule_is_reproducible_from_the_seed() {
        let go = || {
            let w = FlakyN { succeed_on: 3 };
            let cfg = RunConfig::new(1)
                .with_ramp_up(Duration::from_millis(10))
                .with_measure(Duration::from_millis(100))
                .with_seed(0xFEED)
                .with_retry(RetryPolicy {
                    max_attempts: 5,
                    base_backoff: Duration::from_micros(100),
                    max_backoff: Duration::from_millis(1),
                    jitter: 0.5,
                });
            let m = run(&w, &cfg);
            let k = m.kind("flaky").unwrap();
            (k.commits > 0, k.serialization_failures / k.commits.max(1))
        };
        let (a_committed, a_ratio) = go();
        let (b_committed, b_ratio) = go();
        assert!(a_committed && b_committed);
        assert_eq!(a_ratio, 2, "always exactly 2 failures per commit");
        assert_eq!(a_ratio, b_ratio);
    }

    /// A counting observer shared by the consolidation tests below.
    #[derive(Default)]
    struct Counting {
        begins: AtomicU64,
        ends: AtomicU64,
    }

    impl AttemptObserver for Counting {
        fn attempt_begin(&self, _kind: usize, _kind_name: &'static str, _attempt: u32) {
            self.begins.fetch_add(1, Ordering::Relaxed);
        }
        fn attempt_end(&self, _outcome: Outcome, _latency: Duration) {
            self.ends.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn config_observer_sees_every_attempt() {
        let toy = Toy {
            attempts: AtomicU64::new(0),
        };
        let obs = Arc::new(Counting::default());
        let cfg = RunConfig::quick(2).with_observer(obs.clone());
        let _ = run(&toy, &cfg);
        let begins = obs.begins.load(Ordering::Relaxed);
        assert!(begins > 0, "the configured observer must fire");
        assert_eq!(begins, obs.ends.load(Ordering::Relaxed));
        assert_eq!(begins, toy.attempts.load(Ordering::Relaxed));
    }
}
