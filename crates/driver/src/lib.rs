//! Workload driver (§IV methodology), closed- and open-system.
//!
//! The closed system reproduces the paper's measurement discipline: a
//! fixed number of client threads (the multiprogramming level, MPL),
//! each running one transaction at a time with no think time; a ramp-up
//! period excluded from measurement; a measurement interval during which
//! every thread counts commits, aborts by reason, and response times;
//! repeats with mean ± 95 % confidence intervals. [`run`] is the single
//! entry point; the attempt observer rides in [`RunConfig`].
//!
//! The open system ([`run_open`]) decouples arrivals from completions: a
//! seeded arrival process ([`ArrivalProcess`]) offers load at a
//! configured rate through an admission controller ([`AdmissionPolicy`])
//! into a bounded worker pool, measuring goodput, shed/timeout counts,
//! and queue-delay/service/end-to-end latency — the regime where
//! overload behaviour (latency divergence vs load shedding) is visible.
//!
//! The driver is engine-agnostic: anything implementing [`Workload`] can
//! be measured. `sicost-smallbank` provides the SmallBank adapter.

#![deny(missing_docs)]

pub mod admission;
pub mod arrival;
pub mod hooks;
pub mod metrics;
pub mod open_runner;
pub mod report;
pub mod retry;
pub mod runner;

pub use admission::{Admission, AdmissionPolicy, AdmissionQueue};
pub use arrival::ArrivalProcess;
pub use hooks::{AttemptObserver, NullAttemptObserver};
pub use metrics::{KindMetrics, OpenKindMetrics, OpenMetrics, Outcome, RunMetrics};
pub use open_runner::{run_open, OpenConfig};
pub use report::{
    ascii_chart, checkpoint_report, csv_table, latency_report, lock_wait_report, render_table,
    retry_report, vacuum_report, CheckpointReport, LatencyReport, LockWaitReport, OpenLoopReport,
    Report, RetryReport, Series, SeriesPoint, VacuumReport,
};
pub use retry::{RetryDecision, RetryPolicy};
pub use runner::{repeat_summary, run, RunConfig, Workload};
