//! Closed-system workload driver (§IV methodology).
//!
//! Reproduces the paper's measurement discipline: a fixed number of
//! client threads (the multiprogramming level, MPL), each running one
//! transaction at a time with no think time; a ramp-up period excluded
//! from measurement; a measurement interval during which every thread
//! counts commits, aborts by reason, and response times; repeats with
//! mean ± 95 % confidence intervals.
//!
//! The driver is engine-agnostic: anything implementing [`Workload`] can
//! be measured. `sicost-smallbank` provides the SmallBank adapter.

#![deny(missing_docs)]

pub mod hooks;
pub mod metrics;
pub mod report;
pub mod retry;
pub mod runner;

pub use hooks::{AttemptObserver, NullAttemptObserver};
pub use metrics::{KindMetrics, Outcome, RunMetrics};
pub use report::{
    ascii_chart, checkpoint_report, csv_table, latency_report, lock_wait_report, render_table,
    retry_report, Series, SeriesPoint,
};
pub use retry::{RetryDecision, RetryPolicy};
pub use runner::{repeat_summary, run_closed, run_closed_observed, RunConfig, Workload};
