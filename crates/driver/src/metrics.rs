//! Measurement counters.

use sicost_common::{CountHistogram, LatencyHistogram};
use std::time::Duration;

/// How one transaction attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Committed.
    Committed,
    /// Aborted with a serialization failure (the paper's Figure 6 metric).
    SerializationFailure,
    /// Aborted as a deadlock victim.
    Deadlock,
    /// Rolled back by an application rule.
    ApplicationRollback,
    /// Aborted by an injected transient fault (forced abort, WAL sync
    /// failure): retryable, like a serialization failure, but counted
    /// separately so fault-injection runs can tell the two apart.
    TransientFault,
    /// The commit's fate is unknown — the request reached the server but
    /// the acknowledgement was lost (e.g. the connection died after the
    /// commit frame went out). **Never retryable**: the commit may have
    /// applied, and re-running the transaction could double-apply its
    /// effects. Resolution needs an application-level read-back, not a
    /// blind retry.
    Indeterminate,
}

/// Counters for one transaction kind.
#[derive(Debug, Clone, Default)]
pub struct KindMetrics {
    /// Commits observed in the measurement interval.
    pub commits: u64,
    /// Serialization-failure aborts.
    pub serialization_failures: u64,
    /// Deadlock aborts.
    pub deadlocks: u64,
    /// Application rollbacks.
    pub app_rollbacks: u64,
    /// Transient-fault aborts (injected faults absorbed by retry).
    pub transient_faults: u64,
    /// Attempts whose commit fate is unknown (lost acknowledgement).
    pub indeterminates: u64,
    /// Operations abandoned after the retry budget ran out.
    pub give_ups: u64,
    /// Attempts each *committed* operation needed (1 = first try).
    pub attempts_per_commit: CountHistogram,
    /// Response times of *committed* operations, measured from the first
    /// attempt's start — so they include retry backoff.
    pub latency: LatencyHistogram,
    /// Per committed operation that needed more than one attempt: the
    /// time lost to failed attempts and backoff before the final one.
    pub retry_latency: LatencyHistogram,
}

impl KindMetrics {
    /// Total attempts.
    pub fn attempts(&self) -> u64 {
        self.commits
            + self.serialization_failures
            + self.deadlocks
            + self.app_rollbacks
            + self.transient_faults
            + self.indeterminates
    }

    /// Serialization-failure abort rate among attempts (Figure 6's
    /// y-axis), 0 when nothing ran.
    pub fn serialization_abort_rate(&self) -> f64 {
        let attempts = self.attempts();
        if attempts == 0 {
            0.0
        } else {
            self.serialization_failures as f64 / attempts as f64
        }
    }

    /// Records one attempt.
    pub fn record(&mut self, outcome: Outcome, latency: Duration) {
        match outcome {
            Outcome::Committed => {
                self.commits += 1;
                self.latency.record(latency);
            }
            Outcome::SerializationFailure => self.serialization_failures += 1,
            Outcome::Deadlock => self.deadlocks += 1,
            Outcome::ApplicationRollback => self.app_rollbacks += 1,
            Outcome::TransientFault => self.transient_faults += 1,
            Outcome::Indeterminate => self.indeterminates += 1,
        }
    }

    /// Records the retry profile of one *committed* operation: how many
    /// attempts it took and how much time the failed ones (plus backoff)
    /// cost. Call alongside [`Self::record`] of the final attempt.
    pub fn record_commit_op(&mut self, attempts: u64, retry_lost: Duration) {
        self.attempts_per_commit.record(attempts);
        if attempts > 1 {
            self.retry_latency.record(retry_lost);
        }
    }

    /// Records one operation abandoned after exhausting its retry budget.
    pub fn record_give_up(&mut self) {
        self.give_ups += 1;
    }

    /// Mean retries per committed operation (0 when every commit landed
    /// on the first try).
    pub fn retries_per_commit(&self) -> f64 {
        if self.attempts_per_commit.count() == 0 {
            0.0
        } else {
            (self.attempts_per_commit.mean() - 1.0).max(0.0)
        }
    }

    /// Merges another kind's counters (thread aggregation).
    pub fn merge(&mut self, other: &KindMetrics) {
        self.commits += other.commits;
        self.serialization_failures += other.serialization_failures;
        self.deadlocks += other.deadlocks;
        self.app_rollbacks += other.app_rollbacks;
        self.transient_faults += other.transient_faults;
        self.indeterminates += other.indeterminates;
        self.give_ups += other.give_ups;
        self.attempts_per_commit.merge(&other.attempts_per_commit);
        self.latency.merge(&other.latency);
        self.retry_latency.merge(&other.retry_latency);
    }
}

/// Result of one measured run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Kind names, index-aligned with `per_kind`.
    pub kind_names: Vec<&'static str>,
    /// Per-kind counters.
    pub per_kind: Vec<KindMetrics>,
    /// Length of the measurement interval.
    pub measured: Duration,
    /// MPL the run used.
    pub mpl: usize,
}

impl RunMetrics {
    /// New empty metrics for the given kinds.
    pub fn new(kind_names: Vec<&'static str>, mpl: usize) -> Self {
        let per_kind = kind_names.iter().map(|_| KindMetrics::default()).collect();
        Self {
            kind_names,
            per_kind,
            measured: Duration::ZERO,
            mpl,
        }
    }

    /// Total commits across kinds.
    pub fn commits(&self) -> u64 {
        self.per_kind.iter().map(|k| k.commits).sum()
    }

    /// Total serialization failures across kinds.
    pub fn serialization_failures(&self) -> u64 {
        self.per_kind.iter().map(|k| k.serialization_failures).sum()
    }

    /// Total deadlocks.
    pub fn deadlocks(&self) -> u64 {
        self.per_kind.iter().map(|k| k.deadlocks).sum()
    }

    /// Total application rollbacks.
    pub fn app_rollbacks(&self) -> u64 {
        self.per_kind.iter().map(|k| k.app_rollbacks).sum()
    }

    /// Total transient-fault aborts.
    pub fn transient_faults(&self) -> u64 {
        self.per_kind.iter().map(|k| k.transient_faults).sum()
    }

    /// Total attempts whose commit fate is unknown.
    pub fn indeterminates(&self) -> u64 {
        self.per_kind.iter().map(|k| k.indeterminates).sum()
    }

    /// Total operations abandoned after exhausting the retry budget.
    pub fn give_ups(&self) -> u64 {
        self.per_kind.iter().map(|k| k.give_ups).sum()
    }

    /// Total attempts across kinds (commits + every abort class).
    pub fn attempts(&self) -> u64 {
        self.per_kind.iter().map(|k| k.attempts()).sum()
    }

    /// Mean retries per committed operation across kinds.
    pub fn retries_per_commit(&self) -> f64 {
        let commits = self.commits();
        if commits == 0 {
            return 0.0;
        }
        let extra: f64 = self
            .per_kind
            .iter()
            .map(|k| k.retries_per_commit() * k.attempts_per_commit.count() as f64)
            .sum();
        extra / commits as f64
    }

    /// Committed transactions per second over the measurement interval.
    pub fn tps(&self) -> f64 {
        if self.measured.is_zero() {
            return 0.0;
        }
        self.commits() as f64 / self.measured.as_secs_f64()
    }

    /// Mean response time of committed transactions, across kinds.
    pub fn mean_latency(&self) -> Duration {
        let total: u64 = self.per_kind.iter().map(|k| k.latency.count()).sum();
        if total == 0 {
            return Duration::ZERO;
        }
        let sum_micros: u128 = self
            .per_kind
            .iter()
            .map(|k| k.latency.mean().as_micros() * u128::from(k.latency.count()))
            .sum();
        Duration::from_micros((sum_micros / u128::from(total)) as u64)
    }

    /// Metrics for a named kind.
    pub fn kind(&self, name: &str) -> Option<&KindMetrics> {
        self.kind_names
            .iter()
            .position(|n| *n == name)
            .map(|i| &self.per_kind[i])
    }
}

/// Per-kind counters of one open-system run. Unlike [`KindMetrics`],
/// these separate what *arrived* from what was *served*: arrivals the
/// admission controller rejected (shed, timed out) never reach a worker
/// and appear only in their counters, while every served operation
/// contributes to all three latency histograms whatever its final
/// outcome.
#[derive(Debug, Clone, Default)]
pub struct OpenKindMetrics {
    /// Arrivals of this kind the generator offered.
    pub offered: u64,
    /// Arrivals rejected immediately by drop-on-full shedding.
    pub shed: u64,
    /// Arrivals whose submitter gave up waiting for queue space.
    pub timed_out: u64,
    /// Served operations that committed.
    pub commits: u64,
    /// Serialization-failure attempt aborts.
    pub serialization_failures: u64,
    /// Deadlock attempt aborts.
    pub deadlocks: u64,
    /// Application-rollback attempts.
    pub app_rollbacks: u64,
    /// Transient-fault attempt aborts.
    pub transient_faults: u64,
    /// Attempts whose commit fate is unknown (lost acknowledgement).
    pub indeterminates: u64,
    /// Served operations abandoned after the retry budget ran out.
    pub give_ups: u64,
    /// Time between admission and a worker dequeuing the request (for
    /// block-with-timeout admissions this includes the submitter's wait
    /// for space).
    pub queue_delay: LatencyHistogram,
    /// Pure execution time across the operation's attempts (excludes
    /// queue delay and retry backoff sleeps).
    pub service: LatencyHistogram,
    /// End-to-end: arrival at the admission controller to final outcome.
    pub e2e: LatencyHistogram,
}

impl OpenKindMetrics {
    /// Records one attempt's outcome (latency histograms are recorded at
    /// operation granularity by [`Self::record_served`]).
    pub fn record_attempt(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Committed => self.commits += 1,
            Outcome::SerializationFailure => self.serialization_failures += 1,
            Outcome::Deadlock => self.deadlocks += 1,
            Outcome::ApplicationRollback => self.app_rollbacks += 1,
            Outcome::TransientFault => self.transient_faults += 1,
            Outcome::Indeterminate => self.indeterminates += 1,
        }
    }

    /// Records the latency profile of one served operation.
    pub fn record_served(&mut self, queue_delay: Duration, service: Duration, e2e: Duration) {
        self.queue_delay.record(queue_delay);
        self.service.record(service);
        self.e2e.record(e2e);
    }

    /// Operations served (admitted and run to a final outcome).
    pub fn served(&self) -> u64 {
        self.e2e.count()
    }

    /// Total attempts (commits + every abort class).
    pub fn attempts(&self) -> u64 {
        self.commits
            + self.serialization_failures
            + self.deadlocks
            + self.app_rollbacks
            + self.transient_faults
            + self.indeterminates
    }

    /// Merges another kind's counters (worker/generator aggregation).
    pub fn merge(&mut self, other: &OpenKindMetrics) {
        self.offered += other.offered;
        self.shed += other.shed;
        self.timed_out += other.timed_out;
        self.commits += other.commits;
        self.serialization_failures += other.serialization_failures;
        self.deadlocks += other.deadlocks;
        self.app_rollbacks += other.app_rollbacks;
        self.transient_faults += other.transient_faults;
        self.indeterminates += other.indeterminates;
        self.give_ups += other.give_ups;
        self.queue_delay.merge(&other.queue_delay);
        self.service.merge(&other.service);
        self.e2e.merge(&other.e2e);
    }
}

/// Result of one open-system run.
#[derive(Debug, Clone)]
pub struct OpenMetrics {
    /// Kind names, index-aligned with `per_kind`.
    pub kind_names: Vec<&'static str>,
    /// Per-kind counters.
    pub per_kind: Vec<OpenKindMetrics>,
    /// The arrival-generation window the offered rate applied over.
    pub horizon: Duration,
    /// Run start to last served completion — `horizon` plus drain time,
    /// which is how long the backlog took to clear.
    pub elapsed: Duration,
    /// Target offered load (arrivals per second).
    pub offered_tps: f64,
    /// Name of the admission policy the run used.
    pub policy: &'static str,
    /// Deepest the admission queue ever got.
    pub max_queue_depth: u64,
}

impl OpenMetrics {
    /// New empty metrics for the given kinds.
    pub fn new(kind_names: Vec<&'static str>) -> Self {
        let per_kind = kind_names
            .iter()
            .map(|_| OpenKindMetrics::default())
            .collect();
        Self {
            kind_names,
            per_kind,
            horizon: Duration::ZERO,
            elapsed: Duration::ZERO,
            offered_tps: 0.0,
            policy: "unbounded",
            max_queue_depth: 0,
        }
    }

    /// Total arrivals offered.
    pub fn offered(&self) -> u64 {
        self.per_kind.iter().map(|k| k.offered).sum()
    }

    /// Total arrivals shed.
    pub fn shed(&self) -> u64 {
        self.per_kind.iter().map(|k| k.shed).sum()
    }

    /// Total arrivals that timed out awaiting admission.
    pub fn timed_out(&self) -> u64 {
        self.per_kind.iter().map(|k| k.timed_out).sum()
    }

    /// Total operations served to a final outcome.
    pub fn served(&self) -> u64 {
        self.per_kind.iter().map(|k| k.served()).sum()
    }

    /// Total commits.
    pub fn commits(&self) -> u64 {
        self.per_kind.iter().map(|k| k.commits).sum()
    }

    /// Total give-ups.
    pub fn give_ups(&self) -> u64 {
        self.per_kind.iter().map(|k| k.give_ups).sum()
    }

    /// Committed transactions per second of wall-clock (the run's
    /// *goodput* — commits over `elapsed`, so an overloaded unbounded
    /// queue pays for its drain time here).
    pub fn goodput(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.commits() as f64 / self.elapsed.as_secs_f64()
    }

    /// All kinds' end-to-end latency merged into one histogram.
    pub fn e2e(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for k in &self.per_kind {
            h.merge(&k.e2e);
        }
        h
    }

    /// All kinds' queue delay merged into one histogram.
    pub fn queue_delay(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for k in &self.per_kind {
            h.merge(&k.queue_delay);
        }
        h
    }

    /// All kinds' service time merged into one histogram.
    pub fn service(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for k in &self.per_kind {
            h.merge(&k.service);
        }
        h
    }

    /// Metrics for a named kind.
    pub fn kind(&self, name: &str) -> Option<&OpenKindMetrics> {
        self.kind_names
            .iter()
            .position(|n| *n == name)
            .map(|i| &self.per_kind[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_rates() {
        let mut k = KindMetrics::default();
        k.record(Outcome::Committed, Duration::from_millis(2));
        k.record(Outcome::Committed, Duration::from_millis(4));
        k.record(Outcome::SerializationFailure, Duration::ZERO);
        k.record(Outcome::Deadlock, Duration::ZERO);
        k.record(Outcome::ApplicationRollback, Duration::ZERO);
        assert_eq!(k.attempts(), 5);
        assert_eq!(k.commits, 2);
        assert!((k.serialization_abort_rate() - 0.2).abs() < 1e-12);
        assert_eq!(k.latency.count(), 2, "only commits count for latency");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = KindMetrics::default();
        let mut b = KindMetrics::default();
        a.record(Outcome::Committed, Duration::from_millis(1));
        b.record(Outcome::SerializationFailure, Duration::ZERO);
        b.record(Outcome::Committed, Duration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.commits, 2);
        assert_eq!(a.serialization_failures, 1);
    }

    #[test]
    fn run_metrics_tps() {
        let mut m = RunMetrics::new(vec!["A", "B"], 4);
        m.per_kind[0].record(Outcome::Committed, Duration::from_millis(1));
        m.per_kind[1].record(Outcome::Committed, Duration::from_millis(1));
        m.measured = Duration::from_secs(2);
        assert_eq!(m.commits(), 2);
        assert!((m.tps() - 1.0).abs() < 1e-12);
        assert!(m.kind("A").is_some());
        assert!(m.kind("Z").is_none());
    }

    #[test]
    fn empty_run_is_zero() {
        let m = RunMetrics::new(vec!["A"], 1);
        assert_eq!(m.tps(), 0.0);
        assert_eq!(m.mean_latency(), Duration::ZERO);
    }

    #[test]
    fn open_metrics_separate_offered_from_served() {
        let mut m = OpenMetrics::new(vec!["A", "B"]);
        let a = &mut m.per_kind[0];
        a.offered = 10;
        a.shed = 3;
        a.record_attempt(Outcome::SerializationFailure);
        a.record_attempt(Outcome::Committed);
        a.record_served(
            Duration::from_millis(2),
            Duration::from_millis(1),
            Duration::from_millis(3),
        );
        m.per_kind[1].offered = 5;
        m.per_kind[1].timed_out = 5;
        m.elapsed = Duration::from_secs(1);
        m.horizon = Duration::from_secs(1);
        assert_eq!(m.offered(), 15);
        assert_eq!(m.shed(), 3);
        assert_eq!(m.timed_out(), 5);
        assert_eq!(m.served(), 1);
        assert_eq!(m.commits(), 1);
        assert!((m.goodput() - 1.0).abs() < 1e-12);
        assert_eq!(m.e2e().count(), 1);
        assert_eq!(m.queue_delay().count(), 1);
        assert_eq!(m.kind("A").unwrap().attempts(), 2);
        assert!(m.kind("Z").is_none());
    }

    #[test]
    fn open_kind_metrics_merge_accumulates() {
        let mut a = OpenKindMetrics::default();
        let mut b = OpenKindMetrics::default();
        a.offered = 2;
        a.record_attempt(Outcome::Committed);
        b.offered = 3;
        b.shed = 1;
        b.give_ups = 1;
        b.record_served(Duration::ZERO, Duration::ZERO, Duration::from_millis(1));
        a.merge(&b);
        assert_eq!(a.offered, 5);
        assert_eq!(a.shed, 1);
        assert_eq!(a.give_ups, 1);
        assert_eq!(a.served(), 1);
        assert_eq!(a.commits, 1);
    }

    #[test]
    fn empty_open_run_is_zero_safe() {
        let m = OpenMetrics::new(vec!["A"]);
        assert_eq!(m.goodput(), 0.0);
        assert_eq!(m.e2e().quantile(0.99), Duration::ZERO);
        assert_eq!(m.served(), 0);
    }
}
