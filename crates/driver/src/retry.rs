//! Client-side retry orchestration.
//!
//! Under snapshot isolation and SSI the *system* answer to a conflict is
//! an abort; the *application* answer is to retry the transaction. The
//! paper's throughput metric (and ours — see `EXPERIMENTS.md`) is
//! therefore goodput: committed transactions per second with each client
//! retrying its current request until it commits or the policy gives up.
//!
//! A [`RetryPolicy`] decides, per failed attempt, whether the error class
//! is worth retrying (serialization failures, deadlocks and transient
//! faults are; application rollbacks and constraint violations are not —
//! rerunning those would repeat the same deterministic outcome), and how
//! long to back off: exponential in the attempt number, capped, with
//! seeded jitter so two clients that collided do not collide again in
//! lock-step — yet the whole schedule replays from the run seed.

use crate::metrics::Outcome;
use sicost_common::Xoshiro256;
use std::time::Duration;

/// What the retry loop should do after an attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryDecision {
    /// The attempt ended the operation (committed, or a non-retryable
    /// failure the application accepts).
    Done,
    /// Back off for the given duration, then re-execute the same request.
    Retry(Duration),
    /// The attempt failed retryably but the budget is exhausted: count a
    /// give-up and move on to a fresh request.
    GiveUp,
}

/// Bounded exponential backoff with deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts per request, counting the first (so `1` disables
    /// retry entirely).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each further attempt.
    pub base_backoff: Duration,
    /// Cap on any single backoff.
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: each backoff is drawn uniformly from
    /// `[d * (1 - jitter), d]` using the client's seeded generator.
    pub jitter: f64,
}

impl RetryPolicy {
    /// No retry: every attempt is final. This reproduces the pre-retry
    /// driver behaviour exactly.
    pub fn disabled() -> Self {
        Self {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: 0.0,
        }
    }

    /// Defaults matched to the simulated platform's timescale: conflicts
    /// resolve within a group-commit window or two, so backoffs start well
    /// below one window and stay bounded at a few of them.
    pub fn paper_default() -> Self {
        Self {
            max_attempts: 10,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(10),
            jitter: 0.5,
        }
    }

    /// True when the retry loop is a no-op.
    pub fn is_disabled(&self) -> bool {
        self.max_attempts <= 1
    }

    /// Whether this outcome class is worth re-executing. Serialization
    /// failures, deadlocks and transient faults are scheduling accidents —
    /// the same request can succeed later. Application rollbacks encode a
    /// business rule (e.g. insufficient funds) that would recur. The match
    /// is exhaustive on purpose: a new outcome class must make an explicit
    /// retryability decision here.
    pub fn retryable(outcome: Outcome) -> bool {
        match outcome {
            Outcome::Committed => false,
            Outcome::SerializationFailure | Outcome::Deadlock | Outcome::TransientFault => true,
            Outcome::ApplicationRollback => false,
            // An indeterminate commit may already have applied on the
            // server; re-executing the transaction could double-apply its
            // effects. The safe client answer is to surface the doubt,
            // never to retry blindly.
            Outcome::Indeterminate => false,
        }
    }

    /// The backoff before attempt `attempt + 1`, given that `attempt`
    /// (1-based) just failed. Exponential, capped, jittered from `rng`.
    pub fn backoff(&self, attempt: u32, rng: &mut Xoshiro256) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = attempt.saturating_sub(1).min(20);
        let raw = self
            .base_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff);
        if self.jitter <= 0.0 {
            return raw;
        }
        let scale = 1.0 - self.jitter * rng.next_f64();
        raw.mul_f64(scale.clamp(0.0, 1.0))
    }

    /// Full per-attempt decision: `attempt` is 1-based.
    pub fn decide(&self, outcome: Outcome, attempt: u32, rng: &mut Xoshiro256) -> RetryDecision {
        if !Self::retryable(outcome) {
            return RetryDecision::Done;
        }
        if attempt >= self.max_attempts {
            RetryDecision::GiveUp
        } else {
            RetryDecision::Retry(self.backoff(attempt, rng))
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_and_rollback_are_final() {
        let p = RetryPolicy::paper_default();
        let mut rng = Xoshiro256::seed_from_u64(1);
        assert_eq!(
            p.decide(Outcome::Committed, 1, &mut rng),
            RetryDecision::Done
        );
        assert_eq!(
            p.decide(Outcome::ApplicationRollback, 1, &mut rng),
            RetryDecision::Done
        );
    }

    #[test]
    fn indeterminate_commits_are_never_retried() {
        // Regression: an indeterminate commit fate (ack lost after the
        // commit frame went out) must be final even under the most
        // generous policy — retrying can double-apply.
        let p = RetryPolicy {
            max_attempts: u32::MAX,
            ..RetryPolicy::paper_default()
        };
        let mut rng = Xoshiro256::seed_from_u64(7);
        assert!(!RetryPolicy::retryable(Outcome::Indeterminate));
        assert_eq!(
            p.decide(Outcome::Indeterminate, 1, &mut rng),
            RetryDecision::Done
        );
    }

    #[test]
    fn retryable_classes_retry_until_the_budget_runs_out() {
        let p = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::paper_default()
        };
        let mut rng = Xoshiro256::seed_from_u64(1);
        for outcome in [
            Outcome::SerializationFailure,
            Outcome::Deadlock,
            Outcome::TransientFault,
        ] {
            assert!(matches!(
                p.decide(outcome, 1, &mut rng),
                RetryDecision::Retry(_)
            ));
            assert!(matches!(
                p.decide(outcome, 2, &mut rng),
                RetryDecision::Retry(_)
            ));
            assert_eq!(p.decide(outcome, 3, &mut rng), RetryDecision::GiveUp);
        }
    }

    #[test]
    fn disabled_policy_never_retries() {
        let p = RetryPolicy::disabled();
        let mut rng = Xoshiro256::seed_from_u64(1);
        assert!(p.is_disabled());
        assert_eq!(
            p.decide(Outcome::SerializationFailure, 1, &mut rng),
            RetryDecision::GiveUp
        );
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            max_attempts: 20,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(8),
            jitter: 0.0,
        };
        let mut rng = Xoshiro256::seed_from_u64(1);
        assert_eq!(p.backoff(1, &mut rng), Duration::from_millis(1));
        assert_eq!(p.backoff(2, &mut rng), Duration::from_millis(2));
        assert_eq!(p.backoff(3, &mut rng), Duration::from_millis(4));
        assert_eq!(p.backoff(4, &mut rng), Duration::from_millis(8));
        assert_eq!(p.backoff(10, &mut rng), Duration::from_millis(8), "capped");
    }

    #[test]
    fn jitter_is_bounded_and_reproducible_from_the_seed() {
        let p = RetryPolicy {
            max_attempts: 20,
            base_backoff: Duration::from_millis(4),
            max_backoff: Duration::from_millis(100),
            jitter: 0.5,
        };
        let mut a = Xoshiro256::seed_from_u64(99);
        let seq_a: Vec<Duration> = (1..=8).map(|i| p.backoff(i, &mut a)).collect();
        let mut b = Xoshiro256::seed_from_u64(99);
        let seq_b: Vec<Duration> = (1..=8).map(|i| p.backoff(i, &mut b)).collect();
        assert_eq!(seq_a, seq_b, "same seed, same backoffs");
        // Each jittered backoff lies in [raw/2, raw].
        let no_jitter = RetryPolicy { jitter: 0.0, ..p };
        let mut c = Xoshiro256::seed_from_u64(99);
        for (i, d) in seq_a.iter().enumerate() {
            let raw = no_jitter.backoff(i as u32 + 1, &mut c);
            assert!(*d <= raw, "jitter only shrinks");
            assert!(d.as_secs_f64() >= raw.as_secs_f64() * 0.5 - 1e-9);
        }
    }
}
