//! Rendering experiment results: ASCII tables, CSV, and terminal charts
//! (the bench harnesses print these as their reproduction of the paper's
//! figures).
//!
//! Every diagnostic view implements the [`Report`] trait — a name plus a
//! `render` — so harnesses can collect heterogeneous reports in one
//! `Vec<Box<dyn Report>>` and print them uniformly. The historical free
//! functions (`retry_report`, `latency_report`, `lock_wait_report`,
//! `checkpoint_report`) remain as thin conveniences over the trait
//! implementations.

use crate::metrics::{OpenMetrics, RunMetrics};
use sicost_common::{LockWait, Summary};

/// A renderable diagnostic view of one run or engine.
pub trait Report {
    /// Short stable identifier (useful as a section heading or filename
    /// stem).
    fn name(&self) -> &'static str;

    /// Renders the view as human-readable text, trailing newline
    /// included. Must be total: empty inputs render as zeros, never NaN
    /// or a panic.
    fn render(&self) -> String;
}

/// [`Report`] over a run's retry/goodput profile (see [`retry_report`]).
#[derive(Debug, Clone, Copy)]
pub struct RetryReport<'a>(pub &'a RunMetrics);

/// [`Report`] over a run's per-kind response-time distribution (see
/// [`latency_report`]).
#[derive(Debug, Clone, Copy)]
pub struct LatencyReport<'a>(pub &'a RunMetrics);

/// [`Report`] over an engine's per-lock-class contention breakdown (see
/// [`lock_wait_report`]).
#[derive(Debug, Clone, Copy)]
pub struct LockWaitReport<'a>(pub &'a [LockWait]);

/// [`Report`] over an engine's durability/recovery counters (see
/// [`checkpoint_report`]).
#[derive(Debug, Clone, Copy)]
pub struct CheckpointReport<'a>(pub &'a sicost_engine::EngineMetrics);

/// [`Report`] over an engine's version-GC / memory-model counters (see
/// [`vacuum_report`]).
#[derive(Debug, Clone, Copy)]
pub struct VacuumReport<'a>(pub &'a sicost_engine::EngineMetrics);

/// [`Report`] over an open-system run: per kind, what arrived vs what
/// was refused vs what was served, with queue-delay and end-to-end
/// latency quantiles, closing with the goodput-vs-offered-load line.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopReport<'a>(pub &'a OpenMetrics);

impl Report for RetryReport<'_> {
    fn name(&self) -> &'static str {
        "retry"
    }
    fn render(&self) -> String {
        let m = self.0;
        let mut out = format!(
            "{:>12} | {:>9} {:>9} {:>7} {:>7} {:>9} {:>8} {:>8} {:>12}\n",
            "kind",
            "commits",
            "serfail",
            "dlock",
            "faults",
            "rollback",
            "giveups",
            "retries",
            "retry-time"
        );
        out.push_str(&"-".repeat(out.len()));
        out.push('\n');
        for (name, k) in m.kind_names.iter().zip(&m.per_kind) {
            out.push_str(&format!(
                "{:>12} | {:>9} {:>9} {:>7} {:>7} {:>9} {:>8} {:>8.2} {:>10.1?}\n",
                name,
                k.commits,
                k.serialization_failures,
                k.deadlocks,
                k.transient_faults,
                k.app_rollbacks,
                k.give_ups,
                k.retries_per_commit(),
                k.retry_latency.mean(),
            ));
        }
        out.push_str(&format!(
            "goodput {:.1} tps from {} attempts ({} commits, {:.2} retries/commit, {} give-ups)\n",
            m.tps(),
            m.attempts(),
            m.commits(),
            m.retries_per_commit(),
            m.give_ups(),
        ));
        out
    }
}

impl Report for LatencyReport<'_> {
    fn name(&self) -> &'static str {
        "latency"
    }
    fn render(&self) -> String {
        let m = self.0;
        let mut out = format!(
            "{:>12} | {:>9} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            "kind", "commits", "p50", "p90", "p99", "max", "mean"
        );
        out.push_str(&"-".repeat(out.len()));
        out.push('\n');
        for (name, k) in m.kind_names.iter().zip(&m.per_kind) {
            out.push_str(&format!(
                "{:>12} | {:>9} {:>8.1?} {:>8.1?} {:>8.1?} {:>8.1?} {:>8.1?}\n",
                name,
                k.commits,
                k.latency.quantile(0.50),
                k.latency.quantile(0.90),
                k.latency.quantile(0.99),
                k.latency.max(),
                k.latency.mean(),
            ));
        }
        out.push_str(&format!(
            "overall: {} commits, mean latency {:.1?}\n",
            m.commits(),
            m.mean_latency(),
        ));
        out
    }
}

impl Report for LockWaitReport<'_> {
    fn name(&self) -> &'static str {
        "lock-wait"
    }
    fn render(&self) -> String {
        let classes = self.0;
        let mut out = format!(
            "{:>16} | {:>12} {:>12} {:>12} {:>12} {:>7}\n",
            "lock class", "acquired", "contended", "total-wait", "mean-wait", "ratio"
        );
        out.push_str(&"-".repeat(out.len()));
        out.push('\n');
        for c in classes {
            out.push_str(&format!(
                "{:>16} | {:>12} {:>12} {:>10.1?} {:>10.1?} {:>6.1}%\n",
                c.class,
                c.acquisitions,
                c.contended,
                c.wait,
                c.mean_wait(),
                c.contention_ratio() * 100.0,
            ));
        }
        let total: std::time::Duration = classes.iter().map(|c| c.wait).sum();
        out.push_str(&format!("total blocked wall-clock: {total:.1?}\n"));
        out
    }
}

impl Report for CheckpointReport<'_> {
    fn name(&self) -> &'static str {
        "checkpoint"
    }
    fn render(&self) -> String {
        let m = self.0;
        let mut out = format!("{:>24} | {:>12}\n", "durability counter", "value");
        out.push_str(&"-".repeat(out.len()));
        out.push('\n');
        out.push_str(&format!(
            "{:>24} | {:>12}\n",
            "checkpoints taken", m.checkpoints_taken
        ));
        out.push_str(&format!(
            "{:>24} | {:>12}\n",
            "wal bytes truncated", m.checkpoint_bytes_truncated
        ));
        out.push_str(&format!(
            "{:>24} | {:>12}\n",
            "recovery replay bytes", m.recovery_replay_bytes
        ));
        out
    }
}

impl Report for VacuumReport<'_> {
    fn name(&self) -> &'static str {
        "vacuum"
    }
    fn render(&self) -> String {
        let m = self.0;
        let mut out = format!("{:>26} | {:>12}\n", "gc / memory counter", "value");
        out.push_str(&"-".repeat(out.len()));
        out.push('\n');
        let rows: [(&str, String); 9] = [
            ("vacuum runs", m.vacuum_runs.to_string()),
            ("versions reclaimed", m.versions_pruned.to_string()),
            ("ssi records reclaimed", m.ssi_txns_reclaimed.to_string()),
            ("gc pause total", format!("{:.1?}", m.vacuum_pause)),
            ("gc pause mean", format!("{:.1?}", m.mean_vacuum_pause())),
            ("max chain length", m.max_chain_len.to_string()),
            ("siread entries", m.siread_entries.to_string()),
            ("publish batches", m.publish_batches.to_string()),
            (
                "mean publish batch",
                format!("{:.2}", m.mean_publish_batch()),
            ),
        ];
        for (label, value) in rows {
            out.push_str(&format!("{label:>26} | {value:>12}\n"));
        }
        out
    }
}

impl Report for OpenLoopReport<'_> {
    fn name(&self) -> &'static str {
        "open-loop"
    }
    fn render(&self) -> String {
        let m = self.0;
        let mut out = format!(
            "{:>12} | {:>8} {:>7} {:>7} {:>8} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
            "kind",
            "offered",
            "shed",
            "timeout",
            "served",
            "commits",
            "qd-p50",
            "qd-p99",
            "e2e-p50",
            "e2e-p99"
        );
        out.push_str(&"-".repeat(out.len()));
        out.push('\n');
        for (name, k) in m.kind_names.iter().zip(&m.per_kind) {
            out.push_str(&format!(
                "{:>12} | {:>8} {:>7} {:>7} {:>8} {:>8} {:>8.1?} {:>8.1?} {:>8.1?} {:>8.1?}\n",
                name,
                k.offered,
                k.shed,
                k.timed_out,
                k.served(),
                k.commits,
                k.queue_delay.quantile(0.50),
                k.queue_delay.quantile(0.99),
                k.e2e.quantile(0.50),
                k.e2e.quantile(0.99),
            ));
        }
        let e2e = m.e2e();
        out.push_str(&format!(
            "offered {:.1} tps ({}), goodput {:.1} tps: {} offered, {} shed, {} timed out, \
             {} served, {} give-ups, max queue depth {}\n",
            m.offered_tps,
            m.policy,
            m.goodput(),
            m.offered(),
            m.shed(),
            m.timed_out(),
            m.served(),
            m.give_ups(),
            m.max_queue_depth,
        ));
        out.push_str(&format!(
            "e2e latency p50 {:.1?} p95 {:.1?} p99 {:.1?} over {:.1?} horizon + {:.1?} drain\n",
            e2e.quantile(0.50),
            e2e.quantile(0.95),
            e2e.quantile(0.99),
            m.horizon,
            m.elapsed.saturating_sub(m.horizon),
        ));
        out
    }
}

/// One point of a series: x (e.g. MPL) and a summarised y (e.g. TPS).
#[derive(Debug, Clone, Copy)]
pub struct SeriesPoint {
    /// X coordinate.
    pub x: f64,
    /// Summarised Y (mean ± CI).
    pub y: Summary,
}

/// A named series (one line of a figure).
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (e.g. "MaterializeWT").
    pub label: String,
    /// Points in ascending x.
    pub points: Vec<SeriesPoint>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: Summary) {
        self.points.push(SeriesPoint { x, y });
    }

    /// Peak mean y across points.
    pub fn peak(&self) -> f64 {
        self.points.iter().map(|p| p.y.mean).fold(0.0, f64::max)
    }

    /// Mean y at the given x, if present.
    pub fn at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.x - x).abs() < 1e-9)
            .map(|p| p.y.mean)
    }
}

/// Renders series as an aligned table: one row per x, one column per
/// series, cells `mean ±ci`.
pub fn render_table(x_label: &str, series: &[Series]) -> String {
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.x))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
    xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

    let mut out = String::new();
    out.push_str(&format!("{x_label:>8}"));
    for s in series {
        out.push_str(&format!(" | {:>20}", s.label));
    }
    out.push('\n');
    out.push_str(&"-".repeat(8 + series.len() * 23));
    out.push('\n');
    for &x in &xs {
        out.push_str(&format!("{x:>8.0}"));
        for s in series {
            match s.points.iter().find(|p| (p.x - x).abs() < 1e-9) {
                Some(p) => out.push_str(&format!(" | {:>12.1} ±{:>5.1}", p.y.mean, p.y.ci95)),
                None => out.push_str(&format!(" | {:>20}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders series as CSV: `x,label,mean,ci95,n` rows.
pub fn csv_table(x_label: &str, series: &[Series]) -> String {
    let mut out = format!("{x_label},series,mean,ci95,n\n");
    for s in series {
        for p in &s.points {
            out.push_str(&format!(
                "{},{},{:.3},{:.3},{}\n",
                p.x, s.label, p.y.mean, p.y.ci95, p.y.n
            ));
        }
    }
    out
}

/// Renders the attempts-vs-goodput profile of one run: per kind, the
/// commit count, every abort class, mean retries per commit, give-ups and
/// mean retry time — the view that separates what clients *submitted*
/// from what the system *got done*.
pub fn retry_report(m: &RunMetrics) -> String {
    RetryReport(m).render()
}

/// Renders the per-kind response-time distribution of one run: commit
/// count and p50/p90/p99/max/mean latency per transaction kind, from the
/// driver's per-kind histograms. Kinds that committed nothing in the
/// window render as zero durations (never NaN — the histogram quantile is
/// zero-safe on empty samples).
pub fn latency_report(m: &RunMetrics) -> String {
    LatencyReport(m).render()
}

/// Renders an engine's per-lock-class contention breakdown: one row per
/// named lock class with acquisition count, how many acquisitions
/// contended, total blocked wall-clock, mean wait per acquisition and the
/// contention ratio — the view that shows *which* serialization point the
/// commit pipeline's wall-clock went to.
pub fn lock_wait_report(classes: &[LockWait]) -> String {
    LockWaitReport(classes).render()
}

/// Renders an engine's durability/recovery counters: checkpoints taken,
/// WAL bytes reclaimed by truncation, and (for a database built through
/// crash recovery) how many log-suffix bytes replay had to read — the
/// view that shows whether checkpointing is keeping restart cost
/// proportional to the delta rather than the history.
pub fn checkpoint_report(m: &sicost_engine::EngineMetrics) -> String {
    CheckpointReport(m).render()
}

/// Renders an engine's version-GC and memory-model counters: vacuum runs,
/// versions and SSI bookkeeping records reclaimed, GC pause time, the
/// live max-chain-length / SIREAD gauges the watermark protocol is meant
/// to hold flat, and commit-timestamp publication batching — the view
/// that shows whether sustained load is reaching a memory steady state.
pub fn vacuum_report(m: &sicost_engine::EngineMetrics) -> String {
    VacuumReport(m).render()
}

/// A rough terminal line chart (height rows, one glyph per series),
/// enough to eyeball the figure shapes in CI logs.
pub fn ascii_chart(series: &[Series], height: usize) -> String {
    let glyphs = ['*', 'o', '+', 'x', '#', '@', '%', '&', '~'];
    let all_points: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| (p.x, p.y.mean)))
        .collect();
    if all_points.is_empty() || height < 2 {
        return String::from("(no data)\n");
    }
    let x_min = all_points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let x_max = all_points.iter().map(|p| p.0).fold(0.0, f64::max);
    let y_max = all_points.iter().map(|p| p.1).fold(0.0, f64::max).max(1e-9);
    let width = 64usize;
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let g = glyphs[si % glyphs.len()];
        for p in &s.points {
            let xf = if (x_max - x_min).abs() < 1e-9 {
                0.0
            } else {
                (p.x - x_min) / (x_max - x_min)
            };
            let col = ((width - 1) as f64 * xf).round() as usize;
            let row = ((height - 1) as f64 * (1.0 - p.y.mean / y_max)).round() as usize;
            grid[row.min(height - 1)][col] = g;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{y_max:>10.0} ┤\n"));
    for row in grid {
        out.push_str("           │");
        out.extend(row);
        out.push('\n');
    }
    out.push_str("           └");
    out.push_str(&"─".repeat(width));
    out.push('\n');
    out.push_str(&format!("            {x_min:<10.0}{:>54.0}\n", x_max));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "            {} {}\n",
            glyphs[si % glyphs.len()],
            s.label
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sicost_common::OnlineStats;

    fn summary(vals: &[f64]) -> Summary {
        let mut s = OnlineStats::new();
        for &v in vals {
            s.push(v);
        }
        s.summary()
    }

    fn demo_series() -> Vec<Series> {
        let mut a = Series::new("SI");
        a.push(1.0, summary(&[150.0, 160.0]));
        a.push(10.0, summary(&[800.0, 820.0]));
        a.push(30.0, summary(&[1150.0, 1140.0]));
        let mut b = Series::new("MaterializeALL");
        b.push(1.0, summary(&[120.0]));
        b.push(10.0, summary(&[600.0]));
        b.push(30.0, summary(&[850.0]));
        vec![a, b]
    }

    #[test]
    fn table_contains_all_points() {
        let t = render_table("MPL", &demo_series());
        assert!(t.contains("SI"));
        assert!(t.contains("MaterializeALL"));
        assert!(t.contains("1145.0"));
        assert!(t.lines().count() >= 5);
    }

    #[test]
    fn csv_is_machine_readable() {
        let c = csv_table("mpl", &demo_series());
        assert!(c.starts_with("mpl,series,mean,ci95,n\n"));
        assert_eq!(c.lines().count(), 1 + 6);
        assert!(c.contains("30,SI,1145.000"));
    }

    #[test]
    fn chart_renders_glyphs() {
        let chart = ascii_chart(&demo_series(), 10);
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("SI"));
    }

    #[test]
    fn chart_handles_empty() {
        assert_eq!(ascii_chart(&[], 10), "(no data)\n");
    }

    #[test]
    fn retry_report_shows_attempts_and_goodput() {
        use crate::metrics::Outcome;
        use std::time::Duration;
        let mut m = RunMetrics::new(vec!["bal", "amal"], 2);
        let k = &mut m.per_kind[0];
        k.record(Outcome::SerializationFailure, Duration::ZERO);
        k.record(Outcome::SerializationFailure, Duration::ZERO);
        k.record(Outcome::Committed, Duration::from_millis(3));
        k.record_commit_op(3, Duration::from_millis(2));
        m.per_kind[1].record_give_up();
        m.measured = Duration::from_secs(1);
        let r = retry_report(&m);
        assert!(r.contains("bal"), "{r}");
        assert!(r.contains("2.00"), "retries/commit column: {r}");
        assert!(r.contains("goodput 1.0 tps from 3 attempts"), "{r}");
        assert!(r.contains("1 give-ups"), "{r}");
    }

    #[test]
    fn lock_wait_report_shows_classes_and_total() {
        use std::time::Duration;
        let classes = vec![
            LockWait {
                class: "commit.seq".into(),
                acquisitions: 100,
                contended: 25,
                wait: Duration::from_millis(40),
            },
            LockWait {
                class: "commit.install".into(),
                acquisitions: 400,
                contended: 0,
                wait: Duration::ZERO,
            },
        ];
        let r = lock_wait_report(&classes);
        assert!(r.contains("commit.seq"), "{r}");
        assert!(r.contains("commit.install"), "{r}");
        assert!(r.contains("25.0%"), "contention ratio column: {r}");
        assert!(r.contains("total blocked wall-clock: 40.0ms"), "{r}");
    }

    #[test]
    fn checkpoint_report_shows_durability_counters() {
        let m = sicost_engine::EngineMetrics {
            checkpoints_taken: 3,
            checkpoint_bytes_truncated: 4096,
            recovery_replay_bytes: 128,
            ..Default::default()
        };
        let r = checkpoint_report(&m);
        assert!(r.contains("checkpoints taken"), "{r}");
        assert!(r.contains("4096"), "{r}");
        assert!(r.contains("recovery replay bytes"), "{r}");
        assert!(r.contains("128"), "{r}");
    }

    #[test]
    fn latency_report_shows_percentiles() {
        use crate::metrics::Outcome;
        use std::time::Duration;
        let mut m = RunMetrics::new(vec!["bal"], 1);
        for ms in [1u64, 2, 3, 10] {
            m.per_kind[0].record(Outcome::Committed, Duration::from_millis(ms));
        }
        m.measured = Duration::from_secs(1);
        let r = latency_report(&m);
        assert!(r.contains("bal"), "{r}");
        assert!(r.contains("p99"), "{r}");
        assert!(r.contains("overall: 4 commits"), "{r}");
    }

    /// Regression: a measurement window in which *every* attempt aborted
    /// (zero commits, zero latency samples, zero retry samples) must
    /// render every report without NaN, inf, or division-by-zero panics.
    #[test]
    fn reports_survive_a_window_with_only_aborted_attempts() {
        use crate::metrics::Outcome;
        use std::time::Duration;
        let mut m = RunMetrics::new(vec!["bal", "wc"], 4);
        // Aborted attempts only; no record_commit_op, no give-up even.
        for _ in 0..7 {
            m.per_kind[0].record(Outcome::SerializationFailure, Duration::ZERO);
        }
        m.per_kind[1].record(Outcome::Deadlock, Duration::ZERO);
        m.per_kind[1].record_give_up();
        m.measured = Duration::from_millis(250);
        assert_eq!(m.commits(), 0);
        assert_eq!(m.tps(), 0.0, "zero commits must yield 0 tps, not NaN");
        assert_eq!(m.retries_per_commit(), 0.0);
        assert_eq!(m.mean_latency(), Duration::ZERO);
        for text in [retry_report(&m), latency_report(&m)] {
            assert!(!text.contains("NaN"), "{text}");
            assert!(!text.contains("inf"), "{text}");
        }
        // And the degenerate zero-measured-duration window.
        m.measured = Duration::ZERO;
        let text = retry_report(&m);
        assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
        // An all-idle lock-class breakdown (zero acquisitions) likewise.
        let idle = vec![LockWait {
            class: "commit.seq".into(),
            acquisitions: 0,
            contended: 0,
            wait: std::time::Duration::ZERO,
        }];
        let text = lock_wait_report(&idle);
        assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
    }

    #[test]
    fn report_trait_unifies_the_views() {
        use crate::metrics::Outcome;
        use std::time::Duration;
        let mut m = RunMetrics::new(vec!["bal"], 1);
        m.per_kind[0].record(Outcome::Committed, Duration::from_millis(1));
        m.measured = Duration::from_secs(1);
        let classes = vec![LockWait {
            class: "commit.seq".into(),
            acquisitions: 1,
            contended: 0,
            wait: Duration::ZERO,
        }];
        let engine = sicost_engine::EngineMetrics::default();
        let open = OpenMetrics::new(vec!["bal"]);
        let reports: Vec<Box<dyn Report + '_>> = vec![
            Box::new(RetryReport(&m)),
            Box::new(LatencyReport(&m)),
            Box::new(LockWaitReport(&classes)),
            Box::new(CheckpointReport(&engine)),
            Box::new(VacuumReport(&engine)),
            Box::new(OpenLoopReport(&open)),
        ];
        let names: Vec<_> = reports.iter().map(|r| r.name()).collect();
        assert_eq!(
            names,
            [
                "retry",
                "latency",
                "lock-wait",
                "checkpoint",
                "vacuum",
                "open-loop"
            ]
        );
        for r in &reports {
            let text = r.render();
            assert!(text.ends_with('\n'), "{}: {text}", r.name());
            assert!(!text.contains("NaN"), "{}: {text}", r.name());
        }
    }

    #[test]
    fn free_functions_delegate_to_the_trait() {
        let m = RunMetrics::new(vec!["bal"], 1);
        assert_eq!(retry_report(&m), RetryReport(&m).render());
        assert_eq!(latency_report(&m), LatencyReport(&m).render());
        assert_eq!(lock_wait_report(&[]), LockWaitReport(&[]).render());
        let e = sicost_engine::EngineMetrics::default();
        assert_eq!(checkpoint_report(&e), CheckpointReport(&e).render());
        assert_eq!(vacuum_report(&e), VacuumReport(&e).render());
    }

    #[test]
    fn vacuum_report_shows_gc_counters_and_gauges() {
        use std::time::Duration;
        let m = sicost_engine::EngineMetrics {
            vacuum_runs: 4,
            versions_pruned: 1200,
            ssi_txns_reclaimed: 77,
            vacuum_pause: Duration::from_micros(800),
            max_chain_len: 3,
            siread_entries: 42,
            publish_batches: 10,
            publish_batched_commits: 25,
            ..Default::default()
        };
        let r = vacuum_report(&m);
        assert!(r.contains("vacuum runs"), "{r}");
        assert!(r.contains("1200"), "{r}");
        assert!(r.contains("ssi records reclaimed"), "{r}");
        assert!(r.contains("gc pause mean"), "{r}");
        assert!(r.contains("200.0µs"), "mean pause = 800µs / 4 runs: {r}");
        assert!(r.contains("max chain length"), "{r}");
        assert!(r.contains("2.50"), "mean publish batch = 25/10: {r}");
        // Zeroed metrics must render totally (no NaN from 0/0 means).
        let empty = vacuum_report(&sicost_engine::EngineMetrics::default());
        assert!(!empty.contains("NaN") && !empty.contains("inf"), "{empty}");
    }

    #[test]
    fn open_loop_report_shows_admission_and_latency_columns() {
        use std::time::Duration;
        let mut m = OpenMetrics::new(vec!["bal"]);
        let k = &mut m.per_kind[0];
        k.offered = 10;
        k.shed = 2;
        k.timed_out = 1;
        k.commits = 7;
        k.record_served(
            Duration::from_millis(2),
            Duration::from_millis(1),
            Duration::from_millis(3),
        );
        m.offered_tps = 100.0;
        m.policy = "drop-on-full";
        m.horizon = Duration::from_millis(100);
        m.elapsed = Duration::from_millis(120);
        m.max_queue_depth = 4;
        let r = OpenLoopReport(&m).render();
        assert!(r.contains("offered"), "{r}");
        assert!(r.contains("drop-on-full"), "{r}");
        assert!(r.contains("2 shed, 1 timed out"), "{r}");
        assert!(r.contains("max queue depth 4"), "{r}");
        assert!(r.contains("e2e latency p50"), "{r}");
    }

    #[test]
    fn series_helpers() {
        let s = &demo_series()[0];
        assert_eq!(s.at(10.0), Some(810.0));
        assert_eq!(s.at(99.0), None);
        assert!((s.peak() - 1145.0).abs() < 1e-9);
    }
}
