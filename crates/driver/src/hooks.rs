//! Driver-side observation hooks.
//!
//! The runner itself only aggregates counters; anything that wants to see
//! individual attempts — the `sicost-trace` span sink, a progress meter —
//! implements [`AttemptObserver`] and is attached via
//! [`crate::runner::RunConfig::with_observer`] (closed system) or
//! [`crate::open_runner::OpenConfig::with_observer`] (open system). The
//! hook fires on the client/worker thread immediately around each
//! attempt, so an engine-side `HistoryObserver` on the same thread can
//! correlate the engine events that follow with the (kind, attempt) the
//! driver announced.

use crate::metrics::Outcome;
use std::time::Duration;

/// Observes each attempt a client thread makes.
///
/// Calls arrive concurrently from every client thread; implementations
/// must be thread-safe and cheap. For one thread the sequence is always
/// `attempt_begin` → (the workload's engine work) → `attempt_end`,
/// repeated per retry of the same request with an incremented `attempt`.
pub trait AttemptObserver: Send + Sync {
    /// A client thread is about to run attempt `attempt` (1-based) of a
    /// request of kind `kind` (index into [`crate::Workload::kinds`],
    /// whose name is `kind_name`).
    fn attempt_begin(&self, kind: usize, kind_name: &'static str, attempt: u32);

    /// The attempt just finished with `outcome` after `latency` of
    /// wall-clock (a single attempt, not the whole retried operation).
    fn attempt_end(&self, outcome: Outcome, latency: Duration);

    /// The open-system runner dequeued a request of kind `kind` that
    /// spent `queue_delay` between admission and dispatch. Fires on the
    /// worker thread immediately before the operation's first
    /// `attempt_begin`, so a span sink can tag the span that follows
    /// with its queue delay. Defaults to a no-op — closed-system runs
    /// have no queue and never call it.
    fn attempt_queued(&self, kind: usize, kind_name: &'static str, queue_delay: Duration) {
        let _ = (kind, kind_name, queue_delay);
    }
}

/// An observer that discards everything (useful as a default).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullAttemptObserver;

impl AttemptObserver for NullAttemptObserver {
    fn attempt_begin(&self, _kind: usize, _kind_name: &'static str, _attempt: u32) {}
    fn attempt_end(&self, _outcome: Outcome, _latency: Duration) {}
}
