//! The open-system runner.
//!
//! Where the closed-system runner ([`crate::runner::run`]) couples
//! submission to completion — `mpl` clients, each issuing its next
//! request only when the previous one finishes — the open-system runner
//! decouples them: a generator thread replays a seeded arrival schedule
//! ([`crate::arrival::ArrivalProcess`]) at a configured *offered* rate,
//! pushes each arrival through an admission controller
//! ([`crate::admission::AdmissionQueue`]), and a fixed worker pool serves
//! whatever was admitted. Past saturation the two regimes behave
//! completely differently: a closed system's throughput plateaus and its
//! latency stays bounded by `mpl × service time`, while an open system
//! must either let the queue (and latency) grow without bound or start
//! refusing work. The admission policy decides which.

use crate::admission::{Admission, AdmissionPolicy, AdmissionQueue};
use crate::arrival::ArrivalProcess;
use crate::hooks::AttemptObserver;
use crate::metrics::{OpenKindMetrics, OpenMetrics};
use crate::retry::{RetryDecision, RetryPolicy};
use crate::runner::Workload;
use sicost_common::Xoshiro256;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Parameters of one open-system run.
#[derive(Clone)]
pub struct OpenConfig {
    /// Target offered load, in arrivals per second.
    pub offered_tps: f64,
    /// Shape of the arrival process.
    pub process: ArrivalProcess,
    /// Window over which arrivals are generated. The run itself lasts
    /// longer whenever a backlog remains to drain at the horizon.
    pub horizon: Duration,
    /// Worker threads serving admitted requests (the service capacity).
    pub workers: usize,
    /// What the admission controller does when the queue is full.
    pub admission: AdmissionPolicy,
    /// Base RNG seed: the generator and each worker use independent
    /// streams derived from it, and the arrival schedule is a pure
    /// function of it.
    pub seed: u64,
    /// Client retry policy applied to every served request.
    pub retry: RetryPolicy,
    /// Observer that sees every queue-delay and attempt on the worker
    /// thread that runs it (how `sicost-trace` tags spans).
    pub observer: Option<Arc<dyn AttemptObserver>>,
}

impl std::fmt::Debug for OpenConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpenConfig")
            .field("offered_tps", &self.offered_tps)
            .field("process", &self.process)
            .field("horizon", &self.horizon)
            .field("workers", &self.workers)
            .field("admission", &self.admission)
            .field("seed", &self.seed)
            .field("retry", &self.retry)
            .field("observer", &self.observer.as_ref().map(|_| "<observer>"))
            .finish()
    }
}

impl OpenConfig {
    /// A configuration offering `offered_tps` arrivals per second with
    /// test-friendly defaults: Poisson arrivals over a 300 ms horizon,
    /// 4 workers, an unbounded queue, retry disabled, no observer.
    pub fn new(offered_tps: f64) -> Self {
        Self {
            offered_tps,
            process: ArrivalProcess::Poisson,
            horizon: Duration::from_millis(300),
            workers: 4,
            admission: AdmissionPolicy::Unbounded,
            seed: 0xD1CE,
            retry: RetryPolicy::disabled(),
            observer: None,
        }
    }

    /// Sets the arrival-process shape (builder-style).
    pub fn with_process(mut self, process: ArrivalProcess) -> Self {
        self.process = process;
        self
    }

    /// Sets the arrival-generation horizon (builder-style).
    pub fn with_horizon(mut self, horizon: Duration) -> Self {
        self.horizon = horizon;
        self
    }

    /// Sets the worker-pool size (builder-style).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the admission policy (builder-style).
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Sets the base RNG seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the retry policy (builder-style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attaches an [`AttemptObserver`] (builder-style).
    pub fn with_observer(mut self, observer: Arc<dyn AttemptObserver>) -> Self {
        self.observer = Some(observer);
        self
    }
}

/// One admitted request in flight between the generator and a worker.
struct Job<R> {
    kind: usize,
    request: R,
    /// When the generator offered it — the zero point of both queue
    /// delay and end-to-end latency.
    arrival: Instant,
}

/// Runs the open system: a generator thread paces the seeded arrival
/// schedule and offers each sampled request to the admission queue;
/// `workers` threads serve admitted requests with the configured retry
/// policy. After the last scheduled arrival the queue is closed and the
/// workers drain what is left, so [`OpenMetrics::elapsed`] — the goodput
/// denominator — includes the time an unbounded backlog takes to clear.
///
/// Every shed and timeout is counted against the kind that was refused;
/// every served operation records queue delay, service time (execution
/// only), and end-to-end latency (arrival to final outcome, including
/// retry backoff).
pub fn run_open<W: Workload>(workload: &W, config: &OpenConfig) -> OpenMetrics {
    let kinds = workload.kinds();
    let hook = config.observer.as_deref();
    let schedule = config
        .process
        .schedule(config.offered_tps, config.horizon, config.seed);
    let queue: AdmissionQueue<Job<W::Request>> = AdmissionQueue::new(config.admission);
    let base_rng = Xoshiro256::seed_from_u64(config.seed);

    let mut merged = OpenMetrics::new(kinds.clone());
    merged.horizon = config.horizon;
    merged.offered_tps = config.offered_tps;
    merged.policy = config.admission.name();

    let start = Instant::now();
    std::thread::scope(|s| {
        let queue_ref = &queue;
        let workers: Vec<_> = (0..config.workers)
            .map(|i| {
                let mut rng = base_rng.stream(i as u64);
                let kind_names = kinds.clone();
                s.spawn(move || {
                    let mut local: Vec<OpenKindMetrics> = kind_names
                        .iter()
                        .map(|_| OpenKindMetrics::default())
                        .collect();
                    while let Some(job) = queue_ref.pop() {
                        let dequeued = Instant::now();
                        let queue_delay = dequeued.saturating_duration_since(job.arrival);
                        if let Some(h) = hook {
                            h.attempt_queued(job.kind, kind_names[job.kind], queue_delay);
                        }
                        let mut attempt = 1u32;
                        let mut service = Duration::ZERO;
                        let k = &mut local[job.kind];
                        let gave_up = loop {
                            if let Some(h) = hook {
                                h.attempt_begin(job.kind, kind_names[job.kind], attempt);
                            }
                            let t0 = Instant::now();
                            let outcome = workload.execute(&job.request, attempt);
                            let attempt_time = t0.elapsed();
                            service += attempt_time;
                            if let Some(h) = hook {
                                h.attempt_end(outcome, attempt_time);
                            }
                            k.record_attempt(outcome);
                            match config.retry.decide(outcome, attempt, &mut rng) {
                                RetryDecision::Done => break false,
                                RetryDecision::GiveUp => break true,
                                RetryDecision::Retry(backoff) => {
                                    if !backoff.is_zero() {
                                        std::thread::sleep(backoff);
                                    }
                                    attempt += 1;
                                }
                            }
                        };
                        if gave_up {
                            k.give_ups += 1;
                        }
                        let e2e = job.arrival.elapsed();
                        k.record_served(queue_delay, service, e2e);
                    }
                    local
                })
            })
            .collect();

        // The generator runs on this thread: it paces the precomputed
        // schedule against wall-clock and offers each sampled request.
        // Falling behind (an offer that blocks under backpressure, or a
        // slow sample) is not compensated — late arrivals stay late,
        // which is exactly how a real open client population behaves
        // when the system pushes back.
        let mut gen_rng = base_rng.stream(config.workers as u64);
        let mut offered: Vec<OpenKindMetrics> =
            kinds.iter().map(|_| OpenKindMetrics::default()).collect();
        for offset in &schedule {
            let target = start + *offset;
            let now = Instant::now();
            if now < target {
                std::thread::sleep(target - now);
            }
            let (kind, request) = workload.sample(&mut gen_rng);
            offered[kind].offered += 1;
            match queue.offer(Job {
                kind,
                request,
                arrival: Instant::now(),
            }) {
                Admission::Admitted => {}
                Admission::Shed => offered[kind].shed += 1,
                Admission::TimedOut => offered[kind].timed_out += 1,
            }
        }
        // Hold the queue open until the horizon actually elapses (the
        // last scheduled arrival usually lands short of it), so `elapsed`
        // is always horizon + drain and goodput denominators compare
        // across policies.
        let end = start + config.horizon;
        let now = Instant::now();
        if now < end {
            std::thread::sleep(end - now);
        }
        queue.close();

        for (agg, part) in merged.per_kind.iter_mut().zip(&offered) {
            agg.merge(part);
        }
        for h in workers {
            let local = h.join().expect("open-system worker thread");
            for (agg, part) in merged.per_kind.iter_mut().zip(&local) {
                agg.merge(part);
            }
        }
    });
    merged.elapsed = start.elapsed();
    merged.max_queue_depth = queue.max_depth();
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Outcome;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A sleep-bound workload with a fixed per-attempt service time.
    struct FixedService {
        service: Duration,
        executed: AtomicU64,
    }

    impl FixedService {
        fn new(service: Duration) -> Self {
            Self {
                service,
                executed: AtomicU64::new(0),
            }
        }
    }

    impl Workload for FixedService {
        type Request = ();

        fn kinds(&self) -> Vec<&'static str> {
            vec!["fixed"]
        }
        fn sample(&self, _rng: &mut Xoshiro256) -> (usize, ()) {
            (0, ())
        }
        fn execute(&self, _req: &(), _attempt: u32) -> Outcome {
            self.executed.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.service);
            Outcome::Committed
        }
    }

    #[test]
    fn every_arrival_is_accounted_for() {
        let w = FixedService::new(Duration::from_micros(200));
        let cfg = OpenConfig::new(400.0)
            .with_horizon(Duration::from_millis(200))
            .with_workers(2)
            .with_seed(11);
        let m = run_open(&w, &cfg);
        assert!(m.offered() > 0, "arrivals must have been generated");
        assert_eq!(
            m.served() + m.shed() + m.timed_out(),
            m.offered(),
            "served + refused must equal offered"
        );
        assert_eq!(m.served(), m.commits(), "this workload always commits");
        assert_eq!(m.served(), w.executed.load(Ordering::Relaxed));
        assert_eq!(m.policy, "unbounded");
        assert!(m.elapsed >= m.horizon, "elapsed includes the drain");
        assert!(m.goodput() > 0.0);
    }

    #[test]
    fn under_capacity_nothing_is_refused_and_queue_delay_is_recorded() {
        // 2 workers × 200µs service ≈ 10k tps capacity; offer 500 tps.
        let w = FixedService::new(Duration::from_micros(200));
        let cfg = OpenConfig::new(500.0)
            .with_horizon(Duration::from_millis(200))
            .with_workers(2)
            .with_admission(AdmissionPolicy::DropOnFull { capacity: 64 })
            .with_seed(3);
        let m = run_open(&w, &cfg);
        assert_eq!(m.shed(), 0, "an underloaded system sheds nothing");
        assert_eq!(m.timed_out(), 0);
        let k = m.kind("fixed").unwrap();
        assert_eq!(
            k.queue_delay.count(),
            m.served(),
            "every served op records its queue delay"
        );
        assert_eq!(k.service.count(), m.served());
        assert!(
            k.service.mean() >= Duration::from_micros(150),
            "service time reflects execution: {:?}",
            k.service.mean()
        );
        assert_eq!(m.policy, "drop-on-full");
    }

    #[test]
    fn offered_count_is_reproducible_from_the_seed() {
        let go = |seed| {
            let w = FixedService::new(Duration::from_micros(100));
            let cfg = OpenConfig::new(600.0)
                .with_horizon(Duration::from_millis(150))
                .with_workers(2)
                .with_seed(seed);
            run_open(&w, &cfg).offered()
        };
        assert_eq!(go(0xAB), go(0xAB), "same seed, same arrival count");
    }

    #[test]
    fn overload_with_drop_on_full_sheds() {
        // 1 worker × 2ms service ≈ 500 tps capacity; offer 2000 tps into
        // a capacity-4 queue: most arrivals must be shed.
        let w = FixedService::new(Duration::from_millis(2));
        let cfg = OpenConfig::new(2000.0)
            .with_horizon(Duration::from_millis(200))
            .with_workers(1)
            .with_admission(AdmissionPolicy::DropOnFull { capacity: 4 })
            .with_seed(9);
        let m = run_open(&w, &cfg);
        assert!(m.shed() > 0, "4× overload must shed");
        assert!(m.max_queue_depth <= 4, "the bound must hold");
        assert_eq!(m.served() + m.shed(), m.offered());
    }
}
