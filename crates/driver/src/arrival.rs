//! Seeded arrival-schedule generation for the open-system runner.
//!
//! A closed system couples request submission to request completion: a
//! client only issues its next transaction once the previous one
//! finishes, so offered load self-limits at saturation. An open system
//! severs that coupling — arrivals follow an external process at a
//! configured *offered* rate regardless of how the system is doing,
//! which is the regime production traffic lives in.
//!
//! Schedules are generated ahead of time from a seed — deterministic
//! Poisson (exponential inter-arrivals) or constant-rate (evenly spaced)
//! processes with **no wall-clock randomness** — so a run replays
//! exactly: the same seed yields the same arrival instants, and only the
//! system's service behaviour differs between runs.

use sicost_common::Xoshiro256;
use std::time::Duration;

/// The shape of the arrival process (the rate is configured separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Evenly spaced arrivals: the `i`-th arrival lands at `(i+1)/rate`.
    /// No burstiness — the cleanest way to dial in an exact offered load.
    Constant,
    /// Memoryless arrivals: inter-arrival gaps drawn i.i.d. from
    /// `Exp(rate)` via inverse-transform sampling. The realistic choice —
    /// bursts stress the admission queue the way independent clients do.
    Poisson,
}

impl ArrivalProcess {
    /// Name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ArrivalProcess::Constant => "constant",
            ArrivalProcess::Poisson => "poisson",
        }
    }

    /// Generates the arrival schedule: instants (offsets from run start,
    /// strictly increasing) of every arrival in `[0, horizon]` at
    /// `rate_tps` arrivals per second. Deterministic in `seed`; an empty
    /// schedule results from a non-positive rate or a zero horizon.
    pub fn schedule(self, rate_tps: f64, horizon: Duration, seed: u64) -> Vec<Duration> {
        if rate_tps <= 0.0 || horizon.is_zero() {
            return Vec::new();
        }
        let horizon_s = horizon.as_secs_f64();
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut out = Vec::with_capacity((rate_tps * horizon_s).ceil() as usize + 1);
        match self {
            ArrivalProcess::Constant => {
                // Computed per index, not accumulated, so float error
                // cannot drop the last arrival off the horizon edge.
                for i in 0u64.. {
                    let t = (i + 1) as f64 / rate_tps;
                    if t > horizon_s {
                        break;
                    }
                    out.push(Duration::from_secs_f64(t));
                }
            }
            ArrivalProcess::Poisson => {
                let mut t = 0.0f64;
                loop {
                    // Inverse transform: -ln(1-U)/λ, U in [0,1). `1-U` is
                    // in (0,1], so the log is finite.
                    t += -(1.0 - rng.next_f64()).ln() / rate_tps;
                    if t > horizon_s {
                        break;
                    }
                    out.push(Duration::from_secs_f64(t));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule_is_evenly_spaced_and_exact() {
        let s = ArrivalProcess::Constant.schedule(100.0, Duration::from_secs(1), 1);
        assert_eq!(s.len(), 100, "rate × horizon arrivals");
        // Evenly spaced at 10ms.
        for (i, t) in s.iter().enumerate() {
            let expect = (i as f64 + 1.0) / 100.0;
            assert!(
                (t.as_secs_f64() - expect).abs() < 1e-9,
                "arrival {i}: {t:?}"
            );
        }
    }

    #[test]
    fn poisson_schedule_is_reproducible_from_the_seed() {
        let a = ArrivalProcess::Poisson.schedule(500.0, Duration::from_secs(2), 0xFEED);
        let b = ArrivalProcess::Poisson.schedule(500.0, Duration::from_secs(2), 0xFEED);
        let c = ArrivalProcess::Poisson.schedule(500.0, Duration::from_secs(2), 0xBEEF);
        assert_eq!(a, b, "same seed must replay the same schedule");
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn poisson_schedule_matches_its_target_rate_within_tolerance() {
        // 2000 expected arrivals: the count is Poisson(2000), so ±5 σ is
        // ±~224 — a 12% band passes with enormous margin while still
        // catching an off-by-λ bug.
        let rate = 1000.0;
        let horizon = Duration::from_secs(2);
        let s = ArrivalProcess::Poisson.schedule(rate, horizon, 42);
        let expected = rate * horizon.as_secs_f64();
        let got = s.len() as f64;
        assert!(
            (got - expected).abs() / expected < 0.12,
            "got {got} arrivals, expected ~{expected}"
        );
        // And the mean inter-arrival gap is ~1/rate.
        let mean_gap = s.last().unwrap().as_secs_f64() / s.len() as f64;
        assert!(
            (mean_gap - 1.0 / rate).abs() / (1.0 / rate) < 0.12,
            "mean gap {mean_gap}"
        );
    }

    #[test]
    fn schedules_are_strictly_increasing_and_within_horizon() {
        for process in [ArrivalProcess::Constant, ArrivalProcess::Poisson] {
            let horizon = Duration::from_millis(500);
            let s = process.schedule(800.0, horizon, 7);
            assert!(!s.is_empty());
            for w in s.windows(2) {
                assert!(w[0] < w[1], "{process:?} schedule must increase");
            }
            assert!(*s.last().unwrap() <= horizon);
        }
    }

    #[test]
    fn degenerate_inputs_yield_empty_schedules() {
        assert!(ArrivalProcess::Poisson
            .schedule(0.0, Duration::from_secs(1), 1)
            .is_empty());
        assert!(ArrivalProcess::Constant
            .schedule(-5.0, Duration::from_secs(1), 1)
            .is_empty());
        assert!(ArrivalProcess::Poisson
            .schedule(100.0, Duration::ZERO, 1)
            .is_empty());
    }
}
