//! Seeded arrival-schedule generation for the open-system runner.
//!
//! A closed system couples request submission to request completion: a
//! client only issues its next transaction once the previous one
//! finishes, so offered load self-limits at saturation. An open system
//! severs that coupling — arrivals follow an external process at a
//! configured *offered* rate regardless of how the system is doing,
//! which is the regime production traffic lives in.
//!
//! Schedules are generated ahead of time from a seed — deterministic
//! Poisson (exponential inter-arrivals) or constant-rate (evenly spaced)
//! processes with **no wall-clock randomness** — so a run replays
//! exactly: the same seed yields the same arrival instants, and only the
//! system's service behaviour differs between runs.

use sicost_common::Xoshiro256;
use std::time::Duration;

/// The shape of the arrival process (the rate is configured separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Evenly spaced arrivals: the `i`-th arrival lands at `(i+1)/rate`.
    /// No burstiness — the cleanest way to dial in an exact offered load.
    Constant,
    /// Memoryless arrivals: inter-arrival gaps drawn i.i.d. from
    /// `Exp(rate)` via inverse-transform sampling. The realistic choice —
    /// bursts stress the admission queue the way independent clients do.
    Poisson,
}

impl ArrivalProcess {
    /// Name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ArrivalProcess::Constant => "constant",
            ArrivalProcess::Poisson => "poisson",
        }
    }

    /// Generates the arrival schedule: instants (offsets from run start,
    /// strictly increasing) of every arrival in `[0, horizon]` at
    /// `rate_tps` arrivals per second. Deterministic in `seed`; an empty
    /// schedule results from a degenerate config — a non-positive or
    /// non-finite rate (NaN/∞ would otherwise spin forever emitting
    /// zero-width gaps) or a zero horizon.
    ///
    /// # Panics
    ///
    /// Panics when `rate_tps × horizon` exceeds ~67M arrivals: a schedule
    /// that size is a configuration error, and generating it would look
    /// exactly like a hang (or abort on allocation).
    pub fn schedule(self, rate_tps: f64, horizon: Duration, seed: u64) -> Vec<Duration> {
        if !rate_tps.is_finite() || rate_tps <= 0.0 || horizon.is_zero() {
            return Vec::new();
        }
        let horizon_s = horizon.as_secs_f64();
        let expected = rate_tps * horizon_s;
        const MAX_ARRIVALS: f64 = (1u64 << 26) as f64;
        assert!(
            expected <= MAX_ARRIVALS,
            "arrival schedule would contain ~{expected:.0} arrivals \
             (> {MAX_ARRIVALS:.0}); lower rate_tps or shorten the horizon"
        );
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut out = Vec::with_capacity(expected.ceil() as usize + 1);
        match self {
            ArrivalProcess::Constant => {
                // Computed per index, not accumulated, so float error
                // cannot drop the last arrival off the horizon edge.
                for i in 0u64.. {
                    let t = (i + 1) as f64 / rate_tps;
                    if t > horizon_s {
                        break;
                    }
                    out.push(Duration::from_secs_f64(t));
                }
            }
            ArrivalProcess::Poisson => {
                let mut t = 0.0f64;
                loop {
                    // Inverse transform: -ln(1-U)/λ, U in [0,1). `1-U` is
                    // in (0,1], so the log is finite.
                    t += -(1.0 - rng.next_f64()).ln() / rate_tps;
                    if t > horizon_s {
                        break;
                    }
                    out.push(Duration::from_secs_f64(t));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule_is_evenly_spaced_and_exact() {
        let s = ArrivalProcess::Constant.schedule(100.0, Duration::from_secs(1), 1);
        assert_eq!(s.len(), 100, "rate × horizon arrivals");
        // Evenly spaced at 10ms.
        for (i, t) in s.iter().enumerate() {
            let expect = (i as f64 + 1.0) / 100.0;
            assert!(
                (t.as_secs_f64() - expect).abs() < 1e-9,
                "arrival {i}: {t:?}"
            );
        }
    }

    #[test]
    fn poisson_schedule_is_reproducible_from_the_seed() {
        let a = ArrivalProcess::Poisson.schedule(500.0, Duration::from_secs(2), 0xFEED);
        let b = ArrivalProcess::Poisson.schedule(500.0, Duration::from_secs(2), 0xFEED);
        let c = ArrivalProcess::Poisson.schedule(500.0, Duration::from_secs(2), 0xBEEF);
        assert_eq!(a, b, "same seed must replay the same schedule");
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn poisson_schedule_matches_its_target_rate_within_tolerance() {
        // 2000 expected arrivals: the count is Poisson(2000), so ±5 σ is
        // ±~224 — a 12% band passes with enormous margin while still
        // catching an off-by-λ bug.
        let rate = 1000.0;
        let horizon = Duration::from_secs(2);
        let s = ArrivalProcess::Poisson.schedule(rate, horizon, 42);
        let expected = rate * horizon.as_secs_f64();
        let got = s.len() as f64;
        assert!(
            (got - expected).abs() / expected < 0.12,
            "got {got} arrivals, expected ~{expected}"
        );
        // And the mean inter-arrival gap is ~1/rate.
        let mean_gap = s.last().unwrap().as_secs_f64() / s.len() as f64;
        assert!(
            (mean_gap - 1.0 / rate).abs() / (1.0 / rate) < 0.12,
            "mean gap {mean_gap}"
        );
    }

    #[test]
    fn schedules_are_strictly_increasing_and_within_horizon() {
        for process in [ArrivalProcess::Constant, ArrivalProcess::Poisson] {
            let horizon = Duration::from_millis(500);
            let s = process.schedule(800.0, horizon, 7);
            assert!(!s.is_empty());
            for w in s.windows(2) {
                assert!(w[0] < w[1], "{process:?} schedule must increase");
            }
            assert!(*s.last().unwrap() <= horizon);
        }
    }

    #[test]
    fn zero_rate_yields_an_empty_schedule() {
        for process in [ArrivalProcess::Constant, ArrivalProcess::Poisson] {
            assert!(process.schedule(0.0, Duration::from_secs(1), 1).is_empty());
            assert!(process.schedule(-5.0, Duration::from_secs(1), 1).is_empty());
        }
    }

    #[test]
    fn zero_horizon_yields_an_empty_schedule() {
        for process in [ArrivalProcess::Constant, ArrivalProcess::Poisson] {
            assert!(process.schedule(100.0, Duration::ZERO, 1).is_empty());
        }
    }

    #[test]
    fn non_finite_rates_yield_empty_schedules_instead_of_spinning() {
        // NaN compares false with everything, so the old `<= 0.0` guard
        // let it through — Constant then pushed `Duration::from_secs_f64
        // (NaN)` (a panic) and Poisson span on zero-width gaps. Same for
        // +∞ (every arrival lands at t = 0).
        for process in [ArrivalProcess::Constant, ArrivalProcess::Poisson] {
            assert!(process
                .schedule(f64::NAN, Duration::from_secs(1), 1)
                .is_empty());
            assert!(process
                .schedule(f64::INFINITY, Duration::from_secs(1), 1)
                .is_empty());
        }
    }

    #[test]
    fn extreme_but_bounded_rates_still_generate() {
        // 1e12 tps over 1 µs ≈ a million arrivals — fine, just big.
        let s = ArrivalProcess::Constant.schedule(1e12, Duration::from_micros(1), 1);
        assert!((999_000..=1_000_001).contains(&s.len()), "{}", s.len());
    }

    #[test]
    #[should_panic(expected = "arrival schedule would contain")]
    fn absurd_rate_horizon_products_panic_instead_of_hanging() {
        // 1e30 tps × 1 s used to feed ~1e30 into Vec::with_capacity
        // (allocation abort) and then spin generating ~1e30 arrivals.
        let _ = ArrivalProcess::Constant.schedule(1e30, Duration::from_secs(1), 1);
    }
}
