//! Open-system integration tests: the latency/goodput trade-off the
//! admission policies exist to manage, demonstrated on a deterministic
//! sleep-bound workload (2 ms service, 2 workers ≈ 1000 tps capacity).

use sicost_common::Xoshiro256;
use sicost_driver::{run_open, AdmissionPolicy, ArrivalProcess, OpenConfig, Outcome, Workload};
use std::time::Duration;

/// Fixed 2 ms service time, always commits: capacity is exactly
/// `workers / 2ms` and every queueing effect is the admission policy's.
struct SleepBound;

impl Workload for SleepBound {
    type Request = ();

    fn kinds(&self) -> Vec<&'static str> {
        vec!["op"]
    }
    fn sample(&self, _rng: &mut Xoshiro256) -> (usize, ()) {
        (0, ())
    }
    fn execute(&self, _req: &(), _attempt: u32) -> Outcome {
        std::thread::sleep(Duration::from_millis(2));
        Outcome::Committed
    }
}

/// 2× saturation: 2000 tps offered into ~1000 tps of capacity.
fn overload(admission: AdmissionPolicy) -> OpenConfig {
    OpenConfig::new(2000.0)
        .with_process(ArrivalProcess::Poisson)
        .with_horizon(Duration::from_millis(600))
        .with_workers(2)
        .with_admission(admission)
        .with_seed(0x0417)
}

/// The PR's headline property: at 2× saturation, drop-on-full keeps p99
/// end-to-end latency bounded while the unbounded queue's diverges with
/// the backlog.
#[test]
fn drop_on_full_bounds_p99_where_unbounded_diverges() {
    let unbounded = run_open(&SleepBound, &overload(AdmissionPolicy::Unbounded));
    let dropping = run_open(
        &SleepBound,
        &overload(AdmissionPolicy::DropOnFull { capacity: 8 }),
    );

    let unbounded_p99 = unbounded.e2e().quantile(0.99);
    let dropping_p99 = dropping.e2e().quantile(0.99);
    assert!(
        dropping_p99 < unbounded_p99,
        "shedding must bound tail latency: drop p99 {dropping_p99:?} vs unbounded {unbounded_p99:?}"
    );
    // And not marginally: the unbounded backlog grows for the whole
    // horizon (tail ≈ hundreds of ms), so even with generous allowance
    // for single-core scheduler stalls the gap stays a multiple.
    assert!(
        unbounded_p99 > dropping_p99 * 3,
        "separation must be structural, not noise: {unbounded_p99:?} vs {dropping_p99:?}"
    );
    // The bounded queue's delay is capped at ~capacity × service/workers
    // = 8 ms nominal; the margin absorbs scheduler stalls, which delay a
    // full queue's worth of jobs at once on a loaded single-core host.
    assert!(
        dropping.queue_delay().quantile(0.99) < Duration::from_millis(150),
        "queue delay must be bounded by the queue: {:?}",
        dropping.queue_delay().quantile(0.99)
    );

    // Goodput: both serve at roughly capacity; the unbounded queue must
    // not *gain* goodput from its divergent latency (it pays drain time),
    // and the dropping queue sheds roughly the overload excess.
    assert_eq!(unbounded.shed(), 0, "unbounded never refuses");
    assert!(dropping.shed() > 0, "2× overload must shed");
    assert!(
        unbounded.elapsed > unbounded.horizon + Duration::from_millis(100),
        "the unbounded backlog takes real time to drain: {:?}",
        unbounded.elapsed
    );
    assert!(
        dropping.elapsed < unbounded.elapsed,
        "shedding leaves no backlog to drain"
    );
}

/// Block-with-timeout is a third, distinct outcome: submitters wait,
/// some admissions time out, and nothing is ever dropped silently.
#[test]
fn block_with_timeout_times_out_rather_than_sheds() {
    // One worker frees a queue slot only every ~2 ms, so a 500 µs
    // submitter timeout loses the race far more often than it wins —
    // timeouts are structural here, not scheduler luck.
    let m = run_open(
        &SleepBound,
        &overload(AdmissionPolicy::BlockWithTimeout {
            capacity: 2,
            timeout: Duration::from_micros(500),
        })
        .with_workers(1),
    );
    assert!(m.timed_out() > 0, "2× overload must time submitters out");
    assert_eq!(
        m.shed(),
        0,
        "backpressure refuses by timeout, never by shed"
    );
    assert_eq!(m.served() + m.timed_out(), m.offered());
    assert_eq!(m.policy, "block-with-timeout");
}

/// The per-kind queue-delay histogram is populated for every served
/// operation and reflects real waiting under overload.
#[test]
fn queue_delay_histogram_is_populated() {
    let m = run_open(
        &SleepBound,
        &overload(AdmissionPolicy::DropOnFull { capacity: 8 }),
    );
    let k = m.kind("op").expect("kind exists");
    assert_eq!(k.queue_delay.count(), k.served());
    assert!(k.served() > 0);
    assert!(
        k.queue_delay.max() > Duration::ZERO,
        "a full queue means someone waited"
    );
    assert_eq!(k.e2e.count(), k.served());
    assert_eq!(k.service.count(), k.served());
    // e2e ≥ queue delay + service for any single op; check the means
    // as a sanity bound on the three histograms' relationship.
    assert!(k.e2e.mean() >= k.queue_delay.mean());
    assert!(k.e2e.mean() >= k.service.mean());
}
