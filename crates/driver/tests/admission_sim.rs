//! The admission queue under the deterministic simulation scheduler.
//!
//! `AdmissionQueue` used to be built on raw `std::sync` primitives, which
//! made it invisible to the `sicost-sim` cooperative scheduler: open-loop
//! runs were non-deterministic under simulation, and the
//! `BlockWithTimeout` path re-derived its deadline from the *wall* clock,
//! which never advances in virtual time — a livelock under the sim.
//! These tests pin both fixes: a seeded producer/consumer schedule over
//! the queue replays byte-identically (same `SimReport` trace hash, same
//! admission verdicts, same pop order), and a blocked submitter times out
//! in virtual time without waiting on the wall clock.

use sicost_common::sync::{sim_sleep, sim_spawn};
use sicost_driver::{Admission, AdmissionPolicy, AdmissionQueue};
use sicost_sim::{Sim, SimReport};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything one schedule produces that must match across same-seed
/// replays.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    report: SimReport,
    verdicts: Vec<Vec<Admission>>,
    popped: Vec<Vec<u64>>,
    shed: u64,
    timed_out: u64,
    max_depth: u64,
}

/// Two producers race ten offers each into a capacity-3 queue while two
/// consumers drain it with simulated service time; every blocking edge
/// (mutex, condvar, sleep) is a scheduler decision point, so the whole
/// interleaving is a pure function of the seed.
fn run_schedule(seed: u64) -> Fingerprint {
    let ((verdicts, popped), report) = Sim::new(seed).run(|| {
        let q = Arc::new(AdmissionQueue::new(AdmissionPolicy::BlockWithTimeout {
            capacity: 3,
            timeout: Duration::from_millis(40),
        }));
        let producers: Vec<_> = (0..2u64)
            .map(|p| {
                let q = Arc::clone(&q);
                sim_spawn(&format!("producer-{p}"), move || {
                    (0..10u64)
                        .map(|i| {
                            sim_sleep(Duration::from_millis(1 + (p * 3 + i) % 5));
                            q.offer(p * 100 + i)
                        })
                        .collect::<Vec<Admission>>()
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2u64)
            .map(|c| {
                let q = Arc::clone(&q);
                sim_spawn(&format!("consumer-{c}"), move || {
                    let mut got = Vec::new();
                    while let Some(item) = q.pop() {
                        sim_sleep(Duration::from_millis(4 + c));
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        let verdicts: Vec<Vec<Admission>> =
            producers.into_iter().map(|h| h.join().unwrap()).collect();
        q.close();
        let popped: Vec<Vec<u64>> = consumers.into_iter().map(|h| h.join().unwrap()).collect();
        (verdicts, popped)
    });
    let q_stats = {
        // Counters live on the queue, which the closure dropped; recompute
        // the aggregate view from the verdicts instead.
        let flat: Vec<Admission> = verdicts.iter().flatten().copied().collect();
        (
            flat.iter().filter(|a| **a == Admission::Shed).count() as u64,
            flat.iter().filter(|a| **a == Admission::TimedOut).count() as u64,
        )
    };
    Fingerprint {
        report,
        shed: q_stats.0,
        timed_out: q_stats.1,
        max_depth: 3,
        verdicts,
        popped,
    }
}

#[test]
fn same_seed_replays_byte_identically() {
    for seed in [0xAD15_5104_u64, 42, 7_777_777] {
        let a = run_schedule(seed);
        let b = run_schedule(seed);
        assert_eq!(
            a.report.trace_hash, b.report.trace_hash,
            "seed {seed:#x}: scheduling trace diverged between replays"
        );
        assert_eq!(a, b, "seed {seed:#x}: outcome projection diverged");
        // Everything admitted must have been popped exactly once.
        let admitted: u64 = a
            .verdicts
            .iter()
            .flatten()
            .filter(|v| **v == Admission::Admitted)
            .count() as u64;
        let drained: u64 = a.popped.iter().map(|p| p.len() as u64).sum();
        assert_eq!(admitted, drained, "seed {seed:#x}: lost or duplicated work");
        assert_eq!(admitted + a.shed + a.timed_out, 20, "every offer resolved");
    }
}

#[test]
fn block_with_timeout_expires_in_virtual_time() {
    // A full queue with no consumer: the submitter must time out via the
    // *virtual* clock. Before the port to `sicost_common::sync` this
    // livelocked — the wall-clock deadline never arrived while the
    // virtual wait kept reporting expiry.
    let wall = Instant::now();
    let (verdict, report) = Sim::new(1).run(|| {
        let q = AdmissionQueue::<u32>::new(AdmissionPolicy::BlockWithTimeout {
            capacity: 1,
            timeout: Duration::from_secs(3600),
        });
        assert_eq!(q.offer(1), Admission::Admitted);
        let verdict = q.offer(2);
        assert_eq!(q.timed_out(), 1);
        verdict
    });
    assert_eq!(verdict, Admission::TimedOut);
    assert!(
        report.virtual_time >= Duration::from_secs(3600),
        "the hour-long timeout elapsed in virtual time: {:?}",
        report.virtual_time
    );
    assert!(
        wall.elapsed() < Duration::from_secs(60),
        "virtual waiting must not consume wall-clock time"
    );
}
