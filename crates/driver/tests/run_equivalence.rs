//! Seeded equivalence of the three closed-system entry points.
//!
//! The driver consolidation kept `run_closed` and `run_closed_observed`
//! as deprecated shims over `run(workload, &config)`. These tests pin the
//! contract the shims promise: for the same seed and configuration, all
//! three entry points drive the *same* run — same kind names, same MPL,
//! and the same exact per-kind arithmetic between attempts, failures, and
//! commits — and the observer-delegation rule (an explicit hook passed to
//! `run_closed_observed` overrides the configured observer) holds.
//!
//! Wall-clock note: the measurement interval is real time, so raw
//! *counts* differ run to run even at a fixed seed. What is deterministic
//! is the per-request retry schedule — the workload below commits kind
//! `clean` on attempt 1 and kind `flaky` on attempt 3, always — so the
//! measured counters of every entry point must satisfy the same exact
//! invariants, for any measurement window.

#![allow(deprecated)]

use sicost_common::Xoshiro256;
use sicost_driver::{
    run, run_closed, run_closed_observed, AttemptObserver, Outcome, RetryPolicy, RunConfig,
    RunMetrics, Workload,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Structurally deterministic two-kind workload: `clean` commits on its
/// first attempt; `flaky` serialization-fails on attempts 1–2 and commits
/// on attempt 3. The tiny sleep keeps one run from spinning millions of
/// iterations through the measurement window.
struct TwoKinds;

impl Workload for TwoKinds {
    type Request = usize;

    fn kinds(&self) -> Vec<&'static str> {
        vec!["clean", "flaky"]
    }
    fn sample(&self, rng: &mut Xoshiro256) -> (usize, usize) {
        let kind = usize::from(rng.next_bool(0.5));
        (kind, kind)
    }
    fn execute(&self, kind: &usize, attempt: u32) -> Outcome {
        std::thread::sleep(Duration::from_micros(200));
        match (kind, attempt) {
            (0, _) => Outcome::Committed,
            (1, 1..=2) => Outcome::SerializationFailure,
            (1, _) => Outcome::Committed,
            _ => unreachable!("two kinds only"),
        }
    }
}

fn config(seed: u64) -> RunConfig {
    RunConfig::new(2)
        .with_ramp_up(Duration::from_millis(10))
        .with_measure(Duration::from_millis(80))
        .with_seed(seed)
        .with_retry(RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: 0.0,
        })
}

/// The exact arithmetic every entry point must produce for `TwoKinds`,
/// regardless of how many operations the wall-clock window admitted.
fn assert_projections(m: &RunMetrics, entry_point: &str) {
    assert_eq!(m.kind_names, vec!["clean", "flaky"], "{entry_point}");
    assert_eq!(m.mpl, 2, "{entry_point}");
    assert!(m.commits() > 0, "{entry_point}: nothing was measured");
    assert_eq!(m.give_ups(), 0, "{entry_point}");
    assert_eq!(m.deadlocks(), 0, "{entry_point}");

    let clean = m.kind("clean").expect("clean kind exists");
    assert_eq!(
        clean.attempts(),
        clean.commits,
        "{entry_point}: clean commits first try, so attempts == commits"
    );
    assert_eq!(clean.serialization_failures, 0, "{entry_point}");

    let flaky = m.kind("flaky").expect("flaky kind exists");
    assert_eq!(
        flaky.attempts(),
        3 * flaky.commits,
        "{entry_point}: every flaky commit burns exactly 3 attempts"
    );
    assert_eq!(
        flaky.serialization_failures,
        2 * flaky.commits,
        "{entry_point}: exactly 2 failures per flaky commit"
    );
    if flaky.commits > 0 {
        assert_eq!(
            flaky.attempts_per_commit.bin(3),
            flaky.commits,
            "{entry_point}"
        );
        assert!(
            (flaky.attempts_per_commit.mean() - 3.0).abs() < 1e-9,
            "{entry_point}"
        );
    }
}

#[test]
fn all_three_entry_points_satisfy_identical_projections() {
    for seed in [0xD1CE, 0xFEED, 7] {
        let via_run = run(&TwoKinds, &config(seed));
        let via_closed = run_closed(&TwoKinds, config(seed));
        let via_observed = run_closed_observed(&TwoKinds, config(seed), None);
        for (m, name) in [
            (&via_run, "run"),
            (&via_closed, "run_closed"),
            (&via_observed, "run_closed_observed"),
        ] {
            assert_projections(m, &format!("{name}/seed {seed:#x}"));
        }
        // The shims must not reshape the report: same kinds, same MPL.
        assert_eq!(via_run.kind_names, via_closed.kind_names);
        assert_eq!(via_run.kind_names, via_observed.kind_names);
        assert_eq!(via_run.mpl, via_closed.mpl);
        assert_eq!(via_run.mpl, via_observed.mpl);
    }
}

/// Counts attempt callbacks; used to pin the delegation rules.
#[derive(Default)]
struct Counting {
    begins: AtomicU64,
    ends: AtomicU64,
}

impl AttemptObserver for Counting {
    fn attempt_begin(&self, _kind: usize, _kind_name: &'static str, _attempt: u32) {
        self.begins.fetch_add(1, Ordering::Relaxed);
    }
    fn attempt_end(&self, _outcome: Outcome, _latency: Duration) {
        self.ends.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn run_closed_observed_without_hook_falls_back_to_the_config_observer() {
    let configured = Arc::new(Counting::default());
    let cfg = config(0xD1CE).with_observer(configured.clone());
    let m = run_closed_observed(&TwoKinds, cfg, None);
    assert!(m.commits() > 0);
    let begins = configured.begins.load(Ordering::Relaxed);
    assert!(
        begins > 0,
        "with no explicit hook the configured observer must fire"
    );
    assert_eq!(begins, configured.ends.load(Ordering::Relaxed));
    assert!(
        begins >= m.attempts(),
        "the observer sees every attempt including ramp-up ones \
         ({begins} observed vs {} measured)",
        m.attempts()
    );
}

#[test]
fn run_closed_observed_explicit_hook_shadows_the_config_observer() {
    let explicit = Counting::default();
    let configured = Arc::new(Counting::default());
    let cfg = config(0xD1CE).with_observer(configured.clone());
    let m = run_closed_observed(&TwoKinds, cfg, Some(&explicit));
    assert!(m.commits() > 0);
    assert!(
        explicit.begins.load(Ordering::Relaxed) >= m.attempts(),
        "the explicit hook sees every attempt"
    );
    assert_eq!(
        configured.begins.load(Ordering::Relaxed),
        0,
        "the configured observer must be fully shadowed, not merged"
    );
}
