//! Seeded behavioural contract of the closed-system entry point.
//!
//! The driver consolidation collapsed the old `run_closed` /
//! `run_closed_observed` shims into `run(workload, &config)`; those shims
//! are gone now. These tests pin the contract `run` carries forward: the
//! per-kind arithmetic between attempts, failures, and commits is exact
//! for a structurally deterministic workload, and the configured
//! [`RunConfig::with_observer`] sees every attempt (the only observer
//! path — there is no out-of-band hook anymore).
//!
//! Wall-clock note: the measurement interval is real time, so raw
//! *counts* differ run to run even at a fixed seed. What is deterministic
//! is the per-request retry schedule — the workload below commits kind
//! `clean` on attempt 1 and kind `flaky` on attempt 3, always — so the
//! measured counters must satisfy the same exact invariants, for any
//! measurement window.

use sicost_common::Xoshiro256;
use sicost_driver::{run, AttemptObserver, Outcome, RetryPolicy, RunConfig, RunMetrics, Workload};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Structurally deterministic two-kind workload: `clean` commits on its
/// first attempt; `flaky` serialization-fails on attempts 1–2 and commits
/// on attempt 3. The tiny sleep keeps one run from spinning millions of
/// iterations through the measurement window.
struct TwoKinds;

impl Workload for TwoKinds {
    type Request = usize;

    fn kinds(&self) -> Vec<&'static str> {
        vec!["clean", "flaky"]
    }
    fn sample(&self, rng: &mut Xoshiro256) -> (usize, usize) {
        let kind = usize::from(rng.next_bool(0.5));
        (kind, kind)
    }
    fn execute(&self, kind: &usize, attempt: u32) -> Outcome {
        std::thread::sleep(Duration::from_micros(200));
        match (kind, attempt) {
            (0, _) => Outcome::Committed,
            (1, 1..=2) => Outcome::SerializationFailure,
            (1, _) => Outcome::Committed,
            _ => unreachable!("two kinds only"),
        }
    }
}

fn config(seed: u64) -> RunConfig {
    RunConfig::new(2)
        .with_ramp_up(Duration::from_millis(10))
        .with_measure(Duration::from_millis(80))
        .with_seed(seed)
        .with_retry(RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: 0.0,
        })
}

/// The exact arithmetic `run` must produce for `TwoKinds`, regardless of
/// how many operations the wall-clock window admitted.
fn assert_projections(m: &RunMetrics, label: &str) {
    assert_eq!(m.kind_names, vec!["clean", "flaky"], "{label}");
    assert_eq!(m.mpl, 2, "{label}");
    assert!(m.commits() > 0, "{label}: nothing was measured");
    assert_eq!(m.give_ups(), 0, "{label}");
    assert_eq!(m.deadlocks(), 0, "{label}");

    let clean = m.kind("clean").expect("clean kind exists");
    assert_eq!(
        clean.attempts(),
        clean.commits,
        "{label}: clean commits first try, so attempts == commits"
    );
    assert_eq!(clean.serialization_failures, 0, "{label}");

    let flaky = m.kind("flaky").expect("flaky kind exists");
    assert_eq!(
        flaky.attempts(),
        3 * flaky.commits,
        "{label}: every flaky commit burns exactly 3 attempts"
    );
    assert_eq!(
        flaky.serialization_failures,
        2 * flaky.commits,
        "{label}: exactly 2 failures per flaky commit"
    );
    if flaky.commits > 0 {
        assert_eq!(flaky.attempts_per_commit.bin(3), flaky.commits, "{label}");
        assert!(
            (flaky.attempts_per_commit.mean() - 3.0).abs() < 1e-9,
            "{label}"
        );
    }
}

#[test]
fn run_satisfies_the_retry_schedule_projections_across_seeds() {
    for seed in [0xD1CE, 0xFEED, 7] {
        let m = run(&TwoKinds, &config(seed));
        assert_projections(&m, &format!("run/seed {seed:#x}"));
    }
}

/// Counts attempt callbacks; used to pin the observer contract.
#[derive(Default)]
struct Counting {
    begins: AtomicU64,
    ends: AtomicU64,
}

impl AttemptObserver for Counting {
    fn attempt_begin(&self, _kind: usize, _kind_name: &'static str, _attempt: u32) {
        self.begins.fetch_add(1, Ordering::Relaxed);
    }
    fn attempt_end(&self, _outcome: Outcome, _latency: Duration) {
        self.ends.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn configured_observer_sees_every_attempt_including_ramp_up() {
    let configured = Arc::new(Counting::default());
    let cfg = config(0xD1CE).with_observer(configured.clone());
    let m = run(&TwoKinds, &cfg);
    assert!(m.commits() > 0);
    let begins = configured.begins.load(Ordering::Relaxed);
    assert!(begins > 0, "the configured observer must fire");
    assert_eq!(begins, configured.ends.load(Ordering::Relaxed));
    assert!(
        begins >= m.attempts(),
        "the observer sees every attempt including ramp-up ones \
         ({begins} observed vs {} measured)",
        m.attempts()
    );
}

#[test]
fn run_without_observer_reports_the_same_projections() {
    // Attaching an observer must not perturb the measured arithmetic:
    // the projections hold identically with and without one.
    let configured = Arc::new(Counting::default());
    let with_obs = run(&TwoKinds, &config(7).with_observer(configured.clone()));
    let without = run(&TwoKinds, &config(7));
    assert_projections(&with_obs, "run+observer");
    assert_projections(&without, "run");
    assert_eq!(with_obs.kind_names, without.kind_names);
    assert_eq!(with_obs.mpl, without.mpl);
}
