//! Per-transaction span tracing.
//!
//! The engine's [`sicost_engine::HistoryObserver`] hooks and the driver's
//! [`sicost_driver::AttemptObserver`] hooks meet here: a [`TraceSink`]
//! implements both, assembles one [`TraceSpan`] per transaction attempt —
//! begin/read/write counts, commit or abort with reason, the driver's
//! retry attempt index, and (with
//! [`sicost_engine::EngineConfig::trace_timings`] enabled) the time spent
//! blocked in WAL group commit and in lock acquisition — and stores
//! completed spans in a bounded ring buffer.
//!
//! Spans aggregate into per-program latency-percentile histograms
//! ([`TraceSink::summary`], reusing [`sicost_common::LatencyHistogram`])
//! and export as JSONL ([`TraceSink::to_jsonl`]) for offline analysis.
//!
//! ```
//! use sicost_trace::TraceSink;
//! let sink = TraceSink::with_capacity(4096);
//! // … attach to the engine:   .observer(sink.clone())
//! // … and to the driver:      cfg.with_observer(sink.clone()), then run(&w, &cfg)
//! // … after the run:
//! let _report = sink.summary_report();
//! let _jsonl = sink.to_jsonl();
//! ```

#![deny(missing_docs)]

pub mod sink;
pub mod span;

pub use sink::{KindSummary, TraceSink};
pub use span::TraceSpan;
