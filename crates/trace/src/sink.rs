//! The span sink: assembly of in-flight spans and the completed-span ring.

use crate::span::TraceSpan;
use sicost_common::sync::stripe_of;
use sicost_common::{LatencyHistogram, TxnId};
use sicost_driver::{AttemptObserver, Outcome};
use sicost_engine::{HistoryEvent, HistoryObserver};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

thread_local! {
    /// What the driver announced for the attempt currently running on
    /// this thread: (kind name, attempt index). The engine's `Begin`
    /// event fires on the same client thread, which is how a span learns
    /// its kind without widening the engine API.
    static ATTEMPT_CONTEXT: Cell<Option<(&'static str, u32)>> = const { Cell::new(None) };
    /// Queue delay announced by the open-system runner for the operation
    /// about to start on this thread. Consumed (taken) by the first
    /// engine `Begin` that follows, so only that attempt's span carries
    /// it.
    static QUEUE_DELAY: Cell<Option<Duration>> = const { Cell::new(None) };
}

/// An in-flight span plus its start instant.
struct Partial {
    span: TraceSpan,
    started: Instant,
}

/// A bounded, lock-free-ish sink of completed [`TraceSpan`]s.
///
/// Writers reserve a slot with one atomic fetch-add and take only that
/// slot's tiny mutex to deposit the span — concurrent completions on
/// different slots never contend, and when the ring wraps the oldest
/// spans are overwritten ([`TraceSink::dropped`] counts them). In-flight
/// spans live in per-stripe maps keyed by transaction id, so the
/// engine's event hooks touch one stripe lock each.
///
/// Attach the sink twice: as the engine's history observer (span
/// contents) and as the driver's attempt observer (kind + attempt
/// tagging). Either alone still works — engine-only spans are untagged,
/// driver-only spans never materialise (no engine events).
pub struct TraceSink {
    capacity: usize,
    slots: Vec<Mutex<Option<TraceSpan>>>,
    /// Total spans ever pushed; `head % capacity` is the next slot.
    head: AtomicU64,
    inflight: Vec<Mutex<HashMap<TxnId, Partial>>>,
}

/// Per-kind aggregation of recorded spans ([`TraceSink::summary`]).
#[derive(Debug, Clone)]
pub struct KindSummary {
    /// Kind name, or `"(untagged)"` for spans without driver context.
    pub kind: String,
    /// Spans recorded (attempts, not operations).
    pub spans: u64,
    /// How many committed.
    pub committed: u64,
    /// Attempt duration distribution (all outcomes).
    pub latency: LatencyHistogram,
    /// WAL group-commit wait distribution (committed writers only show
    /// non-zero values, and only with `trace_timings` on).
    pub wal_sync: LatencyHistogram,
    /// Lock-wait distribution (non-zero only with `trace_timings` on).
    pub lock_wait: LatencyHistogram,
    /// Admission-queue delay distribution (non-zero only for spans from
    /// open-system runs; the closed-system runner has no queue).
    pub queue_delay: LatencyHistogram,
}

const INFLIGHT_STRIPES: usize = 16;

impl TraceSink {
    /// Creates a sink keeping the most recent `capacity` spans (min 1).
    pub fn with_capacity(capacity: usize) -> Arc<Self> {
        let capacity = capacity.max(1);
        Arc::new(Self {
            capacity,
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
            inflight: (0..INFLIGHT_STRIPES)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        })
    }

    /// Total spans ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Spans lost to ring wrap-around.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.capacity as u64)
    }

    /// Snapshot of the retained spans, oldest first (best-effort order
    /// under concurrent writes).
    pub fn spans(&self) -> Vec<TraceSpan> {
        let head = self.head.load(Ordering::Acquire) as usize;
        let mut out = Vec::new();
        for offset in 0..self.capacity {
            let i = (head + offset) % self.capacity;
            if let Some(span) = self.slots[i].lock().expect("slot lock").as_ref() {
                out.push(span.clone());
            }
        }
        out
    }

    /// Renders every retained span as one JSON object per line (JSONL).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for span in self.spans() {
            out.push_str(&span.to_json().render());
            out.push('\n');
        }
        out
    }

    /// Writes the JSONL export to a file.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Aggregates retained spans into per-kind latency-percentile
    /// histograms, sorted by kind name.
    pub fn summary(&self) -> Vec<KindSummary> {
        let mut by_kind: HashMap<String, KindSummary> = HashMap::new();
        for span in self.spans() {
            let kind = span.kind.unwrap_or("(untagged)").to_string();
            let entry = by_kind.entry(kind.clone()).or_insert_with(|| KindSummary {
                kind,
                spans: 0,
                committed: 0,
                latency: LatencyHistogram::new(),
                wal_sync: LatencyHistogram::new(),
                lock_wait: LatencyHistogram::new(),
                queue_delay: LatencyHistogram::new(),
            });
            entry.spans += 1;
            if span.committed {
                entry.committed += 1;
            }
            entry.latency.record(span.duration);
            entry.wal_sync.record(span.wal_sync);
            entry.lock_wait.record(span.lock_wait);
            entry.queue_delay.record(span.queue_delay);
        }
        let mut out: Vec<KindSummary> = by_kind.into_values().collect();
        out.sort_by(|a, b| a.kind.cmp(&b.kind));
        out
    }

    /// The summary as an aligned text table: per kind, span count, commit
    /// count, p50/p95/p99 attempt latency and mean WAL-sync / lock-wait
    /// time. Zero-safe on an empty sink (renders only the header).
    pub fn summary_report(&self) -> String {
        let mut out = format!(
            "{:>16} | {:>8} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            "kind", "spans", "commits", "p50", "p95", "p99", "wal-sync", "lock-wait", "queue"
        );
        out.push_str(&"-".repeat(out.len()));
        out.push('\n');
        for s in self.summary() {
            out.push_str(&format!(
                "{:>16} | {:>8} {:>8} {:>7.1?} {:>7.1?} {:>7.1?} {:>7.1?} {:>7.1?} {:>7.1?}\n",
                s.kind,
                s.spans,
                s.committed,
                s.latency.quantile(0.50),
                s.latency.quantile(0.95),
                s.latency.quantile(0.99),
                s.wal_sync.mean(),
                s.lock_wait.mean(),
                s.queue_delay.mean(),
            ));
        }
        if self.dropped() > 0 {
            out.push_str(&format!(
                "(ring wrapped: {} of {} spans dropped)\n",
                self.dropped(),
                self.recorded()
            ));
        }
        out
    }

    fn stripe(&self, txn: TxnId) -> &Mutex<HashMap<TxnId, Partial>> {
        &self.inflight[stripe_of(&txn.0, self.inflight.len())]
    }

    fn push(&self, span: TraceSpan) {
        let i = self.head.fetch_add(1, Ordering::AcqRel) as usize % self.capacity;
        *self.slots[i].lock().expect("slot lock") = Some(span);
    }

    fn with_partial(&self, txn: TxnId, f: impl FnOnce(&mut Partial)) {
        let mut stripe = self.stripe(txn).lock().expect("stripe lock");
        if let Some(partial) = stripe.get_mut(&txn) {
            f(partial);
        }
    }

    fn complete(&self, txn: TxnId, f: impl FnOnce(&mut Partial)) {
        let partial = self.stripe(txn).lock().expect("stripe lock").remove(&txn);
        if let Some(mut partial) = partial {
            partial.span.duration = partial.started.elapsed();
            f(&mut partial);
            self.push(partial.span);
        }
    }
}

impl HistoryObserver for TraceSink {
    fn on_event(&self, event: HistoryEvent) {
        match event {
            HistoryEvent::Begin { txn, snapshot } => {
                let (kind, attempt) = ATTEMPT_CONTEXT.with(|c| c.get()).unzip();
                let queue_delay = QUEUE_DELAY.with(|c| c.take()).unwrap_or(Duration::ZERO);
                let partial = Partial {
                    span: TraceSpan {
                        txn: txn.0,
                        kind,
                        attempt: attempt.unwrap_or(0),
                        snapshot: snapshot.0,
                        commit_ts: None,
                        reads: 0,
                        writes: 0,
                        committed: false,
                        outcome: String::new(),
                        duration: Duration::ZERO,
                        wal_sync: Duration::ZERO,
                        lock_wait: Duration::ZERO,
                        queue_delay,
                    },
                    started: Instant::now(),
                };
                self.stripe(txn)
                    .lock()
                    .expect("stripe lock")
                    .insert(txn, partial);
            }
            HistoryEvent::Read { txn, .. } => {
                self.with_partial(txn, |p| p.span.reads += 1);
            }
            HistoryEvent::Commit {
                txn,
                commit_ts,
                writes,
            } => {
                self.complete(txn, |p| {
                    p.span.commit_ts = Some(commit_ts.0);
                    p.span.writes = writes.len() as u32;
                    p.span.committed = true;
                    p.span.outcome = "committed".into();
                });
            }
            HistoryEvent::Abort { txn, reason } => {
                self.complete(txn, |p| {
                    p.span.committed = false;
                    p.span.outcome = reason.to_string();
                });
            }
        }
    }

    fn on_wal_sync(&self, txn: TxnId, wait: Duration) {
        self.with_partial(txn, |p| p.span.wal_sync += wait);
    }

    fn on_lock_wait(&self, txn: TxnId, wait: Duration) {
        self.with_partial(txn, |p| p.span.lock_wait += wait);
    }
}

impl AttemptObserver for TraceSink {
    fn attempt_begin(&self, _kind: usize, kind_name: &'static str, attempt: u32) {
        ATTEMPT_CONTEXT.with(|c| c.set(Some((kind_name, attempt))));
    }

    fn attempt_end(&self, _outcome: Outcome, _latency: Duration) {
        ATTEMPT_CONTEXT.with(|c| c.set(None));
    }

    fn attempt_queued(&self, _kind: usize, _kind_name: &'static str, queue_delay: Duration) {
        QUEUE_DELAY.with(|c| c.set(Some(queue_delay)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sicost_common::{TableId, Ts};
    use sicost_engine::AbortReason;
    use sicost_storage::Value;

    fn begin(t: u64) -> HistoryEvent {
        HistoryEvent::Begin {
            txn: TxnId(t),
            snapshot: Ts(1),
        }
    }

    fn commit(t: u64, writes: usize) -> HistoryEvent {
        HistoryEvent::Commit {
            txn: TxnId(t),
            commit_ts: Ts(5),
            writes: (0..writes)
                .map(|i| (TableId(0), Value::int(i as i64)))
                .collect(),
        }
    }

    #[test]
    fn assembles_a_committed_span_from_events() {
        let sink = TraceSink::with_capacity(16);
        sink.attempt_begin(0, "balance", 3);
        sink.on_event(begin(7));
        sink.on_event(HistoryEvent::Read {
            txn: TxnId(7),
            table: TableId(0),
            key: Value::int(1),
            observed: Some(Ts(1)),
        });
        sink.on_wal_sync(TxnId(7), Duration::from_micros(250));
        sink.on_lock_wait(TxnId(7), Duration::from_micros(40));
        sink.on_lock_wait(TxnId(7), Duration::from_micros(60));
        sink.on_event(commit(7, 2));
        sink.attempt_end(Outcome::Committed, Duration::from_millis(1));

        let spans = sink.spans();
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.txn, 7);
        assert_eq!(s.kind, Some("balance"));
        assert_eq!(s.attempt, 3);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 2);
        assert!(s.committed);
        assert_eq!(s.commit_ts, Some(5));
        assert_eq!(s.wal_sync, Duration::from_micros(250));
        assert_eq!(s.lock_wait, Duration::from_micros(100), "lock waits sum");
    }

    #[test]
    fn abort_spans_carry_the_reason_and_no_commit_ts() {
        let sink = TraceSink::with_capacity(16);
        sink.on_event(begin(1));
        sink.on_event(HistoryEvent::Abort {
            txn: TxnId(1),
            reason: AbortReason::Deadlock,
        });
        let spans = sink.spans();
        assert_eq!(spans.len(), 1);
        assert!(!spans[0].committed);
        assert_eq!(spans[0].outcome, "deadlock");
        assert_eq!(spans[0].commit_ts, None);
        assert_eq!(spans[0].kind, None, "no driver context → untagged");
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let sink = TraceSink::with_capacity(4);
        for t in 0..10u64 {
            sink.on_event(begin(t));
            sink.on_event(commit(t, 0));
        }
        assert_eq!(sink.recorded(), 10);
        assert_eq!(sink.dropped(), 6);
        let spans = sink.spans();
        assert_eq!(spans.len(), 4);
        let txns: Vec<u64> = spans.iter().map(|s| s.txn).collect();
        assert_eq!(txns, vec![6, 7, 8, 9], "newest four retained, in order");
    }

    #[test]
    fn summary_groups_by_kind_with_percentiles() {
        let sink = TraceSink::with_capacity(64);
        for (t, kind) in [(1u64, "bal"), (2, "bal"), (3, "wc")] {
            sink.attempt_begin(0, kind, 1);
            sink.on_event(begin(t));
            sink.on_event(commit(t, 1));
            sink.attempt_end(Outcome::Committed, Duration::ZERO);
        }
        let summary = sink.summary();
        assert_eq!(summary.len(), 2);
        assert_eq!(summary[0].kind, "bal");
        assert_eq!(summary[0].spans, 2);
        assert_eq!(summary[0].committed, 2);
        assert_eq!(summary[1].kind, "wc");
        let report = sink.summary_report();
        assert!(report.contains("bal"), "{report}");
        assert!(report.contains("p99"), "{report}");
    }

    #[test]
    fn queue_delay_tags_only_the_first_attempt_span() {
        let sink = TraceSink::with_capacity(16);
        // Open-system dispatch: queue delay announced once, then two
        // attempts of the same operation (a retry).
        sink.attempt_queued(0, "bal", Duration::from_micros(900));
        sink.attempt_begin(0, "bal", 1);
        sink.on_event(begin(1));
        sink.on_event(HistoryEvent::Abort {
            txn: TxnId(1),
            reason: AbortReason::Deadlock,
        });
        sink.attempt_end(Outcome::Deadlock, Duration::ZERO);
        sink.attempt_begin(0, "bal", 2);
        sink.on_event(begin(2));
        sink.on_event(commit(2, 1));
        sink.attempt_end(Outcome::Committed, Duration::ZERO);

        let spans = sink.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(
            spans[0].queue_delay,
            Duration::from_micros(900),
            "the first attempt's span carries the queue delay"
        );
        assert_eq!(
            spans[1].queue_delay,
            Duration::ZERO,
            "retry attempts crossed no queue"
        );
        let summary = sink.summary();
        assert_eq!(summary[0].queue_delay.count(), 2);
        assert!(summary[0].queue_delay.max() >= Duration::from_micros(900));
        let report = sink.summary_report();
        assert!(report.contains("queue"), "{report}");
    }

    #[test]
    fn empty_sink_is_harmless() {
        let sink = TraceSink::with_capacity(8);
        assert!(sink.spans().is_empty());
        assert_eq!(sink.to_jsonl(), "");
        assert!(sink.summary().is_empty());
        assert!(!sink.summary_report().contains("NaN"));
        // Events for unknown transactions (e.g. sink attached mid-run)
        // are ignored, not panics.
        sink.on_event(commit(99, 1));
        sink.on_wal_sync(TxnId(99), Duration::from_micros(1));
        assert!(sink.spans().is_empty());
    }

    #[test]
    fn jsonl_lines_parse_individually() {
        let sink = TraceSink::with_capacity(8);
        for t in 0..3u64 {
            sink.on_event(begin(t));
            sink.on_event(commit(t, 1));
        }
        let jsonl = sink.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            let v = sicost_common::Json::parse(line).unwrap();
            assert!(v.get("txn").is_some());
        }
    }

    #[test]
    fn spans_complete_concurrently() {
        let sink = TraceSink::with_capacity(1024);
        std::thread::scope(|s| {
            for thread in 0..4u64 {
                let sink = &sink;
                s.spawn(move || {
                    for i in 0..100u64 {
                        let t = thread * 1000 + i;
                        sink.attempt_begin(0, "load", 1);
                        sink.on_event(begin(t));
                        sink.on_event(commit(t, 1));
                        sink.attempt_end(Outcome::Committed, Duration::ZERO);
                    }
                });
            }
        });
        assert_eq!(sink.recorded(), 400);
        assert_eq!(sink.spans().len(), 400);
        assert!(sink.spans().iter().all(|s| s.committed));
    }
}
