//! The unit of tracing: one transaction attempt.

use sicost_common::Json;
use std::time::Duration;

/// One completed transaction attempt, as observed by the engine (events,
/// timings) and the driver (kind, retry attempt index).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Engine transaction id.
    pub txn: u64,
    /// Transaction kind name, when the driver announced one (engine work
    /// outside a driver attempt — loaders, ad-hoc transactions — has
    /// none).
    pub kind: Option<&'static str>,
    /// 1-based retry attempt index from the driver (0 when untagged).
    pub attempt: u32,
    /// Snapshot timestamp the attempt read at.
    pub snapshot: u64,
    /// Commit timestamp, for committed attempts.
    pub commit_ts: Option<u64>,
    /// Records read.
    pub reads: u32,
    /// Records written (including identity writes and deletes).
    pub writes: u32,
    /// `true` when the attempt committed.
    pub committed: bool,
    /// `"committed"` or the abort reason (e.g. `"deadlock"`,
    /// `"serialization failure (first-updater-wins)"`).
    pub outcome: String,
    /// Wall-clock from begin to commit/abort.
    pub duration: Duration,
    /// Time blocked in the WAL's group commit (zero unless
    /// `trace_timings` is enabled).
    pub wal_sync: Duration,
    /// Total time blocked acquiring row/table locks (zero unless
    /// `trace_timings` is enabled).
    pub lock_wait: Duration,
    /// Time the request spent in the open-system admission queue before
    /// this attempt's operation was dispatched. Zero for closed-system
    /// runs (no queue) and for retry attempts after the first — the
    /// queue is crossed once per operation.
    pub queue_delay: Duration,
}

fn micros(d: Duration) -> Json {
    Json::Num(d.as_secs_f64() * 1e6)
}

impl TraceSpan {
    /// The span as a JSON object (one JSONL line, durations in µs).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("txn", Json::int(self.txn)),
            (
                "kind",
                match self.kind {
                    Some(k) => Json::str(k),
                    None => Json::Null,
                },
            ),
            ("attempt", Json::int(u64::from(self.attempt))),
            ("snapshot", Json::int(self.snapshot)),
            (
                "commit_ts",
                match self.commit_ts {
                    Some(ts) => Json::int(ts),
                    None => Json::Null,
                },
            ),
            ("reads", Json::int(u64::from(self.reads))),
            ("writes", Json::int(u64::from(self.writes))),
            ("committed", Json::Bool(self.committed)),
            ("outcome", Json::str(self.outcome.clone())),
            ("duration_us", micros(self.duration)),
            ("wal_sync_us", micros(self.wal_sync)),
            ("lock_wait_us", micros(self.lock_wait)),
            ("queue_delay_us", micros(self.queue_delay)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_renders_as_json() {
        let span = TraceSpan {
            txn: 42,
            kind: Some("balance"),
            attempt: 2,
            snapshot: 7,
            commit_ts: Some(9),
            reads: 2,
            writes: 1,
            committed: true,
            outcome: "committed".into(),
            duration: Duration::from_micros(1500),
            wal_sync: Duration::from_micros(400),
            lock_wait: Duration::ZERO,
            queue_delay: Duration::from_micros(250),
        };
        let line = span.to_json().render();
        assert!(line.contains("\"txn\":42"), "{line}");
        assert!(line.contains("\"kind\":\"balance\""), "{line}");
        assert!(line.contains("\"duration_us\":1500"), "{line}");
        assert!(line.contains("\"wal_sync_us\":400"), "{line}");
        assert!(line.contains("\"queue_delay_us\":250"), "{line}");
        // Valid JSON round-trip.
        let parsed = Json::parse(&line).unwrap();
        assert_eq!(parsed.get("attempt").and_then(Json::as_u64), Some(2));
        assert_eq!(parsed.get("committed").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn untagged_aborted_span_has_nulls() {
        let span = TraceSpan {
            txn: 1,
            kind: None,
            attempt: 0,
            snapshot: 0,
            commit_ts: None,
            reads: 0,
            writes: 0,
            committed: false,
            outcome: "deadlock".into(),
            duration: Duration::ZERO,
            wal_sync: Duration::ZERO,
            lock_wait: Duration::ZERO,
            queue_delay: Duration::ZERO,
        };
        let parsed = Json::parse(&span.to_json().render()).unwrap();
        assert_eq!(parsed.get("kind"), Some(&Json::Null));
        assert_eq!(parsed.get("commit_ts"), Some(&Json::Null));
        assert_eq!(
            parsed.get("outcome").and_then(Json::as_str),
            Some("deadlock")
        );
    }
}
