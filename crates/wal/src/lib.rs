//! Write-ahead logging with a **simulated log device** and group commit.
//!
//! The paper's experiments run with WAL on a dedicated disk with its write
//! cache disabled, and `commit_delay` configured so concurrent commits share
//! one synchronous log write ("group commit"). Its §IV-D analysis then rests
//! on one observation: *"the need to write to disk is overwhelmingly dominant
//! in the work done; once a transaction needs one write, extra writes have
//! negligible extra cost."*
//!
//! This crate reproduces exactly that cost structure:
//!
//! * [`LogDevice`] models the disk: each sync costs a fixed rotational/seek
//!   latency plus a per-record transfer cost.
//! * [`Wal`] runs a background group-commit daemon. A committing transaction
//!   enqueues its [`LogRecord`] and blocks until the batch containing it has
//!   been synced; everything queued during the configurable `commit_delay`
//!   window shares one device sync.
//! * Read-only transactions never call into this crate at all — which is why
//!   strategies that add a write to the read-only Balance program pay the
//!   paper's ~20 % penalty at MPL 1 without any hard-coding on our side.
//!
//! Durability is byte-real: every synced record is appended to an
//! in-memory "disk" image in a checksummed binary frame (see [`record`]),
//! and [`recovery::recover`] rebuilds a catalog by scanning that image —
//! truncating any torn tail a crash left behind — and replaying the
//! surviving records. A shared [`sicost_common::FaultInjector`] can stall
//! or fail device syncs and crash the process mid-pipeline; tests use this
//! to show that committed transactions survive recovery and uncommitted
//! ones vanish.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod record;
pub mod recovery;
pub mod writer;

pub use checkpoint::{
    recover_image, CheckpointFrame, CheckpointImage, DurableImage, Manifest, PagedCheckpoint,
    RecoveryOutcome, CHECKPOINT_BASE_TS, CHECKPOINT_TXN, CHECKPOINT_VERSION,
    PAGED_CHECKPOINT_VERSION,
};
/// The simulated device layer, shared with the paged heap (re-exported
/// from `sicost-common`, where it moved so `sicost-storage` can use it).
pub use sicost_common::device;

pub use device::{DeviceStats, LogDevice, SyncError};
pub use record::{DecodeError, LogEntry, LogRecord, Lsn, FRAME_HEADER};
pub use recovery::{recover, replay, scan_log, RecoveryError, ScanResult, Truncation};
pub use writer::{Wal, WalConfig, WalError, WalStats};
