//! The WAL front end and its group-commit daemon.

use crate::device::{DeviceStats, LogDevice};
use crate::record::{LogEntry, LogRecord, Lsn};
use sicost_common::sync::{Condvar, Mutex};
use sicost_common::{CrashPoint, FaultInjector, TxnId};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// WAL tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalConfig {
    /// Fixed cost of one device sync (rotational + flush latency).
    pub sync_latency: Duration,
    /// Incremental cost per record in a sync batch (transfer).
    pub per_record_cost: Duration,
    /// Group-commit gather window: after the first commit arrives the
    /// daemon waits this long for others to join the batch (PostgreSQL's
    /// `commit_delay`, which the paper enables).
    pub commit_delay: Duration,
}

impl WalConfig {
    /// Zero-latency configuration for functional tests: group commit still
    /// batches, but no simulated time is charged.
    pub fn instant() -> Self {
        Self {
            sync_latency: Duration::ZERO,
            per_record_cost: Duration::ZERO,
            commit_delay: Duration::ZERO,
        }
    }

    /// Parameters calibrated against the paper's platform (dedicated log
    /// disk, write cache off, group commit on). See `EXPERIMENTS.md` for the
    /// calibration runs.
    pub fn paper_default() -> Self {
        Self {
            sync_latency: Duration::from_micros(4000),
            per_record_cost: Duration::from_micros(150),
            commit_delay: Duration::from_micros(500),
        }
    }
}

impl Default for WalConfig {
    fn default() -> Self {
        Self::instant()
    }
}

/// Cumulative WAL statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Commit records made durable.
    pub records: u64,
    /// Sync batches issued.
    pub batches: u64,
    /// Largest batch.
    pub max_batch: u64,
    /// Batches whose sync failed transiently (no record durable).
    pub failed_batches: u64,
}

/// Why a WAL commit did not make the record durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalError {
    /// The device sync for this batch failed transiently. Nothing from the
    /// batch is durable; the transaction may retry from scratch.
    SyncFailed,
    /// The simulated process crashed. The record may or may not be durable
    /// — only recovery can say.
    Crashed,
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::SyncFailed => write!(f, "wal sync failed"),
            WalError::Crashed => write!(f, "process crashed during wal write"),
        }
    }
}

impl std::error::Error for WalError {}

struct Completion {
    done: Mutex<Option<Result<(), WalError>>>,
    cv: Condvar,
}

struct Pending {
    record: LogRecord,
    completion: Arc<Completion>,
}

struct Shared {
    device: LogDevice,
    commit_delay: Duration,
    queue: Mutex<Vec<Pending>>,
    kick: Condvar,
    shutdown: AtomicBool,
    /// Durable records, in LSN order — exactly what `disk` decodes to.
    log: Mutex<Vec<LogRecord>>,
    /// The durable byte image: framed records appended on successful sync.
    /// This is what crash-recovery scans (and where a torn tail lives).
    disk: Mutex<Vec<u8>>,
    stats: Mutex<WalStats>,
    next_lsn: Mutex<u64>,
    faults: Option<Arc<FaultInjector>>,
}

impl Shared {
    fn crashed(&self) -> bool {
        self.faults.as_ref().is_some_and(|f| f.crashed())
    }
}

/// The write-ahead log. One instance per database; commits from any number
/// of threads funnel through the group-commit daemon.
pub struct Wal {
    shared: Arc<Shared>,
    daemon: Option<JoinHandle<()>>,
}

impl Wal {
    /// Starts the WAL and its group-commit daemon.
    pub fn new(config: WalConfig) -> Self {
        Self::with_faults(config, None)
    }

    /// Starts the WAL with an optional fault injector shared with the
    /// engine, so WAL-level faults and commit-pipeline faults draw from one
    /// seeded schedule.
    pub fn with_faults(config: WalConfig, faults: Option<Arc<FaultInjector>>) -> Self {
        let shared = Arc::new(Shared {
            device: LogDevice::new(config.sync_latency, config.per_record_cost)
                .with_faults(faults.clone()),
            commit_delay: config.commit_delay,
            queue: Mutex::new(Vec::new()),
            kick: Condvar::new(),
            shutdown: AtomicBool::new(false),
            log: Mutex::new(Vec::new()),
            disk: Mutex::new(Vec::new()),
            stats: Mutex::new(WalStats::default()),
            next_lsn: Mutex::new(0),
            faults,
        });
        let daemon_shared = Arc::clone(&shared);
        let daemon = std::thread::Builder::new()
            .name("wal-group-commit".into())
            .spawn(move || group_commit_loop(&daemon_shared))
            .expect("spawn WAL daemon");
        Self {
            shared,
            daemon: Some(daemon),
        }
    }

    /// Makes a transaction's redo entries durable, blocking until the sync
    /// batch containing them completes. Returns the record's LSN on
    /// success; [`WalError::SyncFailed`] when the batch's device sync
    /// failed transiently (nothing durable), [`WalError::Crashed`] when the
    /// simulated process died (durability undecided — ask recovery).
    ///
    /// Callers must not invoke this for read-only transactions — an empty
    /// entry list is a caller bug.
    pub fn commit(&self, txn: TxnId, entries: Vec<LogEntry>) -> Result<Lsn, WalError> {
        assert!(
            !entries.is_empty(),
            "read-only transactions must not write the WAL"
        );
        if self.shared.crashed() {
            return Err(WalError::Crashed);
        }
        let completion = Arc::new(Completion {
            done: Mutex::new(None),
            cv: Condvar::new(),
        });
        let lsn;
        {
            let mut next = self.shared.next_lsn.lock();
            lsn = Lsn(*next);
            *next += 1;
            // Enqueue while still holding the LSN lock so queue order always
            // matches LSN order.
            self.shared.queue.lock().push(Pending {
                record: LogRecord { lsn, txn, entries },
                completion: Arc::clone(&completion),
            });
        }
        self.shared.kick.notify_one();
        let mut done = completion.done.lock();
        while done.is_none() {
            completion.cv.wait(&mut done);
        }
        done.expect("loop exits only when set").map(|()| lsn)
    }

    /// Snapshot of the durable log, in LSN order (recovery and tests).
    pub fn log_snapshot(&self) -> Vec<LogRecord> {
        self.shared.log.lock().clone()
    }

    /// Snapshot of the durable byte image — the "disk" that crash recovery
    /// scans. After a mid-sync crash this ends in a torn tail.
    pub fn disk_snapshot(&self) -> Vec<u8> {
        self.shared.disk.lock().clone()
    }

    /// Cumulative WAL statistics.
    pub fn stats(&self) -> WalStats {
        *self.shared.stats.lock()
    }

    /// Cumulative device statistics.
    pub fn device_stats(&self) -> DeviceStats {
        self.shared.device.stats()
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.kick.notify_all();
        if let Some(h) = self.daemon.take() {
            let _ = h.join();
        }
    }
}

fn complete(batch: Vec<Pending>, result: Result<(), WalError>) {
    for p in batch {
        let mut done = p.completion.done.lock();
        *done = Some(result);
        p.completion.cv.notify_one();
    }
}

fn group_commit_loop(shared: &Shared) {
    loop {
        // Wait for work (or shutdown).
        {
            let mut queue = shared.queue.lock();
            while queue.is_empty() {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                shared.kick.wait(&mut queue);
            }
        }
        // Gather window: let concurrent committers join the batch.
        if !shared.commit_delay.is_zero() {
            std::thread::sleep(shared.commit_delay);
        }
        let batch: Vec<Pending> = std::mem::take(&mut *shared.queue.lock());
        debug_assert!(!batch.is_empty());

        // A crash armed at DuringWalSync tears the batch: every record but
        // the last reaches the disk image in full, then the write stops
        // half-way through the last record's frame. No waiter learns its
        // fate — they all see Crashed — and recovery must truncate the
        // partial frame by checksum.
        let crash_mid_sync = shared
            .faults
            .as_ref()
            .is_some_and(|f| f.at_crash_point(CrashPoint::DuringWalSync));
        if crash_mid_sync {
            let mut disk = shared.disk.lock();
            let mut log = shared.log.lock();
            for (i, p) in batch.iter().enumerate() {
                let frame = p.record.encode();
                if i + 1 < batch.len() {
                    disk.extend_from_slice(&frame);
                    log.push(p.record.clone());
                } else {
                    disk.extend_from_slice(&frame[..frame.len() / 2]);
                }
            }
            drop(log);
            drop(disk);
            complete(batch, Err(WalError::Crashed));
            continue;
        }
        if shared.crashed() {
            complete(batch, Err(WalError::Crashed));
            continue;
        }

        let bytes: u64 = batch.iter().map(|p| p.record.size_bytes() as u64).sum();
        let synced = shared.device.sync(batch.len() as u64, bytes);
        let result = match synced {
            Ok(()) => {
                let mut disk = shared.disk.lock();
                let mut log = shared.log.lock();
                for p in &batch {
                    p.record.encode_into(&mut disk);
                    log.push(p.record.clone());
                }
                Ok(())
            }
            Err(_) => Err(WalError::SyncFailed),
        };
        {
            let mut stats = shared.stats.lock();
            stats.batches += 1;
            if result.is_ok() {
                stats.records += batch.len() as u64;
                stats.max_batch = stats.max_batch.max(batch.len() as u64);
            } else {
                stats.failed_batches += 1;
            }
        }
        complete(batch, result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::LogRecord;
    use sicost_common::{FaultConfig, TableId};
    use sicost_storage::{Row, Value};
    use std::time::Instant;

    fn entry(key: i64, val: i64) -> LogEntry {
        LogEntry {
            table: TableId(0),
            key: Value::int(key),
            image: Some(Row::new(vec![Value::int(key), Value::int(val)])),
        }
    }

    #[test]
    fn commit_is_durable_and_ordered() {
        let wal = Wal::new(WalConfig::instant());
        let l1 = wal.commit(TxnId(1), vec![entry(1, 10)]).unwrap();
        let l2 = wal.commit(TxnId(2), vec![entry(2, 20)]).unwrap();
        assert!(l1 < l2);
        let log = wal.log_snapshot();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].lsn, l1);
        assert_eq!(log[1].lsn, l2);
        assert_eq!(log[0].txn, TxnId(1));
    }

    #[test]
    fn disk_image_decodes_back_to_the_log() {
        let wal = Wal::new(WalConfig::instant());
        wal.commit(TxnId(1), vec![entry(1, 10)]).unwrap();
        wal.commit(TxnId(2), vec![entry(2, 20), entry(3, 30)])
            .unwrap();
        let disk = wal.disk_snapshot();
        let mut decoded = Vec::new();
        let mut pos = 0;
        while pos < disk.len() {
            let (rec, used) = LogRecord::decode(&disk[pos..]).unwrap();
            decoded.push(rec);
            pos += used;
        }
        assert_eq!(decoded, wal.log_snapshot());
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn empty_commit_rejected() {
        let wal = Wal::new(WalConfig::instant());
        let _ = wal.commit(TxnId(1), vec![]);
    }

    #[test]
    fn group_commit_batches_concurrent_commits() {
        let cfg = WalConfig {
            sync_latency: Duration::from_millis(4),
            per_record_cost: Duration::ZERO,
            commit_delay: Duration::from_millis(2),
        };
        let wal = Arc::new(Wal::new(cfg));
        let n = 8;
        let t0 = Instant::now();
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    wal.commit(TxnId(i), vec![entry(i as i64, 0)]).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let elapsed = t0.elapsed();
        let stats = wal.stats();
        assert_eq!(stats.records, n);
        // All 8 should fit in one or two batches, far fewer than 8 syncs.
        assert!(
            stats.batches <= 3,
            "expected grouped commits, got {} batches",
            stats.batches
        );
        assert!(stats.max_batch >= 3);
        // And wall-clock must be far below 8 serial syncs (8 * 6ms).
        assert!(
            elapsed < Duration::from_millis(30),
            "group commit too slow: {elapsed:?}"
        );
    }

    #[test]
    fn sequential_commits_each_pay_the_sync() {
        let cfg = WalConfig {
            sync_latency: Duration::from_millis(3),
            per_record_cost: Duration::ZERO,
            commit_delay: Duration::ZERO,
        };
        let wal = Wal::new(cfg);
        let t0 = Instant::now();
        for i in 0..3 {
            wal.commit(TxnId(i), vec![entry(i as i64, 0)]).unwrap();
        }
        assert!(t0.elapsed() >= Duration::from_millis(9));
        assert_eq!(wal.stats().batches, 3);
    }

    #[test]
    fn stats_track_device() {
        let wal = Wal::new(WalConfig::instant());
        wal.commit(TxnId(1), vec![entry(1, 1), entry(2, 2)])
            .unwrap();
        let ds = wal.device_stats();
        assert_eq!(ds.syncs, 1);
        assert_eq!(ds.records, 1, "device counts records (commit groups)");
        assert!(ds.bytes > 0);
    }

    #[test]
    fn drop_joins_daemon_cleanly() {
        let wal = Wal::new(WalConfig::instant());
        wal.commit(TxnId(1), vec![entry(1, 1)]).unwrap();
        drop(wal); // must not hang or panic
    }

    #[test]
    fn sync_error_fails_every_waiter_and_leaves_disk_untouched() {
        let f = Arc::new(FaultInjector::new(FaultConfig::transient(3, 0.0, 1.0)));
        let wal = Wal::with_faults(WalConfig::instant(), Some(f));
        assert_eq!(
            wal.commit(TxnId(1), vec![entry(1, 1)]),
            Err(WalError::SyncFailed)
        );
        assert!(wal.disk_snapshot().is_empty());
        assert!(wal.log_snapshot().is_empty());
        let stats = wal.stats();
        assert_eq!(stats.failed_batches, 1);
        assert_eq!(stats.records, 0);
    }

    #[test]
    fn mid_sync_crash_tears_the_tail_record() {
        let f = Arc::new(FaultInjector::new(FaultConfig::crash(
            CrashPoint::DuringWalSync,
            1,
        )));
        // Large commit_delay so both commits land in one batch.
        let cfg = WalConfig {
            sync_latency: Duration::ZERO,
            per_record_cost: Duration::ZERO,
            commit_delay: Duration::from_millis(20),
        };
        let wal = Arc::new(Wal::with_faults(cfg, Some(Arc::clone(&f))));
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || wal.commit(TxnId(i), vec![entry(i as i64, 0)]))
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(results.iter().all(|r| *r == Err(WalError::Crashed)));
        assert!(f.crashed());

        // The first record of the batch is intact, the second is torn.
        let disk = wal.disk_snapshot();
        let (first, used) = LogRecord::decode(&disk).expect("head record intact");
        assert_eq!(wal.log_snapshot(), vec![first]);
        assert!(used < disk.len(), "a torn tail must remain");
        assert!(LogRecord::decode(&disk[used..]).is_err());

        // The WAL is dead: later commits fail fast.
        assert_eq!(
            wal.commit(TxnId(9), vec![entry(9, 9)]),
            Err(WalError::Crashed)
        );
    }
}
