//! The WAL front end and its group-commit daemon.

use crate::checkpoint::{DurableImage, Manifest};
use crate::device::{DeviceStats, LogDevice};
use crate::record::{LogEntry, LogRecord, Lsn};
use sicost_common::sync::{sim_sleep, sim_spawn, Condvar, Mutex, SimJoinHandle};
use sicost_common::{CrashPoint, FaultInjector, TxnId};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// WAL tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalConfig {
    /// Fixed cost of one device sync (rotational + flush latency).
    pub sync_latency: Duration,
    /// Incremental cost per record in a sync batch (transfer).
    pub per_record_cost: Duration,
    /// Group-commit gather window: after the first commit arrives the
    /// daemon waits this long for others to join the batch (PostgreSQL's
    /// `commit_delay`, which the paper enables).
    pub commit_delay: Duration,
}

impl WalConfig {
    /// Zero-latency configuration for functional tests: group commit still
    /// batches, but no simulated time is charged.
    pub fn instant() -> Self {
        Self {
            sync_latency: Duration::ZERO,
            per_record_cost: Duration::ZERO,
            commit_delay: Duration::ZERO,
        }
    }

    /// Parameters calibrated against the paper's platform (dedicated log
    /// disk, write cache off, group commit on). See `EXPERIMENTS.md` for the
    /// calibration runs.
    pub fn paper_default() -> Self {
        Self {
            sync_latency: Duration::from_micros(4000),
            per_record_cost: Duration::from_micros(150),
            commit_delay: Duration::from_micros(500),
        }
    }
}

impl Default for WalConfig {
    fn default() -> Self {
        Self::instant()
    }
}

/// Cumulative WAL statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Commit records made durable.
    pub records: u64,
    /// Sync batches issued.
    pub batches: u64,
    /// Largest batch.
    pub max_batch: u64,
    /// Batches whose sync failed transiently (no record durable).
    pub failed_batches: u64,
    /// Total framed bytes appended to the durable log image (monotone;
    /// unaffected by truncation).
    pub appended_bytes: u64,
    /// Log-prefix bytes dropped by checkpoint truncation.
    pub truncated_bytes: u64,
}

/// Why a WAL commit did not make the record durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalError {
    /// The device sync for this batch failed transiently. Nothing from the
    /// batch is durable; the transaction may retry from scratch.
    SyncFailed,
    /// The simulated process crashed. The record may or may not be durable
    /// — only recovery can say.
    Crashed,
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::SyncFailed => write!(f, "wal sync failed"),
            WalError::Crashed => write!(f, "process crashed during wal write"),
        }
    }
}

impl std::error::Error for WalError {}

struct Completion {
    done: Mutex<Option<Result<(), WalError>>>,
    cv: Condvar,
}

struct Pending {
    record: LogRecord,
    completion: Arc<Completion>,
}

/// The durable log window under one lock, so a reader can take the base
/// offset, the byte image, and the decoded record list as one consistent
/// snapshot (sampling them from separate locks would race with the
/// daemon's append).
struct DiskImage {
    /// Logical byte offset of `bytes[0]`. Starts at 0 and only advances
    /// when checkpoint truncation drops a prefix.
    base: u64,
    /// The surviving framed bytes: what crash-recovery scans (and where a
    /// torn tail lives).
    bytes: Vec<u8>,
    /// Durable records still inside the window, in LSN order, each with
    /// the logical end offset of its frame — exactly what `bytes` decodes
    /// to.
    records: Vec<(LogRecord, u64)>,
}

impl DiskImage {
    /// Logical offset one past the last durable byte. Monotone: truncation
    /// advances `base` and shrinks `bytes` by the same amount.
    fn end(&self) -> u64 {
        self.base + self.bytes.len() as u64
    }
}

/// The durable checkpoint area: two frame slots, the live manifest, and
/// the previous manifest (retained across a swap so a torn current
/// generation can fall back).
struct CheckpointArea {
    slots: [Vec<u8>; 2],
    manifest: Vec<u8>,
    prev_manifest: Vec<u8>,
    /// The slot the *next* checkpoint frame goes into — always the one
    /// the live manifest does not reference, so a torn write can never
    /// damage the recoverable generation.
    next_slot: u8,
}

struct Shared {
    device: LogDevice,
    commit_delay: Duration,
    queue: Mutex<Vec<Pending>>,
    kick: Condvar,
    shutdown: AtomicBool,
    /// The durable log window (base offset + bytes + decoded records).
    image: Mutex<DiskImage>,
    /// The durable checkpoint slots and manifests.
    ckpt: Mutex<CheckpointArea>,
    stats: Mutex<WalStats>,
    next_lsn: Mutex<u64>,
    faults: Option<Arc<FaultInjector>>,
}

impl Shared {
    fn crashed(&self) -> bool {
        self.faults.as_ref().is_some_and(|f| f.crashed())
    }
}

/// The write-ahead log. One instance per database; commits from any number
/// of threads funnel through the group-commit daemon.
pub struct Wal {
    shared: Arc<Shared>,
    daemon: Option<SimJoinHandle<()>>,
}

impl Wal {
    /// Starts the WAL and its group-commit daemon.
    pub fn new(config: WalConfig) -> Self {
        Self::with_faults(config, None)
    }

    /// Starts the WAL with an optional fault injector shared with the
    /// engine, so WAL-level faults and commit-pipeline faults draw from one
    /// seeded schedule.
    pub fn with_faults(config: WalConfig, faults: Option<Arc<FaultInjector>>) -> Self {
        let shared = Arc::new(Shared {
            device: LogDevice::new(config.sync_latency, config.per_record_cost)
                .with_faults(faults.clone()),
            commit_delay: config.commit_delay,
            queue: Mutex::new(Vec::new()),
            kick: Condvar::new(),
            shutdown: AtomicBool::new(false),
            image: Mutex::new(DiskImage {
                base: 0,
                bytes: Vec::new(),
                records: Vec::new(),
            }),
            ckpt: Mutex::new(CheckpointArea {
                slots: [Vec::new(), Vec::new()],
                manifest: Vec::new(),
                prev_manifest: Vec::new(),
                next_slot: 0,
            }),
            stats: Mutex::new(WalStats::default()),
            next_lsn: Mutex::new(0),
            faults,
        });
        let daemon_shared = Arc::clone(&shared);
        // sim_spawn: a plain named thread normally; a scheduled task when
        // running under the deterministic simulator.
        let daemon = sim_spawn("wal-group-commit", move || {
            group_commit_loop(&daemon_shared)
        });
        Self {
            shared,
            daemon: Some(daemon),
        }
    }

    /// Makes a transaction's redo entries durable, blocking until the sync
    /// batch containing them completes. Returns the record's LSN on
    /// success; [`WalError::SyncFailed`] when the batch's device sync
    /// failed transiently (nothing durable), [`WalError::Crashed`] when the
    /// simulated process died (durability undecided — ask recovery).
    ///
    /// Callers must not invoke this for read-only transactions — an empty
    /// entry list is a caller bug.
    pub fn commit(&self, txn: TxnId, entries: Vec<LogEntry>) -> Result<Lsn, WalError> {
        assert!(
            !entries.is_empty(),
            "read-only transactions must not write the WAL"
        );
        if self.shared.crashed() {
            return Err(WalError::Crashed);
        }
        let completion = Arc::new(Completion {
            done: Mutex::new(None),
            cv: Condvar::new(),
        });
        let lsn;
        {
            let mut next = self.shared.next_lsn.lock();
            lsn = Lsn(*next);
            *next += 1;
            // Enqueue while still holding the LSN lock so queue order always
            // matches LSN order.
            self.shared.queue.lock().push(Pending {
                record: LogRecord { lsn, txn, entries },
                completion: Arc::clone(&completion),
            });
        }
        self.shared.kick.notify_one();
        let mut done = completion.done.lock();
        while done.is_none() {
            completion.cv.wait(&mut done);
        }
        done.expect("loop exits only when set").map(|()| lsn)
    }

    /// Snapshot of the durable log records still inside the surviving
    /// window, in LSN order (recovery and tests). Checkpoint truncation
    /// drops the covered prefix from this view too.
    pub fn log_snapshot(&self) -> Vec<LogRecord> {
        self.shared
            .image
            .lock()
            .records
            .iter()
            .map(|(r, _)| r.clone())
            .collect()
    }

    /// Snapshot of the durable byte image — the "disk" window that crash
    /// recovery scans. After a mid-sync crash this ends in a torn tail.
    pub fn disk_snapshot(&self) -> Vec<u8> {
        self.shared.image.lock().bytes.clone()
    }

    /// Logical byte offset of the first surviving log byte (0 until the
    /// first truncation).
    pub fn wal_base(&self) -> u64 {
        self.shared.image.lock().base
    }

    /// Logical byte offset one past the last durable log byte. Monotone
    /// across truncation; the checkpointer reads this as the redo
    /// resume-point `O` before choosing its snapshot timestamp.
    pub fn log_end_offset(&self) -> u64 {
        self.shared.image.lock().end()
    }

    /// The complete durable state — log window, checkpoint slots, and
    /// manifests — as crash recovery would find it.
    pub fn durable_image(&self) -> DurableImage {
        let ckpt = self.shared.ckpt.lock();
        let image = self.shared.image.lock();
        DurableImage {
            manifest: ckpt.manifest.clone(),
            prev_manifest: ckpt.prev_manifest.clone(),
            slots: [ckpt.slots[0].clone(), ckpt.slots[1].clone()],
            wal_base: image.base,
            wal: image.bytes.clone(),
            // The WAL doesn't own the heap; a paged engine merges the
            // catalog's heap snapshot into this image itself.
            heap: Default::default(),
        }
    }

    /// Step 1 of a checkpoint: write the encoded checkpoint frame into the
    /// inactive slot and sync it. Returns the slot written, for the
    /// manifest. The live manifest's slot is never touched, so a crash or
    /// torn write here ([`sicost_common::CrashPoint::DuringCheckpointWrite`])
    /// leaves the previous generation fully recoverable.
    pub fn write_checkpoint(&self, frame: &[u8]) -> Result<u8, WalError> {
        if self.shared.crashed() {
            return Err(WalError::Crashed);
        }
        let mut ckpt = self.shared.ckpt.lock();
        let slot = ckpt.next_slot;
        if let Some(f) = &self.shared.faults {
            if f.at_crash_point(CrashPoint::DuringCheckpointWrite) {
                // The crash lands mid-write: the slot holds a torn prefix.
                ckpt.slots[slot as usize] = frame[..frame.len() / 2].to_vec();
                return Err(WalError::Crashed);
            }
        }
        self.shared
            .device
            .sync(1, frame.len() as u64)
            .map_err(|_| WalError::SyncFailed)?;
        ckpt.slots[slot as usize] = frame.to_vec();
        Ok(slot)
    }

    /// Step 2 of a checkpoint: atomically swap the manifest to point at
    /// the freshly written slot, retaining the previous manifest bytes for
    /// fallback. A crash armed at
    /// [`sicost_common::CrashPoint::BeforeManifestSwap`] fires before any
    /// byte changes, so recovery still sees the old generation.
    pub fn swap_manifest(&self, manifest: &Manifest) -> Result<(), WalError> {
        if self.shared.crashed() {
            return Err(WalError::Crashed);
        }
        if let Some(f) = &self.shared.faults {
            if f.at_crash_point(CrashPoint::BeforeManifestSwap) {
                return Err(WalError::Crashed);
            }
        }
        let encoded = manifest.encode();
        self.shared
            .device
            .sync(1, encoded.len() as u64)
            .map_err(|_| WalError::SyncFailed)?;
        let mut ckpt = self.shared.ckpt.lock();
        ckpt.prev_manifest = std::mem::take(&mut ckpt.manifest);
        ckpt.manifest = encoded;
        // The slot the new manifest references is now live; the other one
        // is free for the next generation.
        ckpt.next_slot = 1 - manifest.slot;
        Ok(())
    }

    /// Step 3 of a checkpoint: drop the log prefix below logical offset
    /// `cut`. Must only be called once the manifest naming `cut` as its
    /// resume point is durable — which is why the armed crash point
    /// ([`sicost_common::CrashPoint::AfterManifestSwapBeforeTruncate`])
    /// fires *before* any byte is dropped: a crash there recovers from the
    /// new manifest over the still-intact log. Returns the bytes dropped.
    pub fn truncate_to(&self, cut: u64) -> Result<u64, WalError> {
        if self.shared.crashed() {
            return Err(WalError::Crashed);
        }
        if let Some(f) = &self.shared.faults {
            if f.at_crash_point(CrashPoint::AfterManifestSwapBeforeTruncate) {
                return Err(WalError::Crashed);
            }
        }
        let mut image = self.shared.image.lock();
        if cut <= image.base {
            return Ok(0);
        }
        assert!(
            cut <= image.end(),
            "truncate_to({cut}) past log end {}",
            image.end()
        );
        let dropped = (cut - image.base) as usize;
        image.bytes.drain(..dropped);
        image.base = cut;
        image.records.retain(|(_, end)| *end > cut);
        drop(image);
        self.shared.stats.lock().truncated_bytes += dropped as u64;
        Ok(dropped as u64)
    }

    /// Cumulative WAL statistics.
    pub fn stats(&self) -> WalStats {
        *self.shared.stats.lock()
    }

    /// Cumulative device statistics.
    pub fn device_stats(&self) -> DeviceStats {
        self.shared.device.stats()
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.kick.notify_all();
        if let Some(h) = self.daemon.take() {
            let _ = h.join();
        }
    }
}

fn complete(batch: Vec<Pending>, result: Result<(), WalError>) {
    for p in batch {
        let mut done = p.completion.done.lock();
        *done = Some(result);
        p.completion.cv.notify_one();
    }
}

fn group_commit_loop(shared: &Shared) {
    loop {
        // Wait for work (or shutdown).
        {
            let mut queue = shared.queue.lock();
            while queue.is_empty() {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                shared.kick.wait(&mut queue);
            }
        }
        // Gather window: let concurrent committers join the batch.
        if !shared.commit_delay.is_zero() {
            sim_sleep(shared.commit_delay);
        }
        let batch: Vec<Pending> = std::mem::take(&mut *shared.queue.lock());
        debug_assert!(!batch.is_empty());

        // A crash armed at DuringWalSync tears the batch: every record but
        // the last reaches the disk image in full, then the write stops
        // half-way through the last record's frame. No waiter learns its
        // fate — they all see Crashed — and recovery must truncate the
        // partial frame by checksum.
        let crash_mid_sync = shared
            .faults
            .as_ref()
            .is_some_and(|f| f.at_crash_point(CrashPoint::DuringWalSync));
        if crash_mid_sync {
            let mut image = shared.image.lock();
            let mut appended = 0u64;
            for (i, p) in batch.iter().enumerate() {
                let frame = p.record.encode();
                if i + 1 < batch.len() {
                    image.bytes.extend_from_slice(&frame);
                    let end = image.end();
                    image.records.push((p.record.clone(), end));
                    appended += frame.len() as u64;
                } else {
                    image.bytes.extend_from_slice(&frame[..frame.len() / 2]);
                    appended += (frame.len() / 2) as u64;
                }
            }
            drop(image);
            shared.stats.lock().appended_bytes += appended;
            complete(batch, Err(WalError::Crashed));
            continue;
        }
        if shared.crashed() {
            complete(batch, Err(WalError::Crashed));
            continue;
        }

        let bytes: u64 = batch.iter().map(|p| p.record.size_bytes() as u64).sum();
        let synced = shared.device.sync(batch.len() as u64, bytes);
        let mut appended = 0u64;
        let result = match synced {
            Ok(()) => {
                let mut image = shared.image.lock();
                for p in &batch {
                    let before = image.bytes.len();
                    p.record.encode_into(&mut image.bytes);
                    appended += (image.bytes.len() - before) as u64;
                    let end = image.end();
                    image.records.push((p.record.clone(), end));
                }
                Ok(())
            }
            Err(_) => Err(WalError::SyncFailed),
        };
        {
            let mut stats = shared.stats.lock();
            stats.batches += 1;
            if result.is_ok() {
                stats.records += batch.len() as u64;
                stats.max_batch = stats.max_batch.max(batch.len() as u64);
                stats.appended_bytes += appended;
            } else {
                stats.failed_batches += 1;
            }
        }
        complete(batch, result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::LogRecord;
    use sicost_common::{FaultConfig, TableId};
    use sicost_storage::{Row, Value};
    use std::time::Instant;

    fn entry(key: i64, val: i64) -> LogEntry {
        LogEntry {
            table: TableId(0),
            key: Value::int(key),
            image: Some(Row::new(vec![Value::int(key), Value::int(val)])),
        }
    }

    #[test]
    fn commit_is_durable_and_ordered() {
        let wal = Wal::new(WalConfig::instant());
        let l1 = wal.commit(TxnId(1), vec![entry(1, 10)]).unwrap();
        let l2 = wal.commit(TxnId(2), vec![entry(2, 20)]).unwrap();
        assert!(l1 < l2);
        let log = wal.log_snapshot();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].lsn, l1);
        assert_eq!(log[1].lsn, l2);
        assert_eq!(log[0].txn, TxnId(1));
    }

    #[test]
    fn disk_image_decodes_back_to_the_log() {
        let wal = Wal::new(WalConfig::instant());
        wal.commit(TxnId(1), vec![entry(1, 10)]).unwrap();
        wal.commit(TxnId(2), vec![entry(2, 20), entry(3, 30)])
            .unwrap();
        let disk = wal.disk_snapshot();
        let mut decoded = Vec::new();
        let mut pos = 0;
        while pos < disk.len() {
            let (rec, used) = LogRecord::decode(&disk[pos..]).unwrap();
            decoded.push(rec);
            pos += used;
        }
        assert_eq!(decoded, wal.log_snapshot());
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn empty_commit_rejected() {
        let wal = Wal::new(WalConfig::instant());
        let _ = wal.commit(TxnId(1), vec![]);
    }

    #[test]
    fn group_commit_batches_concurrent_commits() {
        let cfg = WalConfig {
            sync_latency: Duration::from_millis(4),
            per_record_cost: Duration::ZERO,
            commit_delay: Duration::from_millis(2),
        };
        let wal = Arc::new(Wal::new(cfg));
        let n = 8;
        let t0 = Instant::now();
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    wal.commit(TxnId(i), vec![entry(i as i64, 0)]).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let elapsed = t0.elapsed();
        let stats = wal.stats();
        assert_eq!(stats.records, n);
        // All 8 should fit in one or two batches, far fewer than 8 syncs.
        assert!(
            stats.batches <= 3,
            "expected grouped commits, got {} batches",
            stats.batches
        );
        assert!(stats.max_batch >= 3);
        // And wall-clock must be far below 8 serial syncs (8 * 6ms).
        assert!(
            elapsed < Duration::from_millis(30),
            "group commit too slow: {elapsed:?}"
        );
    }

    #[test]
    fn sequential_commits_each_pay_the_sync() {
        let cfg = WalConfig {
            sync_latency: Duration::from_millis(3),
            per_record_cost: Duration::ZERO,
            commit_delay: Duration::ZERO,
        };
        let wal = Wal::new(cfg);
        let t0 = Instant::now();
        for i in 0..3 {
            wal.commit(TxnId(i), vec![entry(i as i64, 0)]).unwrap();
        }
        assert!(t0.elapsed() >= Duration::from_millis(9));
        assert_eq!(wal.stats().batches, 3);
    }

    #[test]
    fn stats_track_device() {
        let wal = Wal::new(WalConfig::instant());
        wal.commit(TxnId(1), vec![entry(1, 1), entry(2, 2)])
            .unwrap();
        let ds = wal.device_stats();
        assert_eq!(ds.syncs, 1);
        assert_eq!(ds.records, 1, "device counts records (commit groups)");
        assert!(ds.bytes > 0);
    }

    #[test]
    fn drop_joins_daemon_cleanly() {
        let wal = Wal::new(WalConfig::instant());
        wal.commit(TxnId(1), vec![entry(1, 1)]).unwrap();
        drop(wal); // must not hang or panic
    }

    #[test]
    fn sync_error_fails_every_waiter_and_leaves_disk_untouched() {
        let f = Arc::new(FaultInjector::new(FaultConfig::transient(3, 0.0, 1.0)));
        let wal = Wal::with_faults(WalConfig::instant(), Some(f));
        assert_eq!(
            wal.commit(TxnId(1), vec![entry(1, 1)]),
            Err(WalError::SyncFailed)
        );
        assert!(wal.disk_snapshot().is_empty());
        assert!(wal.log_snapshot().is_empty());
        let stats = wal.stats();
        assert_eq!(stats.failed_batches, 1);
        assert_eq!(stats.records, 0);
    }

    #[test]
    fn checkpoint_protocol_truncates_and_survives_recovery() {
        use crate::checkpoint::{recover_image, CheckpointImage, Manifest};
        use sicost_common::Ts;

        let wal = Wal::new(WalConfig::instant());
        wal.commit(TxnId(1), vec![entry(1, 10)]).unwrap();
        wal.commit(TxnId(2), vec![entry(2, 20)]).unwrap();
        let cut = wal.log_end_offset();
        assert_eq!(wal.wal_base(), 0);

        // Checkpoint covering both records.
        let frame = CheckpointImage {
            ts: Ts(2),
            tables: vec![(
                TableId(0),
                vec![
                    (Value::int(1), Row::new(vec![Value::int(1), Value::int(10)])),
                    (Value::int(2), Row::new(vec![Value::int(2), Value::int(20)])),
                ],
            )],
        }
        .encode();
        let slot = wal.write_checkpoint(&frame).unwrap();
        assert_eq!(slot, 0);
        wal.swap_manifest(&Manifest {
            slot,
            checkpoint_ts: Ts(2),
            wal_offset: cut,
        })
        .unwrap();
        assert_eq!(wal.truncate_to(cut).unwrap(), cut);
        assert_eq!(wal.wal_base(), cut);
        assert_eq!(wal.log_end_offset(), cut, "end offset is monotone");
        assert!(wal.disk_snapshot().is_empty());
        assert!(wal.log_snapshot().is_empty());
        let stats = wal.stats();
        assert_eq!(stats.truncated_bytes, cut);
        assert_eq!(stats.appended_bytes, cut);

        // A commit after the checkpoint lands in the suffix.
        wal.commit(TxnId(3), vec![entry(1, 11)]).unwrap();
        assert_eq!(wal.log_snapshot().len(), 1);
        assert!(wal.log_end_offset() > cut);

        // And the durable image recovers: checkpoint rows + suffix only.
        let mut cat = sicost_storage::Catalog::new();
        cat.create_table(
            sicost_storage::TableSchema::new(
                "T",
                vec![
                    sicost_storage::ColumnDef::new("id", sicost_storage::ColumnType::Int),
                    sicost_storage::ColumnDef::new("v", sicost_storage::ColumnType::Int),
                ],
                0,
                vec![],
            )
            .unwrap(),
        )
        .unwrap();
        let out = recover_image(&wal.durable_image(), &cat).unwrap();
        assert_eq!(out.checkpoint_rows, 2);
        assert_eq!(out.replayed_records, 1);
        assert!(out.replayed_bytes < stats.appended_bytes + frame.len() as u64);
        let t = cat.table(TableId(0));
        assert_eq!(
            t.read_at(&Value::int(1), out.end_ts)
                .unwrap()
                .row
                .unwrap()
                .int(1),
            11
        );
        assert_eq!(
            t.read_at(&Value::int(2), out.end_ts)
                .unwrap()
                .row
                .unwrap()
                .int(1),
            20
        );
    }

    #[test]
    fn checkpoint_slots_alternate_across_generations() {
        use crate::checkpoint::{CheckpointImage, Manifest};
        use sicost_common::Ts;

        let wal = Wal::new(WalConfig::instant());
        for gen in 0..4u64 {
            let frame = CheckpointImage {
                ts: Ts(gen + 1),
                tables: vec![],
            }
            .encode();
            let slot = wal.write_checkpoint(&frame).unwrap();
            assert_eq!(u64::from(slot), gen % 2, "slots must alternate");
            wal.swap_manifest(&Manifest {
                slot,
                checkpoint_ts: Ts(gen + 1),
                wal_offset: 0,
            })
            .unwrap();
        }
        let image = wal.durable_image();
        let current = Manifest::decode(&image.manifest).unwrap();
        let prev = Manifest::decode(&image.prev_manifest).unwrap();
        assert_eq!(current.checkpoint_ts, Ts(4));
        assert_eq!(prev.checkpoint_ts, Ts(3));
        assert_ne!(current.slot, prev.slot);
    }

    #[test]
    fn crash_during_checkpoint_write_tears_only_the_inactive_slot() {
        use crate::checkpoint::{CheckpointImage, Manifest};
        use sicost_common::Ts;

        // Arm the crash for the *second* checkpoint write: generation 1
        // lands intact in slot 0, generation 2 tears in slot 1.
        let f = Arc::new(FaultInjector::new(FaultConfig::crash(
            sicost_common::CrashPoint::DuringCheckpointWrite,
            2,
        )));
        let wal = Wal::with_faults(WalConfig::instant(), Some(f));
        let g1 = CheckpointImage {
            ts: Ts(1),
            tables: vec![],
        }
        .encode();
        let slot = wal.write_checkpoint(&g1).unwrap();
        wal.swap_manifest(&Manifest {
            slot,
            checkpoint_ts: Ts(1),
            wal_offset: 0,
        })
        .unwrap();
        let g2 = CheckpointImage {
            ts: Ts(2),
            tables: vec![],
        }
        .encode();
        assert_eq!(wal.write_checkpoint(&g2), Err(WalError::Crashed));
        let image = wal.durable_image();
        // Slot 1 is torn; slot 0 and the manifest naming it are intact.
        assert!(CheckpointImage::decode(&image.slots[1]).is_err());
        assert_eq!(CheckpointImage::decode(&image.slots[0]).unwrap().ts, Ts(1));
        assert_eq!(Manifest::decode(&image.manifest).unwrap().slot, 0);
    }

    #[test]
    fn truncate_below_base_is_a_noop() {
        let wal = Wal::new(WalConfig::instant());
        wal.commit(TxnId(1), vec![entry(1, 1)]).unwrap();
        let cut = wal.log_end_offset();
        assert_eq!(wal.truncate_to(cut).unwrap(), cut);
        assert_eq!(wal.truncate_to(cut).unwrap(), 0, "idempotent");
        assert_eq!(wal.truncate_to(cut - 1).unwrap(), 0, "stale cut ignored");
    }

    #[test]
    fn mid_sync_crash_tears_the_tail_record() {
        let f = Arc::new(FaultInjector::new(FaultConfig::crash(
            CrashPoint::DuringWalSync,
            1,
        )));
        // Large commit_delay so both commits land in one batch.
        let cfg = WalConfig {
            sync_latency: Duration::ZERO,
            per_record_cost: Duration::ZERO,
            commit_delay: Duration::from_millis(20),
        };
        let wal = Arc::new(Wal::with_faults(cfg, Some(Arc::clone(&f))));
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || wal.commit(TxnId(i), vec![entry(i as i64, 0)]))
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(results.iter().all(|r| *r == Err(WalError::Crashed)));
        assert!(f.crashed());

        // The first record of the batch is intact, the second is torn.
        let disk = wal.disk_snapshot();
        let (first, used) = LogRecord::decode(&disk).expect("head record intact");
        assert_eq!(wal.log_snapshot(), vec![first]);
        assert!(used < disk.len(), "a torn tail must remain");
        assert!(LogRecord::decode(&disk[used..]).is_err());

        // The WAL is dead: later commits fail fast.
        assert_eq!(
            wal.commit(TxnId(9), vec![entry(9, 9)]),
            Err(WalError::Crashed)
        );
    }
}
