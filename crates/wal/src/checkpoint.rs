//! Checkpoint frames, the swap manifest, and image-level recovery.
//!
//! A checkpoint is a consistent snapshot of every table at a single
//! published commit timestamp `C`, serialized into one FNV-1a-checksummed
//! frame (the same `[len][checksum][payload]` framing as log records, so a
//! torn checkpoint write is detected exactly like a torn log tail). The
//! frame lands in one of two slots; a tiny *manifest* — also framed and
//! checksummed — records which slot is live, the checkpoint timestamp, and
//! the logical WAL byte offset `O` from which replay must resume.
//!
//! Crash ordering is the whole game:
//!
//! 1. write the checkpoint frame into the **inactive** slot — a crash here
//!    tears the new slot but leaves the old slot and manifest intact;
//! 2. atomically swap the manifest (retaining the previous manifest bytes
//!    for fallback) — a crash before the swap recovers from the old
//!    checkpoint, a crash after recovers from the new one, and a torn new
//!    checkpoint can never be referenced because its manifest was never
//!    written;
//! 3. only then truncate the log prefix below `O` — truncation is safe
//!    precisely because the manifest pointing past it is already durable.
//!
//! [`recover_image`] validates manifests current-first with fallback to
//! the previous one, rejecting any candidate whose checkpoint frame is
//! torn, whose slot timestamp disagrees, or whose `O` lies outside the
//! surviving log window.

use crate::record::{
    decode_value, encode_value, fnv1a, get_u32, get_u64, put_u32, put_u64, Cursor, DecodeError,
    FRAME_HEADER,
};
use crate::recovery::{replay, scan_log, RecoveryError, ScanResult};
use sicost_common::{TableId, Ts, TxnId};
use sicost_storage::paged::load_visible_rows;
use sicost_storage::{Catalog, HeapImage, Row, Value, Version};

/// Format version stamped into manifests and full-image checkpoint frames.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Format version of incremental (paged) checkpoint frames: the frame
/// carries only the checkpoint timestamp and flush bookkeeping, because
/// the data itself is the heap's pages — made durable by the dirty-page
/// flush that precedes the frame write.
pub const PAGED_CHECKPOINT_VERSION: u32 = 2;

/// The transaction id stamped on versions installed from a checkpoint
/// frame. Recovery-only; no live transaction can carry it.
pub const CHECKPOINT_TXN: TxnId = TxnId(u64::MAX);

/// The commit timestamp checkpoint rows are installed at during recovery.
/// Replay of the post-checkpoint suffix starts here, so every replayed
/// version lands strictly above the checkpoint image.
pub const CHECKPOINT_BASE_TS: Ts = Ts(1);

/// The durable pointer to the live checkpoint: which slot holds it, the
/// commit timestamp it captures, and the logical WAL offset from which
/// redo must resume. Swapped atomically *after* the checkpoint frame is
/// durable and *before* the log prefix is truncated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// Which of the two checkpoint slots holds the frame (0 or 1).
    pub slot: u8,
    /// The published commit timestamp the checkpoint captures: every
    /// commit with ts ≤ this is inside the frame.
    pub checkpoint_ts: Ts,
    /// Logical WAL byte offset to resume replay from. Every record that
    /// begins below this offset is covered by the checkpoint.
    pub wal_offset: u64,
}

impl Manifest {
    /// Framed, checksummed encoding (what gets swapped into the durable
    /// manifest area).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(21);
        put_u32(&mut payload, CHECKPOINT_VERSION);
        payload.push(self.slot);
        put_u64(&mut payload, self.checkpoint_ts.0);
        put_u64(&mut payload, self.wal_offset);
        let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
        put_u32(&mut out, payload.len() as u32);
        put_u64(&mut out, fnv1a(&payload));
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes a manifest, verifying frame checksum, version, slot range,
    /// and that no trailing bytes follow (the manifest area is swapped
    /// whole).
    pub fn decode(bytes: &[u8]) -> Result<Manifest, DecodeError> {
        let (payload, used) = checked_frame(bytes)?;
        if used != bytes.len() {
            return Err(DecodeError::Malformed("trailing bytes after manifest"));
        }
        let mut cur = Cursor {
            buf: payload,
            pos: 0,
        };
        if cur.u32()? != CHECKPOINT_VERSION {
            return Err(DecodeError::Malformed("unknown manifest version"));
        }
        let slot = cur.u8()?;
        if slot > 1 {
            return Err(DecodeError::Malformed("manifest slot out of range"));
        }
        let checkpoint_ts = Ts(cur.u64()?);
        let wal_offset = cur.u64()?;
        if cur.pos != payload.len() {
            return Err(DecodeError::Malformed("trailing bytes in manifest payload"));
        }
        Ok(Manifest {
            slot,
            checkpoint_ts,
            wal_offset,
        })
    }
}

/// The decoded contents of one checkpoint frame: a consistent snapshot of
/// every table at [`CheckpointImage::ts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointImage {
    /// The commit timestamp the snapshot was taken at.
    pub ts: Ts,
    /// Per-table live rows `(primary key, row)`, sorted by key.
    pub tables: Vec<(TableId, Vec<(Value, Row)>)>,
}

impl CheckpointImage {
    /// Framed, checksummed encoding (what gets written into a slot).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        put_u32(&mut payload, CHECKPOINT_VERSION);
        put_u64(&mut payload, self.ts.0);
        put_u32(&mut payload, self.tables.len() as u32);
        for (table, rows) in &self.tables {
            put_u32(&mut payload, table.0);
            put_u32(&mut payload, rows.len() as u32);
            for (key, row) in rows {
                encode_value(&mut payload, key);
                put_u32(&mut payload, row.arity() as u32);
                for cell in row.cells() {
                    encode_value(&mut payload, cell);
                }
            }
        }
        let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
        put_u32(&mut out, payload.len() as u32);
        put_u64(&mut out, fnv1a(&payload));
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes a checkpoint frame, verifying its checksum. A torn slot
    /// (crash mid-write) fails here, which makes recovery skip the
    /// manifest candidate referencing it.
    pub fn decode(bytes: &[u8]) -> Result<CheckpointImage, DecodeError> {
        let (payload, used) = checked_frame(bytes)?;
        if used != bytes.len() {
            return Err(DecodeError::Malformed("trailing bytes after checkpoint"));
        }
        let mut cur = Cursor {
            buf: payload,
            pos: 0,
        };
        if cur.u32()? != CHECKPOINT_VERSION {
            return Err(DecodeError::Malformed("unknown checkpoint version"));
        }
        let ts = Ts(cur.u64()?);
        let ntables = cur.u32()? as usize;
        if ntables > payload.len() {
            return Err(DecodeError::Malformed("table count exceeds payload"));
        }
        let mut tables = Vec::with_capacity(ntables);
        for _ in 0..ntables {
            let table = TableId(cur.u32()?);
            let nrows = cur.u32()? as usize;
            if nrows > payload.len() {
                return Err(DecodeError::Malformed("row count exceeds payload"));
            }
            let mut rows = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                let key = decode_value(&mut cur)?;
                let arity = cur.u32()? as usize;
                if arity > payload.len() {
                    return Err(DecodeError::Malformed("row arity exceeds payload"));
                }
                let mut cells = Vec::with_capacity(arity);
                for _ in 0..arity {
                    cells.push(decode_value(&mut cur)?);
                }
                rows.push((key, Row::new(cells)));
            }
            tables.push((table, rows));
        }
        if cur.pos != payload.len() {
            return Err(DecodeError::Malformed("trailing bytes in checkpoint"));
        }
        Ok(CheckpointImage { ts, tables })
    }
}

/// An incremental checkpoint frame: written after every dirty pooled page
/// has been flushed to the heap, it promises "the heap's pages, read at
/// `ts`, are the checkpoint image". Orders of magnitude smaller than a
/// [`CheckpointImage`] — the A8 harness compares exactly this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagedCheckpoint {
    /// The commit timestamp the checkpoint captures.
    pub ts: Ts,
    /// Dirty pages flushed by the checkpoint that wrote this frame.
    pub pages_flushed: u64,
    /// Framed page bytes those flushes wrote.
    pub flushed_bytes: u64,
}

impl PagedCheckpoint {
    /// Framed, checksummed encoding (what gets written into a slot).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(28);
        put_u32(&mut payload, PAGED_CHECKPOINT_VERSION);
        put_u64(&mut payload, self.ts.0);
        put_u64(&mut payload, self.pages_flushed);
        put_u64(&mut payload, self.flushed_bytes);
        let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
        put_u32(&mut out, payload.len() as u32);
        put_u64(&mut out, fnv1a(&payload));
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes a paged checkpoint frame, verifying its checksum.
    pub fn decode(bytes: &[u8]) -> Result<PagedCheckpoint, DecodeError> {
        let (payload, used) = checked_frame(bytes)?;
        if used != bytes.len() {
            return Err(DecodeError::Malformed("trailing bytes after checkpoint"));
        }
        let mut cur = Cursor {
            buf: payload,
            pos: 0,
        };
        if cur.u32()? != PAGED_CHECKPOINT_VERSION {
            return Err(DecodeError::Malformed("unknown checkpoint version"));
        }
        let ts = Ts(cur.u64()?);
        let pages_flushed = cur.u64()?;
        let flushed_bytes = cur.u64()?;
        if cur.pos != payload.len() {
            return Err(DecodeError::Malformed(
                "trailing bytes in checkpoint payload",
            ));
        }
        Ok(PagedCheckpoint {
            ts,
            pages_flushed,
            flushed_bytes,
        })
    }
}

/// A decoded checkpoint slot: either backend's frame, dispatched on the
/// version word at the head of the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointFrame {
    /// A version-1 full-image frame (resident backend).
    Full(CheckpointImage),
    /// A version-2 incremental frame (paged backend).
    Paged(PagedCheckpoint),
}

impl CheckpointFrame {
    /// Decodes either frame kind, verifying the checksum first so a torn
    /// slot is rejected before the version word is trusted.
    pub fn decode(bytes: &[u8]) -> Result<CheckpointFrame, DecodeError> {
        let (payload, _) = checked_frame(bytes)?;
        if payload.len() < 4 {
            return Err(DecodeError::Malformed("checkpoint payload too short"));
        }
        match get_u32(&payload[0..4]) {
            CHECKPOINT_VERSION => Ok(CheckpointFrame::Full(CheckpointImage::decode(bytes)?)),
            PAGED_CHECKPOINT_VERSION => Ok(CheckpointFrame::Paged(PagedCheckpoint::decode(bytes)?)),
            _ => Err(DecodeError::Malformed("unknown checkpoint version")),
        }
    }

    /// The checkpoint timestamp, whichever the frame kind.
    pub fn ts(&self) -> Ts {
        match self {
            CheckpointFrame::Full(f) => f.ts,
            CheckpointFrame::Paged(p) => p.ts,
        }
    }
}

/// Verifies the `[len][checksum][payload]` frame at the front of `bytes`;
/// returns the payload slice and total bytes consumed.
fn checked_frame(bytes: &[u8]) -> Result<(&[u8], usize), DecodeError> {
    if bytes.len() < FRAME_HEADER {
        return Err(DecodeError::TruncatedHeader);
    }
    let len = get_u32(&bytes[0..4]) as usize;
    let checksum = get_u64(&bytes[4..12]);
    let total = FRAME_HEADER + len;
    if bytes.len() < total {
        return Err(DecodeError::TruncatedPayload);
    }
    let payload = &bytes[FRAME_HEADER..total];
    if fnv1a(payload) != checksum {
        return Err(DecodeError::ChecksumMismatch);
    }
    Ok((payload, total))
}

/// Everything the "disk" holds after a crash: the two checkpoint slots,
/// the current and previous manifest bytes, and the surviving log window
/// (`wal` starts at logical byte offset `wal_base`; everything below
/// `wal_base` has been truncated away).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DurableImage {
    /// Current manifest bytes (empty before the first checkpoint).
    pub manifest: Vec<u8>,
    /// Previous manifest bytes, retained across the swap so a torn
    /// current checkpoint can fall back one generation.
    pub prev_manifest: Vec<u8>,
    /// The two checkpoint slots. Writes alternate; the manifest names the
    /// live one.
    pub slots: [Vec<u8>; 2],
    /// Logical byte offset of the first byte in `wal`.
    pub wal_base: u64,
    /// The surviving log bytes.
    pub wal: Vec<u8>,
    /// The paged heap's durable page bytes (empty on the resident
    /// backend). An incremental checkpoint frame points into this instead
    /// of carrying rows itself.
    pub heap: HeapImage,
}

/// What [`recover_image`] reconstructed and how much work it took.
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    /// The last commit timestamp after recovery; the restarted engine's
    /// clock must resume at or above this.
    pub end_ts: Ts,
    /// The manifest the recovery started from, when a usable checkpoint
    /// existed.
    pub checkpoint: Option<Manifest>,
    /// Log records replayed (post-checkpoint suffix only, when a
    /// checkpoint was used).
    pub replayed_records: usize,
    /// Log bytes actually replayed. With a checkpoint this is the suffix
    /// length — strictly less than the full history once anything has
    /// been truncated.
    pub replayed_bytes: u64,
    /// Rows installed from the checkpoint frame.
    pub checkpoint_rows: usize,
    /// The raw scan result for the replayed window (torn-tail reporting).
    pub scan: ScanResult,
}

/// Recovers catalog state from a durable image: pick the newest usable
/// manifest (current first, falling back to the previous one when the
/// current generation is torn, mismatched, or out of window), install its
/// checkpoint rows at [`CHECKPOINT_BASE_TS`], then replay only the log
/// suffix from the manifest's `wal_offset`. With no usable manifest the
/// whole log is replayed — which is only possible while nothing has been
/// truncated ([`RecoveryError::MissingPrefix`] otherwise).
pub fn recover_image(
    image: &DurableImage,
    catalog: &Catalog,
) -> Result<RecoveryOutcome, RecoveryError> {
    let wal_end = image.wal_base + image.wal.len() as u64;
    for manifest_bytes in [&image.manifest, &image.prev_manifest] {
        let Ok(manifest) = Manifest::decode(manifest_bytes) else {
            continue;
        };
        if manifest.wal_offset < image.wal_base || manifest.wal_offset > wal_end {
            // Points outside the surviving window (past EOF, or below the
            // truncation horizon): unusable.
            continue;
        }
        let Ok(frame) = CheckpointFrame::decode(&image.slots[manifest.slot as usize]) else {
            continue; // torn or overwritten slot
        };
        if frame.ts() != manifest.checkpoint_ts {
            continue; // slot belongs to a different checkpoint generation
        }
        let checkpoint_tables = match frame {
            CheckpointFrame::Full(ckpt) => ckpt.tables,
            CheckpointFrame::Paged(_) => {
                // The rows live in the heap's pages: pick each page's best
                // checksum-valid slot and extract what was visible at the
                // checkpoint timestamp. A page damaged beyond what one
                // torn write explains disqualifies this manifest exactly
                // like a torn full-image slot would.
                match load_visible_rows(&image.heap, manifest.checkpoint_ts) {
                    Ok(tables) => tables,
                    Err(_) => continue,
                }
            }
        };
        let mut checkpoint_rows = 0;
        for (table_id, rows) in &checkpoint_tables {
            if (table_id.0 as usize) >= catalog.len() {
                return Err(RecoveryError::UnknownTable(table_id.to_string()));
            }
            let table = catalog.table(*table_id);
            for (key, row) in rows {
                table
                    .install(
                        key,
                        Version::data(CHECKPOINT_BASE_TS, CHECKPOINT_TXN, row.clone()),
                    )
                    .map_err(|e| RecoveryError::Install(e.to_string()))?;
                checkpoint_rows += 1;
            }
        }
        let suffix = &image.wal[(manifest.wal_offset - image.wal_base) as usize..];
        let scan = scan_log(suffix);
        let end_ts = replay(&scan.records, catalog, CHECKPOINT_BASE_TS)?;
        let replayed_bytes = match scan.truncated {
            Some(t) => t.offset as u64,
            None => suffix.len() as u64,
        };
        return Ok(RecoveryOutcome {
            end_ts,
            checkpoint: Some(manifest),
            replayed_records: scan.records.len(),
            replayed_bytes,
            checkpoint_rows,
            scan,
        });
    }
    if image.wal_base != 0 {
        return Err(RecoveryError::MissingPrefix(image.wal_base));
    }
    let scan = scan_log(&image.wal);
    let end_ts = replay(&scan.records, catalog, Ts::ZERO)?;
    let replayed_bytes = match scan.truncated {
        Some(t) => t.offset as u64,
        None => image.wal.len() as u64,
    };
    Ok(RecoveryOutcome {
        end_ts,
        checkpoint: None,
        replayed_records: scan.records.len(),
        replayed_bytes,
        checkpoint_rows: 0,
        scan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{LogEntry, LogRecord, Lsn};
    use sicost_storage::{ColumnDef, ColumnType, TableSchema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            TableSchema::new(
                "T",
                vec![
                    ColumnDef::new("id", ColumnType::Int),
                    ColumnDef::new("v", ColumnType::Int),
                ],
                0,
                vec![],
            )
            .unwrap(),
        )
        .unwrap();
        c
    }

    fn row(key: i64, v: i64) -> (Value, Row) {
        (
            Value::int(key),
            Row::new(vec![Value::int(key), Value::int(v)]),
        )
    }

    fn rec(lsn: u64, key: i64, v: i64) -> LogRecord {
        LogRecord {
            lsn: Lsn(lsn),
            txn: TxnId(lsn + 100),
            entries: vec![LogEntry {
                table: TableId(0),
                key: Value::int(key),
                image: Some(Row::new(vec![Value::int(key), Value::int(v)])),
            }],
        }
    }

    fn ckpt(ts: u64, rows: Vec<(Value, Row)>) -> CheckpointImage {
        CheckpointImage {
            ts: Ts(ts),
            tables: vec![(TableId(0), rows)],
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = Manifest {
            slot: 1,
            checkpoint_ts: Ts(42),
            wal_offset: 12345,
        };
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn manifest_rejects_corruption_and_truncation() {
        let m = Manifest {
            slot: 0,
            checkpoint_ts: Ts(7),
            wal_offset: 99,
        };
        let clean = m.encode();
        for cut in 0..clean.len() {
            assert!(Manifest::decode(&clean[..cut]).is_err(), "prefix {cut}");
        }
        for byte in FRAME_HEADER..clean.len() {
            let mut dirty = clean.clone();
            dirty[byte] ^= 0x40;
            assert!(Manifest::decode(&dirty).is_err(), "flip at {byte}");
        }
    }

    #[test]
    fn checkpoint_image_round_trips() {
        let img = CheckpointImage {
            ts: Ts(9),
            tables: vec![
                (TableId(0), vec![row(1, 10), row(2, 20)]),
                (
                    TableId(3),
                    vec![(
                        Value::str("k"),
                        Row::new(vec![Value::Null, Value::str("x")]),
                    )],
                ),
                (TableId(7), vec![]),
            ],
        };
        assert_eq!(CheckpointImage::decode(&img.encode()).unwrap(), img);
    }

    #[test]
    fn torn_checkpoint_frame_is_rejected_at_every_cut() {
        let bytes = ckpt(5, vec![row(1, 10), row(2, 20)]).encode();
        for cut in 0..bytes.len() {
            assert!(CheckpointImage::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    /// A fresh database: no manifest, no slots, empty log. Recovery is a
    /// no-op rather than an error.
    #[test]
    fn empty_image_recovers_to_nothing() {
        let cat = catalog();
        let out = recover_image(&DurableImage::default(), &cat).unwrap();
        assert_eq!(out.end_ts, Ts::ZERO);
        assert!(out.checkpoint.is_none());
        assert_eq!(out.replayed_records, 0);
        assert_eq!(out.replayed_bytes, 0);
        assert_eq!(out.checkpoint_rows, 0);
    }

    /// No checkpoint yet: the full log replays, exactly like the pre-
    /// checkpoint recovery path.
    #[test]
    fn no_manifest_full_log_replays_from_zero() {
        let cat = catalog();
        let mut wal = Vec::new();
        rec(0, 1, 10).encode_into(&mut wal);
        rec(1, 2, 20).encode_into(&mut wal);
        let image = DurableImage {
            wal: wal.clone(),
            ..DurableImage::default()
        };
        let out = recover_image(&image, &cat).unwrap();
        assert_eq!(out.end_ts, Ts(2));
        assert_eq!(out.replayed_records, 2);
        assert_eq!(out.replayed_bytes, wal.len() as u64);
        let t = cat.table(TableId(0));
        assert_eq!(
            t.read_at(&Value::int(2), Ts(2))
                .unwrap()
                .row
                .unwrap()
                .int(1),
            20
        );
    }

    /// Checkpoint-manifest-only start: the manifest points at the end of
    /// the (empty) surviving log, so the suffix is zero-length and the
    /// checkpoint alone reconstructs the state.
    #[test]
    fn manifest_only_zero_length_suffix() {
        let cat = catalog();
        let img = ckpt(12, vec![row(1, 11), row(2, 22)]);
        let manifest = Manifest {
            slot: 0,
            checkpoint_ts: Ts(12),
            wal_offset: 4096,
        };
        let image = DurableImage {
            manifest: manifest.encode(),
            slots: [img.encode(), Vec::new()],
            wal_base: 4096,
            wal: Vec::new(),
            ..DurableImage::default()
        };
        let out = recover_image(&image, &cat).unwrap();
        assert_eq!(out.checkpoint, Some(manifest));
        assert_eq!(out.replayed_records, 0);
        assert_eq!(out.replayed_bytes, 0);
        assert_eq!(out.checkpoint_rows, 2);
        assert_eq!(out.end_ts, CHECKPOINT_BASE_TS);
        let t = cat.table(TableId(0));
        assert_eq!(
            t.read_at(&Value::int(1), out.end_ts)
                .unwrap()
                .row
                .unwrap()
                .int(1),
            11
        );
    }

    /// Checkpoint plus suffix: the suffix overwrites checkpointed keys and
    /// adds new ones; only the suffix bytes are replayed.
    #[test]
    fn checkpoint_plus_suffix_replays_only_the_suffix() {
        let cat = catalog();
        let img = ckpt(30, vec![row(1, 10), row(2, 20)]);
        let mut suffix = Vec::new();
        rec(5, 1, 111).encode_into(&mut suffix);
        rec(6, 3, 333).encode_into(&mut suffix);
        let image = DurableImage {
            manifest: Manifest {
                slot: 1,
                checkpoint_ts: Ts(30),
                wal_offset: 1000,
            }
            .encode(),
            slots: [Vec::new(), img.encode()],
            wal_base: 1000,
            wal: suffix.clone(),
            ..DurableImage::default()
        };
        let out = recover_image(&image, &cat).unwrap();
        assert_eq!(out.replayed_records, 2);
        assert_eq!(out.replayed_bytes, suffix.len() as u64);
        let t = cat.table(TableId(0));
        let end = out.end_ts;
        assert_eq!(
            t.read_at(&Value::int(1), end).unwrap().row.unwrap().int(1),
            111
        );
        assert_eq!(
            t.read_at(&Value::int(2), end).unwrap().row.unwrap().int(1),
            20
        );
        assert_eq!(
            t.read_at(&Value::int(3), end).unwrap().row.unwrap().int(1),
            333
        );
    }

    /// Torn checkpoint frame: the current manifest names a slot whose
    /// frame was half-written; recovery must fall back to the previous
    /// manifest and its intact slot.
    #[test]
    fn torn_checkpoint_falls_back_to_previous_manifest() {
        let cat = catalog();
        let old = ckpt(10, vec![row(1, 1)]);
        let new_frame = ckpt(20, vec![row(1, 2)]).encode();
        let torn: Vec<u8> = new_frame[..new_frame.len() / 2].to_vec();
        let prev = Manifest {
            slot: 0,
            checkpoint_ts: Ts(10),
            wal_offset: 500,
        };
        let mut suffix = Vec::new();
        rec(9, 4, 44).encode_into(&mut suffix);
        let image = DurableImage {
            manifest: Manifest {
                slot: 1,
                checkpoint_ts: Ts(20),
                wal_offset: 800,
            }
            .encode(),
            prev_manifest: prev.encode(),
            slots: [old.encode(), torn],
            wal_base: 500,
            wal: suffix,
            ..DurableImage::default()
        };
        let out = recover_image(&image, &cat).unwrap();
        assert_eq!(out.checkpoint, Some(prev), "must use the previous manifest");
        assert_eq!(out.checkpoint_rows, 1);
        assert_eq!(out.replayed_records, 1);
        let t = cat.table(TableId(0));
        assert_eq!(
            t.read_at(&Value::int(1), out.end_ts)
                .unwrap()
                .row
                .unwrap()
                .int(1),
            1
        );
        assert_eq!(
            t.read_at(&Value::int(4), out.end_ts)
                .unwrap()
                .row
                .unwrap()
                .int(1),
            44
        );
    }

    /// A slot whose timestamp disagrees with the manifest (stale or
    /// overwritten generation) is as unusable as a torn one.
    #[test]
    fn slot_ts_mismatch_falls_back() {
        let cat = catalog();
        let prev = Manifest {
            slot: 1,
            checkpoint_ts: Ts(5),
            wal_offset: 0,
        };
        let image = DurableImage {
            manifest: Manifest {
                slot: 0,
                checkpoint_ts: Ts(99),
                wal_offset: 0,
            }
            .encode(),
            prev_manifest: prev.encode(),
            slots: [
                ckpt(5, vec![row(1, 1)]).encode(),
                ckpt(5, vec![row(2, 2)]).encode(),
            ],
            wal_base: 0,
            wal: Vec::new(),
            ..DurableImage::default()
        };
        let out = recover_image(&image, &cat).unwrap();
        assert_eq!(out.checkpoint, Some(prev));
        let t = cat.table(TableId(0));
        assert!(t.read_at(&Value::int(2), out.end_ts).is_some());
        assert!(t.read_at(&Value::int(1), out.end_ts).is_none());
    }

    /// Manifest pointing past EOF (e.g. the log bytes were lost but the
    /// manifest survived): the candidate is rejected; with no fallback and
    /// an untruncated log, the full log replays.
    #[test]
    fn manifest_past_eof_is_rejected() {
        let cat = catalog();
        let mut wal = Vec::new();
        rec(0, 1, 10).encode_into(&mut wal);
        let image = DurableImage {
            manifest: Manifest {
                slot: 0,
                checkpoint_ts: Ts(50),
                wal_offset: 1_000_000,
            }
            .encode(),
            slots: [ckpt(50, vec![row(9, 9)]).encode(), Vec::new()],
            wal_base: 0,
            wal: wal.clone(),
            ..DurableImage::default()
        };
        let out = recover_image(&image, &cat).unwrap();
        assert!(
            out.checkpoint.is_none(),
            "past-EOF manifest must be skipped"
        );
        assert_eq!(out.replayed_records, 1);
        let t = cat.table(TableId(0));
        assert!(t.read_at(&Value::int(9), out.end_ts).is_none());
    }

    /// Manifest below the truncation horizon with no usable fallback: the
    /// prefix it needs is gone, and recovery must say so rather than
    /// silently replay a partial history.
    #[test]
    fn truncated_prefix_without_checkpoint_is_an_error() {
        let cat = catalog();
        let image = DurableImage {
            manifest: Manifest {
                slot: 0,
                checkpoint_ts: Ts(5),
                wal_offset: 10,
            }
            .encode(),
            slots: [Vec::new(), Vec::new()], // slot torn away entirely
            wal_base: 600,
            wal: Vec::new(),
            ..DurableImage::default()
        };
        match recover_image(&image, &cat) {
            Err(RecoveryError::MissingPrefix(base)) => assert_eq!(base, 600),
            other => panic!("expected MissingPrefix, got {other:?}"),
        }
    }

    /// A torn suffix tail past the checkpoint truncates exactly like the
    /// plain recovery path.
    #[test]
    fn torn_suffix_tail_truncates() {
        let cat = catalog();
        let img = ckpt(3, vec![row(1, 1)]);
        let mut suffix = Vec::new();
        rec(4, 2, 22).encode_into(&mut suffix);
        let good_len = suffix.len();
        let torn = rec(5, 3, 33).encode();
        suffix.extend_from_slice(&torn[..torn.len() - 2]);
        let image = DurableImage {
            manifest: Manifest {
                slot: 0,
                checkpoint_ts: Ts(3),
                wal_offset: 0,
            }
            .encode(),
            slots: [img.encode(), Vec::new()],
            wal_base: 0,
            wal: suffix,
            ..DurableImage::default()
        };
        let out = recover_image(&image, &cat).unwrap();
        assert_eq!(out.replayed_records, 1);
        assert_eq!(out.replayed_bytes, good_len as u64);
        assert!(out.scan.truncated.is_some());
        let t = cat.table(TableId(0));
        assert!(
            t.read_at(&Value::int(3), out.end_ts).is_none(),
            "torn txn gone"
        );
    }

    /// Builds a durable heap holding the given rows (as single-version
    /// chains at the given timestamps) in one table.
    fn heap_with(rows: &[(i64, i64, u64)]) -> HeapImage {
        use sicost_storage::paged::HeapStore;
        let heap = HeapStore::new(std::time::Duration::ZERO, std::time::Duration::ZERO, None);
        let mut cells = sicost_storage::paged::PageCells::new();
        for &(key, v, ts) in rows {
            let mut chain = sicost_storage::VersionChain::new();
            chain.install(Version::data(
                Ts(ts),
                TxnId(ts),
                Row::new(vec![Value::int(key), Value::int(v)]),
            ));
            cells.insert(Value::int(key), chain);
        }
        heap.write_page((0, 0), &cells).unwrap();
        heap.snapshot()
    }

    #[test]
    fn paged_checkpoint_frame_round_trips_and_dispatches() {
        let p = PagedCheckpoint {
            ts: Ts(17),
            pages_flushed: 4,
            flushed_bytes: 1234,
        };
        let bytes = p.encode();
        assert_eq!(PagedCheckpoint::decode(&bytes).unwrap(), p);
        assert_eq!(
            CheckpointFrame::decode(&bytes).unwrap(),
            CheckpointFrame::Paged(p)
        );
        let full = ckpt(9, vec![row(1, 10)]);
        assert_eq!(
            CheckpointFrame::decode(&full.encode()).unwrap(),
            CheckpointFrame::Full(full)
        );
        // A full-image frame is dramatically larger than the paged frame
        // for the same state — the incremental-checkpoint payoff.
        assert!(bytes.len() < ckpt(17, vec![row(1, 10), row(2, 20)]).encode().len());
        for cut in 0..bytes.len() {
            assert!(CheckpointFrame::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    /// A paged checkpoint: the slot holds only the tiny v2 frame, the rows
    /// come out of the heap image at the checkpoint timestamp, and the
    /// suffix replays on top.
    #[test]
    fn paged_checkpoint_recovers_rows_from_heap_plus_suffix() {
        let cat = catalog();
        let frame = PagedCheckpoint {
            ts: Ts(30),
            pages_flushed: 1,
            flushed_bytes: 100,
        };
        let mut suffix = Vec::new();
        rec(5, 1, 111).encode_into(&mut suffix);
        rec(6, 3, 333).encode_into(&mut suffix);
        let image = DurableImage {
            manifest: Manifest {
                slot: 0,
                checkpoint_ts: Ts(30),
                wal_offset: 1000,
            }
            .encode(),
            slots: [frame.encode(), Vec::new()],
            wal_base: 1000,
            wal: suffix,
            // Key 2's version is within the checkpoint; key 9's postdates
            // it (an eviction write-back after the barrier) and must NOT
            // surface from the heap — its commit record is in the suffix
            // window by the barrier invariant (here, absent: it aborted).
            heap: heap_with(&[(1, 10, 3), (2, 20, 7), (9, 99, 31)]),
            ..DurableImage::default()
        };
        let out = recover_image(&image, &cat).unwrap();
        assert_eq!(out.checkpoint_rows, 2);
        assert_eq!(out.replayed_records, 2);
        let t = cat.table(TableId(0));
        let end = out.end_ts;
        assert_eq!(
            t.read_at(&Value::int(1), end).unwrap().row.unwrap().int(1),
            111,
            "suffix overwrites the checkpointed image"
        );
        assert_eq!(
            t.read_at(&Value::int(2), end).unwrap().row.unwrap().int(1),
            20
        );
        assert_eq!(
            t.read_at(&Value::int(3), end).unwrap().row.unwrap().int(1),
            333
        );
        assert!(
            t.read_at(&Value::int(9), end).is_none(),
            "post-checkpoint heap version must not resurface"
        );
    }

    /// A torn paged-checkpoint slot falls back to the previous (full)
    /// generation, mixing frame kinds across generations.
    #[test]
    fn torn_paged_frame_falls_back_to_full_image_generation() {
        let cat = catalog();
        let new_frame = PagedCheckpoint {
            ts: Ts(20),
            pages_flushed: 1,
            flushed_bytes: 50,
        }
        .encode();
        let torn = new_frame[..new_frame.len() - 3].to_vec();
        let prev = Manifest {
            slot: 0,
            checkpoint_ts: Ts(10),
            wal_offset: 500,
        };
        let image = DurableImage {
            manifest: Manifest {
                slot: 1,
                checkpoint_ts: Ts(20),
                wal_offset: 800,
            }
            .encode(),
            prev_manifest: prev.encode(),
            slots: [ckpt(10, vec![row(7, 70)]).encode(), torn],
            wal_base: 500,
            wal: Vec::new(),
            ..DurableImage::default()
        };
        let out = recover_image(&image, &cat).unwrap();
        assert_eq!(out.checkpoint, Some(prev));
        let t = cat.table(TableId(0));
        assert_eq!(
            t.read_at(&Value::int(7), out.end_ts)
                .unwrap()
                .row
                .unwrap()
                .int(1),
            70
        );
    }

    /// A paged manifest whose heap has an unreadable page (both slots
    /// damaged) is rejected like a torn full-image slot.
    #[test]
    fn unreadable_heap_page_disqualifies_the_manifest() {
        let cat = catalog();
        let mut heap = heap_with(&[(1, 10, 3)]);
        // Corrupt both slots of the page beyond single-torn-write damage.
        let slots = heap.pages.get_mut(&(0, 0)).unwrap();
        slots[0] = vec![0xde, 0xad];
        slots[1] = vec![0xbe, 0xef];
        let frame = PagedCheckpoint {
            ts: Ts(5),
            pages_flushed: 1,
            flushed_bytes: 10,
        };
        let mut wal = Vec::new();
        rec(0, 4, 44).encode_into(&mut wal);
        let image = DurableImage {
            manifest: Manifest {
                slot: 0,
                checkpoint_ts: Ts(5),
                wal_offset: 0,
            }
            .encode(),
            slots: [frame.encode(), Vec::new()],
            wal_base: 0,
            wal: wal.clone(),
            heap,
            ..DurableImage::default()
        };
        let out = recover_image(&image, &cat).unwrap();
        assert!(
            out.checkpoint.is_none(),
            "damaged heap page must disqualify"
        );
        assert_eq!(out.replayed_records, 1, "falls through to full-log replay");
    }
}
