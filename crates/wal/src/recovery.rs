//! Log replay: rebuild table state from the redo log.
//!
//! Because the engine only logs *validated* transactions (validation and
//! lock acquisition happen before the WAL write, and installation after),
//! replaying every record in LSN order reconstructs exactly the committed
//! state. Replay assigns fresh, densely increasing commit timestamps — one
//! per record — which preserves per-key version order because the engine
//! holds each row's write lock from the WAL write through installation.
//!
//! Crash recovery is a two-step pipeline: [`scan_log`] decodes the durable
//! byte image, verifying each record's checksum and truncating at the
//! first torn or corrupt frame; [`replay`] then installs the surviving
//! records. [`recover`] composes the two.

use crate::record::{DecodeError, LogRecord};
use sicost_common::Ts;
use sicost_storage::{Catalog, Version};
use std::fmt;

/// Errors during replay.
#[derive(Debug)]
pub enum RecoveryError {
    /// A record referenced a table missing from the catalog.
    UnknownTable(String),
    /// Installation failed (schema or uniqueness violation ⇒ corrupt log).
    Install(String),
    /// The log prefix below this logical byte offset was truncated away
    /// and no usable checkpoint covers it: the history cannot be
    /// reconstructed. Only reachable if the durable manifest area was
    /// destroyed *after* truncation — the protocol never truncates before
    /// the manifest swap is durable.
    MissingPrefix(u64),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::UnknownTable(t) => write!(f, "log references unknown table {t}"),
            RecoveryError::Install(e) => write!(f, "log replay failed to install: {e}"),
            RecoveryError::MissingPrefix(base) => write!(
                f,
                "log prefix below byte {base} was truncated and no usable checkpoint covers it"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Where and why [`scan_log`] stopped before the end of the byte image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Truncation {
    /// Byte offset of the first unreadable frame; everything at and past
    /// this offset is discarded.
    pub offset: usize,
    /// What failed there.
    pub cause: DecodeError,
}

/// The result of scanning a durable log image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanResult {
    /// Records that decoded with valid checksums, in log order.
    pub records: Vec<LogRecord>,
    /// `Some` when the scan stopped early at a torn or corrupt frame.
    pub truncated: Option<Truncation>,
}

/// Decodes a durable log image into records, stopping at the first frame
/// that is torn (truncated) or fails its checksum. Such a tail is the
/// expected remnant of a crash mid-sync; everything before it was written
/// atomically and is safe to replay.
pub fn scan_log(bytes: &[u8]) -> ScanResult {
    let mut records = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        match LogRecord::decode(&bytes[pos..]) {
            Ok((rec, used)) => {
                records.push(rec);
                pos += used;
            }
            Err(cause) => {
                return ScanResult {
                    records,
                    truncated: Some(Truncation { offset: pos, cause }),
                };
            }
        }
    }
    ScanResult {
        records,
        truncated: None,
    }
}

/// Full crash recovery: scan the durable byte image (truncating any torn
/// tail) and replay the surviving records into `catalog` starting at
/// timestamp `base`. Returns the final timestamp and what the scan found.
pub fn recover(
    bytes: &[u8],
    catalog: &Catalog,
    base: Ts,
) -> Result<(Ts, ScanResult), RecoveryError> {
    let scan = scan_log(bytes);
    let end = replay(&scan.records, catalog, base)?;
    Ok((end, scan))
}

/// Replays `records` (already in LSN order) into `catalog`, starting at
/// timestamp `base`. Returns the final timestamp after replay.
pub fn replay(records: &[LogRecord], catalog: &Catalog, base: Ts) -> Result<Ts, RecoveryError> {
    let mut ts = base;
    for rec in records {
        ts = ts.next();
        for entry in &rec.entries {
            if (entry.table.0 as usize) >= catalog.len() {
                return Err(RecoveryError::UnknownTable(entry.table.to_string()));
            }
            let table = catalog.table(entry.table);
            let version = match &entry.image {
                Some(row) => Version::data(ts, rec.txn, row.clone()),
                None => Version::tombstone(ts, rec.txn),
            };
            table
                .install(&entry.key, version)
                .map_err(|e| RecoveryError::Install(e.to_string()))?;
        }
    }
    Ok(ts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{LogEntry, Lsn};
    use sicost_common::{TableId, TxnId};
    use sicost_storage::{ColumnDef, ColumnType, Row, TableSchema, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            TableSchema::new(
                "T",
                vec![
                    ColumnDef::new("id", ColumnType::Int),
                    ColumnDef::new("v", ColumnType::Int),
                ],
                0,
                vec![],
            )
            .unwrap(),
        )
        .unwrap();
        c
    }

    fn rec(lsn: u64, txn: u64, key: i64, img: Option<i64>) -> LogRecord {
        LogRecord {
            lsn: Lsn(lsn),
            txn: TxnId(txn),
            entries: vec![LogEntry {
                table: TableId(0),
                key: Value::int(key),
                image: img.map(|v| Row::new(vec![Value::int(key), Value::int(v)])),
            }],
        }
    }

    #[test]
    fn replay_rebuilds_updates_and_deletes() {
        let c = catalog();
        let log = vec![
            rec(0, 1, 1, Some(10)),
            rec(1, 2, 2, Some(20)),
            rec(2, 3, 1, Some(11)),
            rec(3, 4, 2, None),
        ];
        let end = replay(&log, &c, Ts::ZERO).unwrap();
        assert_eq!(end, Ts(4));
        let t = c.table(TableId(0));
        assert_eq!(
            t.read_at(&Value::int(1), end).unwrap().row.unwrap().int(1),
            11
        );
        assert!(t.read_at(&Value::int(2), end).unwrap().row.is_none());
        // Intermediate snapshots are honoured too.
        assert_eq!(
            t.read_at(&Value::int(1), Ts(1))
                .unwrap()
                .row
                .unwrap()
                .int(1),
            10
        );
    }

    #[test]
    fn multi_entry_record_is_atomic() {
        let c = catalog();
        let log = vec![LogRecord {
            lsn: Lsn(0),
            txn: TxnId(1),
            entries: vec![
                LogEntry {
                    table: TableId(0),
                    key: Value::int(1),
                    image: Some(Row::new(vec![Value::int(1), Value::int(5)])),
                },
                LogEntry {
                    table: TableId(0),
                    key: Value::int(2),
                    image: Some(Row::new(vec![Value::int(2), Value::int(6)])),
                },
            ],
        }];
        let end = replay(&log, &c, Ts::ZERO).unwrap();
        let t = c.table(TableId(0));
        // Both effects carry the same timestamp.
        assert_eq!(t.read_at(&Value::int(1), end).unwrap().ts, Ts(1));
        assert_eq!(t.read_at(&Value::int(2), end).unwrap().ts, Ts(1));
    }

    #[test]
    fn unknown_table_is_an_error() {
        let c = catalog();
        let bad = LogRecord {
            lsn: Lsn(0),
            txn: TxnId(1),
            entries: vec![LogEntry {
                table: TableId(9),
                key: Value::int(1),
                image: None,
            }],
        };
        assert!(matches!(
            replay(&[bad], &c, Ts::ZERO),
            Err(RecoveryError::UnknownTable(_))
        ));
    }

    #[test]
    fn replay_continues_from_base_ts() {
        let c = catalog();
        let end = replay(&[rec(0, 1, 1, Some(1))], &c, Ts(100)).unwrap();
        assert_eq!(end, Ts(101));
        let t = c.table(TableId(0));
        assert!(t.read_at(&Value::int(1), Ts(100)).is_none());
        assert!(t.read_at(&Value::int(1), Ts(101)).is_some());
    }

    #[test]
    fn scan_reads_a_clean_image_in_full() {
        let recs = vec![rec(0, 1, 1, Some(10)), rec(1, 2, 2, None)];
        let mut bytes = Vec::new();
        for r in &recs {
            r.encode_into(&mut bytes);
        }
        let scan = scan_log(&bytes);
        assert_eq!(scan.records, recs);
        assert_eq!(scan.truncated, None);
    }

    #[test]
    fn scan_truncates_a_torn_tail() {
        let good = rec(0, 1, 1, Some(10));
        let torn = rec(1, 2, 2, Some(20));
        let mut bytes = good.encode();
        let offset = bytes.len();
        let frame = torn.encode();
        bytes.extend_from_slice(&frame[..frame.len() / 2]);
        let scan = scan_log(&bytes);
        assert_eq!(scan.records, vec![good]);
        let t = scan.truncated.expect("tail must be reported");
        assert_eq!(t.offset, offset);
        assert!(matches!(
            t.cause,
            DecodeError::TruncatedHeader | DecodeError::TruncatedPayload
        ));
    }

    #[test]
    fn scan_truncates_at_a_corrupt_record_mid_log() {
        let a = rec(0, 1, 1, Some(10));
        let b = rec(1, 2, 2, Some(20));
        let c = rec(2, 3, 3, Some(30));
        let mut bytes = a.encode();
        let corrupt_at = bytes.len() + crate::record::FRAME_HEADER;
        b.encode_into(&mut bytes);
        c.encode_into(&mut bytes);
        bytes[corrupt_at] ^= 0xff; // flip a payload byte of b
        let scan = scan_log(&bytes);
        // b's corruption also hides c: nothing past the first bad frame is
        // trusted, because frame boundaries after it can't be.
        assert_eq!(scan.records, vec![a]);
        assert_eq!(scan.truncated.unwrap().cause, DecodeError::ChecksumMismatch);
    }

    #[test]
    fn recover_composes_scan_and_replay() {
        let cat = catalog();
        let committed = rec(0, 1, 1, Some(10));
        let mut bytes = committed.encode();
        let torn = rec(1, 2, 2, Some(20)).encode();
        bytes.extend_from_slice(&torn[..torn.len() - 3]);
        let (end, scan) = recover(&bytes, &cat, Ts::ZERO).unwrap();
        assert_eq!(end, Ts(1));
        assert!(scan.truncated.is_some());
        let t = cat.table(TableId(0));
        assert_eq!(
            t.read_at(&Value::int(1), end).unwrap().row.unwrap().int(1),
            10
        );
        assert!(t.read_at(&Value::int(2), end).is_none(), "torn txn gone");
    }
}
