//! Log records.

use sicost_common::{TableId, TxnId};
use sicost_storage::{Row, Value};
use std::fmt;

/// Log sequence number: position of a record in the log. Assigned at
/// enqueue time; per-record, strictly increasing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lsn(pub u64);

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn{}", self.0)
    }
}

/// One redo entry: the after-image of a single record write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Table written.
    pub table: TableId,
    /// Primary key of the record.
    pub key: Value,
    /// New row image, or `None` for a delete.
    pub image: Option<Row>,
}

impl LogEntry {
    /// Approximate on-disk size in bytes (drives the device transfer cost).
    pub fn size_bytes(&self) -> usize {
        // Fixed header + key + image cells; a rough but monotone model.
        let key_sz = match &self.key {
            Value::Str(s) => s.len(),
            _ => 8,
        };
        let img_sz = self
            .image
            .as_ref()
            .map(|r| r.arity() * 8 + 8)
            .unwrap_or(0);
        24 + key_sz + img_sz
    }
}

/// The redo payload of one committed transaction: all of its after-images,
/// written atomically at commit. Only transactions that actually wrote data
/// produce a record (read-only transactions are invisible to the log).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Assigned by the WAL at enqueue.
    pub lsn: Lsn,
    /// The committing transaction.
    pub txn: TxnId,
    /// After-images, in write order.
    pub entries: Vec<LogEntry>,
}

impl LogRecord {
    /// Approximate serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        32 + self.entries.iter().map(LogEntry::size_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_monotone_in_payload() {
        let small = LogRecord {
            lsn: Lsn(1),
            txn: TxnId(1),
            entries: vec![LogEntry {
                table: TableId(0),
                key: Value::int(1),
                image: None,
            }],
        };
        let big = LogRecord {
            lsn: Lsn(2),
            txn: TxnId(1),
            entries: vec![
                LogEntry {
                    table: TableId(0),
                    key: Value::str("someone"),
                    image: Some(Row::new(vec![Value::int(1), Value::int(2)])),
                },
                LogEntry {
                    table: TableId(1),
                    key: Value::int(2),
                    image: Some(Row::new(vec![Value::int(1)])),
                },
            ],
        };
        assert!(big.size_bytes() > small.size_bytes());
    }

    #[test]
    fn lsn_orders() {
        assert!(Lsn(1) < Lsn(2));
        assert_eq!(Lsn(3).to_string(), "lsn3");
    }
}
