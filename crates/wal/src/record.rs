//! Log records and their durable binary encoding.
//!
//! Each record is framed as `[payload_len: u32][checksum: u64][payload]`
//! (little-endian), where the checksum is FNV-1a over the payload bytes.
//! The frame is what makes recovery crash-hardened: a torn tail — a crash
//! mid-write leaving a byte prefix of the last record — fails either the
//! length bound or the checksum, and [`crate::recovery::scan_log`]
//! truncates the log at the first such failure instead of replaying
//! garbage.

use sicost_common::{TableId, TxnId};
use sicost_storage::{Row, Value};
use std::fmt;

/// Log sequence number: position of a record in the log. Assigned at
/// enqueue time; per-record, strictly increasing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lsn(pub u64);

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn{}", self.0)
    }
}

/// One redo entry: the after-image of a single record write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Table written.
    pub table: TableId,
    /// Primary key of the record.
    pub key: Value,
    /// New row image, or `None` for a delete.
    pub image: Option<Row>,
}

impl LogEntry {
    /// Approximate on-disk size in bytes (drives the device transfer cost).
    pub fn size_bytes(&self) -> usize {
        // Fixed header + key + image cells; a rough but monotone model.
        let key_sz = match &self.key {
            Value::Str(s) => s.len(),
            _ => 8,
        };
        let img_sz = self.image.as_ref().map(|r| r.arity() * 8 + 8).unwrap_or(0);
        24 + key_sz + img_sz
    }
}

/// The redo payload of one committed transaction: all of its after-images,
/// written atomically at commit. Only transactions that actually wrote data
/// produce a record (read-only transactions are invisible to the log).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Assigned by the WAL at enqueue.
    pub lsn: Lsn,
    /// The committing transaction.
    pub txn: TxnId,
    /// After-images, in write order.
    pub entries: Vec<LogEntry>,
}

impl LogRecord {
    /// Approximate serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        32 + self.entries.iter().map(LogEntry::size_bytes).sum::<usize>()
    }

    /// Appends the framed binary encoding of this record to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut payload = Vec::with_capacity(self.size_bytes());
        put_u64(&mut payload, self.lsn.0);
        put_u64(&mut payload, self.txn.0);
        put_u32(&mut payload, self.entries.len() as u32);
        for e in &self.entries {
            put_u32(&mut payload, e.table.0);
            encode_value(&mut payload, &e.key);
            match &e.image {
                None => payload.push(0),
                Some(row) => {
                    payload.push(1);
                    put_u32(&mut payload, row.arity() as u32);
                    for cell in row.cells() {
                        encode_value(&mut payload, cell);
                    }
                }
            }
        }
        put_u32(out, payload.len() as u32);
        put_u64(out, fnv1a(&payload));
        out.extend_from_slice(&payload);
    }

    /// The framed binary encoding of this record.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decodes one framed record from the front of `bytes`, verifying its
    /// checksum. On success returns the record and the number of bytes
    /// consumed.
    pub fn decode(bytes: &[u8]) -> Result<(LogRecord, usize), DecodeError> {
        if bytes.len() < FRAME_HEADER {
            return Err(DecodeError::TruncatedHeader);
        }
        let len = get_u32(&bytes[0..4]) as usize;
        let checksum = get_u64(&bytes[4..12]);
        let total = FRAME_HEADER + len;
        if bytes.len() < total {
            return Err(DecodeError::TruncatedPayload);
        }
        let payload = &bytes[FRAME_HEADER..total];
        if fnv1a(payload) != checksum {
            return Err(DecodeError::ChecksumMismatch);
        }
        let mut cur = Cursor {
            buf: payload,
            pos: 0,
        };
        let lsn = Lsn(cur.u64()?);
        let txn = TxnId(cur.u64()?);
        let n = cur.u32()? as usize;
        // An entry is at least 6 bytes (table + value tag + image tag);
        // bound n before allocating so a corrupt count cannot OOM us.
        if n > payload.len() {
            return Err(DecodeError::Malformed("entry count exceeds payload"));
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let table = TableId(cur.u32()?);
            let key = decode_value(&mut cur)?;
            let image = match cur.u8()? {
                0 => None,
                1 => {
                    let arity = cur.u32()? as usize;
                    if arity > payload.len() {
                        return Err(DecodeError::Malformed("row arity exceeds payload"));
                    }
                    let mut cells = Vec::with_capacity(arity);
                    for _ in 0..arity {
                        cells.push(decode_value(&mut cur)?);
                    }
                    Some(Row::new(cells))
                }
                _ => return Err(DecodeError::Malformed("bad image tag")),
            };
            entries.push(LogEntry { table, key, image });
        }
        if cur.pos != payload.len() {
            return Err(DecodeError::Malformed("trailing bytes in payload"));
        }
        Ok((LogRecord { lsn, txn, entries }, total))
    }
}

/// Bytes of the `[len][checksum]` frame header.
pub const FRAME_HEADER: usize = 12;

/// Why a framed record failed to decode. The truncation variants are the
/// expected signature of a torn tail; `ChecksumMismatch` also covers
/// in-place corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than a frame header.
    TruncatedHeader,
    /// The header promises more payload bytes than remain.
    TruncatedPayload,
    /// Payload bytes do not match the stored checksum.
    ChecksumMismatch,
    /// Checksum passed but the payload structure is invalid (only possible
    /// with a corrupted writer — the checksum makes random corruption
    /// land in `ChecksumMismatch` instead).
    Malformed(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::TruncatedHeader => write!(f, "truncated frame header"),
            DecodeError::TruncatedPayload => write!(f, "truncated payload"),
            DecodeError::ChecksumMismatch => write!(f, "checksum mismatch"),
            DecodeError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// FNV-1a 64-bit hash: the per-record checksum (the workspace-wide
/// implementation lives in [`sicost_common::hash`]).
pub use sicost_common::hash::fnv1a;

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn get_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[0..4].try_into().expect("length checked"))
}

pub(crate) fn get_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[0..8].try_into().expect("length checked"))
}

pub(crate) fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            put_u64(out, *i as u64);
        }
        Value::Str(s) => {
            out.push(2);
            put_u32(out, s.len() as u32);
            out.extend_from_slice(s.as_bytes());
        }
    }
}

pub(crate) struct Cursor<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
}

impl Cursor<'_> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&[u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::Malformed("payload underrun"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(get_u32(self.take(4)?))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(get_u64(self.take(8)?))
    }
}

pub(crate) fn decode_value(cur: &mut Cursor<'_>) -> Result<Value, DecodeError> {
    match cur.u8()? {
        0 => Ok(Value::Null),
        1 => Ok(Value::Int(cur.u64()? as i64)),
        2 => {
            let len = cur.u32()? as usize;
            let bytes = cur.take(len)?;
            let s = std::str::from_utf8(bytes)
                .map_err(|_| DecodeError::Malformed("non-utf8 string"))?;
            Ok(Value::str(s))
        }
        _ => Err(DecodeError::Malformed("bad value tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_monotone_in_payload() {
        let small = LogRecord {
            lsn: Lsn(1),
            txn: TxnId(1),
            entries: vec![LogEntry {
                table: TableId(0),
                key: Value::int(1),
                image: None,
            }],
        };
        let big = LogRecord {
            lsn: Lsn(2),
            txn: TxnId(1),
            entries: vec![
                LogEntry {
                    table: TableId(0),
                    key: Value::str("someone"),
                    image: Some(Row::new(vec![Value::int(1), Value::int(2)])),
                },
                LogEntry {
                    table: TableId(1),
                    key: Value::int(2),
                    image: Some(Row::new(vec![Value::int(1)])),
                },
            ],
        };
        assert!(big.size_bytes() > small.size_bytes());
    }

    #[test]
    fn lsn_orders() {
        assert!(Lsn(1) < Lsn(2));
        assert_eq!(Lsn(3).to_string(), "lsn3");
    }

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord {
                lsn: Lsn(1),
                txn: TxnId(9),
                entries: vec![LogEntry {
                    table: TableId(0),
                    key: Value::int(-7),
                    image: None,
                }],
            },
            LogRecord {
                lsn: Lsn(2),
                txn: TxnId(10),
                entries: vec![
                    LogEntry {
                        table: TableId(3),
                        key: Value::str("acct-42"),
                        image: Some(Row::new(vec![
                            Value::int(i64::MIN),
                            Value::Null,
                            Value::str(""),
                        ])),
                    },
                    LogEntry {
                        table: TableId(1),
                        key: Value::Null,
                        image: Some(Row::new(vec![])),
                    },
                ],
            },
            LogRecord {
                lsn: Lsn(3),
                txn: TxnId(11),
                entries: vec![],
            },
        ]
    }

    #[test]
    fn encode_decode_round_trips() {
        for rec in sample_records() {
            let bytes = rec.encode();
            let (back, used) = LogRecord::decode(&bytes).unwrap();
            assert_eq!(back, rec);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn concatenated_records_decode_in_sequence() {
        let recs = sample_records();
        let mut buf = Vec::new();
        for r in &recs {
            r.encode_into(&mut buf);
        }
        let mut pos = 0;
        for r in &recs {
            let (back, used) = LogRecord::decode(&buf[pos..]).unwrap();
            assert_eq!(&back, r);
            pos += used;
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn every_byte_prefix_is_rejected_not_misread() {
        let rec = &sample_records()[1];
        let bytes = rec.encode();
        for cut in 0..bytes.len() {
            let err = LogRecord::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    DecodeError::TruncatedHeader | DecodeError::TruncatedPayload
                ),
                "prefix of {cut} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn any_single_flipped_payload_bit_fails_the_checksum() {
        let rec = &sample_records()[0];
        let clean = rec.encode();
        for byte in FRAME_HEADER..clean.len() {
            let mut dirty = clean.clone();
            dirty[byte] ^= 0x10;
            assert_eq!(
                LogRecord::decode(&dirty).unwrap_err(),
                DecodeError::ChecksumMismatch,
                "flip at byte {byte}"
            );
        }
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
