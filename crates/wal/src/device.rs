//! The simulated log device.

use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// Cumulative device statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Number of synchronous flushes performed.
    pub syncs: u64,
    /// Total records flushed.
    pub records: u64,
    /// Total bytes flushed.
    pub bytes: u64,
    /// Largest batch (records per sync) seen.
    pub max_batch: u64,
}

/// A disk whose only operation is a synchronous batched write.
///
/// Cost model: `sync_latency + records * per_record_cost`. The constant term
/// models rotational/seek/flush latency (the dominant term on the paper's
/// 2008 IDE disks with caching off); the linear term models transfer and
/// bounds group-commit throughput so that the WAL is a genuine shared
/// resource, not an infinitely wide one.
///
/// The device serialises its own operations (one head): concurrent `sync`
/// calls queue on an internal mutex, exactly like a real drive.
#[derive(Debug)]
pub struct LogDevice {
    sync_latency: Duration,
    per_record_cost: Duration,
    stats: Mutex<DeviceStats>,
    busy: Mutex<()>,
}

impl LogDevice {
    /// Creates a device with the given cost parameters.
    pub fn new(sync_latency: Duration, per_record_cost: Duration) -> Self {
        Self {
            sync_latency,
            per_record_cost,
            stats: Mutex::new(DeviceStats::default()),
            busy: Mutex::new(()),
        }
    }

    /// A zero-cost device for functional tests.
    pub fn instant() -> Self {
        Self::new(Duration::ZERO, Duration::ZERO)
    }

    /// Synchronously writes a batch of `records` records totalling `bytes`
    /// bytes, blocking the caller for the modelled duration.
    pub fn sync(&self, records: u64, bytes: u64) {
        let _head = self.busy.lock();
        let cost = self.sync_latency + self.per_record_cost * (records as u32);
        if !cost.is_zero() {
            std::thread::sleep(cost);
        }
        let mut s = self.stats.lock();
        s.syncs += 1;
        s.records += records;
        s.bytes += bytes;
        s.max_batch = s.max_batch.max(records);
    }

    /// Snapshot of cumulative statistics.
    pub fn stats(&self) -> DeviceStats {
        *self.stats.lock()
    }

    /// The fixed per-sync latency.
    pub fn sync_latency(&self) -> Duration {
        self.sync_latency
    }

    /// Measures the wall-clock cost of one sync (test helper).
    pub fn timed_sync(&self, records: u64, bytes: u64) -> Duration {
        let t0 = Instant::now();
        self.sync(records, bytes);
        t0.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_device_is_free() {
        let d = LogDevice::instant();
        let dt = d.timed_sync(10, 1000);
        assert!(dt < Duration::from_millis(5), "instant sync took {dt:?}");
        let s = d.stats();
        assert_eq!(s.syncs, 1);
        assert_eq!(s.records, 10);
        assert_eq!(s.bytes, 1000);
        assert_eq!(s.max_batch, 10);
    }

    #[test]
    fn latency_is_charged() {
        let d = LogDevice::new(Duration::from_millis(5), Duration::ZERO);
        let dt = d.timed_sync(1, 100);
        assert!(dt >= Duration::from_millis(5), "sync returned early: {dt:?}");
    }

    #[test]
    fn per_record_cost_scales_with_batch() {
        let d = LogDevice::new(Duration::ZERO, Duration::from_millis(1));
        let dt = d.timed_sync(8, 100);
        assert!(dt >= Duration::from_millis(8), "batch cost too low: {dt:?}");
    }

    #[test]
    fn stats_accumulate_and_track_max_batch() {
        let d = LogDevice::instant();
        d.sync(3, 30);
        d.sync(7, 70);
        d.sync(2, 20);
        let s = d.stats();
        assert_eq!(s.syncs, 3);
        assert_eq!(s.records, 12);
        assert_eq!(s.bytes, 120);
        assert_eq!(s.max_batch, 7);
    }

    #[test]
    fn device_serialises_concurrent_syncs() {
        use std::sync::Arc;
        let d = Arc::new(LogDevice::new(Duration::from_millis(4), Duration::ZERO));
        let t0 = Instant::now();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let d = Arc::clone(&d);
                std::thread::spawn(move || d.sync(1, 10))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Three serialised 4ms syncs take >= 12ms even with 3 threads.
        assert!(t0.elapsed() >= Duration::from_millis(12));
    }
}
