//! Thin synchronisation wrappers over `std::sync`.
//!
//! The workspace builds with **zero external crates** (the benchmark
//! machines have no network access to a registry), so the `parking_lot`
//! primitives the engine originally used are replaced by these wrappers.
//! They keep `parking_lot`'s ergonomic API — `lock()`/`read()`/`write()`
//! return guards directly, and `Condvar::wait` takes `&mut MutexGuard` —
//! while delegating to the standard library underneath.
//!
//! Poisoning is deliberately ignored: a panic while holding one of these
//! locks is already a test failure, and the simulated-crash machinery
//! (see [`crate::fault`]) models crashes explicitly rather than through
//! unwinding, so propagating poison would only turn one failure into a
//! cascade of unrelated ones.

use std::ops::{Deref, DerefMut};
use std::sync;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A mutual-exclusion lock. `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`]; releases the lock on drop.
///
/// Holds an `Option` internally so [`Condvar::wait`] can take the inner
/// std guard by value and put the reacquired one back in place.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(sync::PoisonError::into_inner),
        ))
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0
            .as_ref()
            .expect("guard taken only inside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0
            .as_mut()
            .expect("guard taken only inside Condvar::wait")
    }
}

/// A reader–writer lock. `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock guarding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A condition variable whose `wait` reacquires the guard in place.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Atomically releases the guard's mutex and blocks until notified,
    /// then reacquires the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already taken");
        guard.0 = Some(
            self.0
                .wait(inner)
                .unwrap_or_else(sync::PoisonError::into_inner),
        );
    }

    /// Like [`Condvar::wait`] with a timeout; returns `true` if the wait
    /// timed out.
    pub fn wait_timeout<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let inner = guard.0.take().expect("guard already taken");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        result.timed_out()
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Contention counters for one named lock class, shared (via `Arc`) by
/// every stripe of that class. Acquisitions through an
/// [`InstrumentedMutex`] count here; the *contended* ones — where the
/// fast-path `try_lock` failed and the caller had to block — additionally
/// accumulate their measured wait time.
#[derive(Debug, Default)]
pub struct LockStats {
    acquisitions: AtomicU64,
    contended: AtomicU64,
    wait_nanos: AtomicU64,
}

impl LockStats {
    /// Fresh zeroed counters behind an `Arc`, ready to share across the
    /// stripes of one lock class.
    pub fn shared() -> Arc<Self> {
        Arc::default()
    }

    fn record(&self, wait: Option<Duration>) {
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        if let Some(w) = wait {
            self.contended.fetch_add(1, Ordering::Relaxed);
            self.wait_nanos
                .fetch_add(w.as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Point-in-time view of the counters, labelled with the class name.
    pub fn snapshot(&self, class: impl Into<String>) -> LockWait {
        LockWait {
            class: class.into(),
            acquisitions: self.acquisitions.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
            wait: Duration::from_nanos(self.wait_nanos.load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time contention profile of one lock class.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LockWait {
    /// Lock-class name (e.g. `commit.seq`, `ssi.reads`).
    pub class: String,
    /// Total acquisitions across every stripe of the class.
    pub acquisitions: u64,
    /// Acquisitions that had to block behind another holder.
    pub contended: u64,
    /// Wall-clock time accumulated while blocked.
    pub wait: Duration,
}

impl LockWait {
    /// Fraction of acquisitions that blocked (0 when the class is unused).
    pub fn contention_ratio(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.contended as f64 / self.acquisitions as f64
        }
    }

    /// Mean wait per *contended* acquisition.
    pub fn mean_wait(&self) -> Duration {
        if self.contended == 0 {
            Duration::ZERO
        } else {
            self.wait / self.contended as u32
        }
    }
}

/// A [`Mutex`] that reports its acquisitions to a shared [`LockStats`].
///
/// The uncontended path costs one `try_lock` plus two relaxed counter
/// bumps; only when the fast path fails does it take an `Instant` pair
/// around the blocking `lock()`. Guards are the ordinary [`MutexGuard`],
/// so [`Condvar`] works unchanged (condvar re-acquisitions after a wake
/// are *not* counted — they are scheduling, not lock contention).
pub struct InstrumentedMutex<T: ?Sized> {
    stats: Arc<LockStats>,
    inner: Mutex<T>,
}

impl<T> InstrumentedMutex<T> {
    /// Creates an instrumented mutex reporting to `stats`.
    pub fn new(value: T, stats: Arc<LockStats>) -> Self {
        Self {
            stats,
            inner: Mutex::new(value),
        }
    }
}

impl<T: ?Sized> InstrumentedMutex<T> {
    /// Acquires the lock, recording whether (and how long) it blocked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if let Some(guard) = self.inner.try_lock() {
            self.stats.record(None);
            return guard;
        }
        let t0 = Instant::now();
        let guard = self.inner.lock();
        self.stats.record(Some(t0.elapsed()));
        guard
    }

    /// Acquires the lock only if it is free right now, counting a
    /// successful acquisition (a failed try is not contention in the
    /// blocked-wall-clock sense — the caller chose not to wait).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let guard = self.inner.try_lock()?;
        self.stats.record(None);
        Some(guard)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for InstrumentedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// Maps a hashable key onto one of `n` stripes (`n ≥ 1`). Uses the
/// standard `DefaultHasher` with its fixed default keys, so the mapping is
/// deterministic across runs — required for reproducible schedules.
pub fn stripe_of<K: std::hash::Hash + ?Sized>(key: &K, n: usize) -> usize {
    use std::hash::Hasher;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % n.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_timeout_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_timeout(&mut g, Duration::from_millis(5)));
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().expect("free now"), 5);
    }

    #[test]
    fn instrumented_mutex_counts_uncontended_acquisitions() {
        let stats = LockStats::shared();
        let m = InstrumentedMutex::new(0u64, Arc::clone(&stats));
        for _ in 0..10 {
            *m.lock() += 1;
        }
        let s = stats.snapshot("test");
        assert_eq!(s.class, "test");
        assert_eq!(s.acquisitions, 10);
        assert_eq!(s.contended, 0);
        assert_eq!(s.wait, Duration::ZERO);
        assert_eq!(s.contention_ratio(), 0.0);
        assert_eq!(s.mean_wait(), Duration::ZERO);
    }

    #[test]
    fn instrumented_mutex_measures_blocked_time() {
        let stats = LockStats::shared();
        let m = Arc::new(InstrumentedMutex::new((), Arc::clone(&stats)));
        let m2 = Arc::clone(&m);
        let g = m.lock();
        let h = std::thread::spawn(move || {
            let _g = m2.lock(); // must block behind the main thread
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(g);
        h.join().unwrap();
        let s = stats.snapshot("blocked");
        assert_eq!(s.acquisitions, 2);
        assert_eq!(s.contended, 1);
        assert!(
            s.wait >= Duration::from_millis(10),
            "blocked thread waited ~20ms, recorded {:?}",
            s.wait
        );
        assert!(s.mean_wait() >= Duration::from_millis(10));
        assert!((s.contention_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn stripes_are_deterministic_and_in_range() {
        for n in [1usize, 4, 16] {
            for key in 0..100i64 {
                let a = stripe_of(&key, n);
                assert!(a < n);
                assert_eq!(a, stripe_of(&key, n), "same key, same stripe");
            }
        }
        // n = 0 is clamped rather than dividing by zero.
        assert_eq!(stripe_of(&1i64, 0), 0);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        // Poison is ignored: the lock stays usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
