//! Thin synchronisation wrappers over `std::sync`.
//!
//! The workspace builds with **zero external crates** (the benchmark
//! machines have no network access to a registry), so the `parking_lot`
//! primitives the engine originally used are replaced by these wrappers.
//! They keep `parking_lot`'s ergonomic API — `lock()`/`read()`/`write()`
//! return guards directly, and `Condvar::wait` takes `&mut MutexGuard` —
//! while delegating to the standard library underneath.
//!
//! Poisoning is deliberately ignored: a panic while holding one of these
//! locks is already a test failure, and the simulated-crash machinery
//! (see [`crate::fault`]) models crashes explicitly rather than through
//! unwinding, so propagating poison would only turn one failure into a
//! cascade of unrelated ones.

use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

/// A mutual-exclusion lock. `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`]; releases the lock on drop.
///
/// Holds an `Option` internally so [`Condvar::wait`] can take the inner
/// std guard by value and put the reacquired one back in place.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(sync::PoisonError::into_inner),
        ))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0
            .as_ref()
            .expect("guard taken only inside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0
            .as_mut()
            .expect("guard taken only inside Condvar::wait")
    }
}

/// A reader–writer lock. `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock guarding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A condition variable whose `wait` reacquires the guard in place.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Atomically releases the guard's mutex and blocks until notified,
    /// then reacquires the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already taken");
        guard.0 = Some(
            self.0
                .wait(inner)
                .unwrap_or_else(sync::PoisonError::into_inner),
        );
    }

    /// Like [`Condvar::wait`] with a timeout; returns `true` if the wait
    /// timed out.
    pub fn wait_timeout<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let inner = guard.0.take().expect("guard already taken");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        result.timed_out()
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_timeout_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_timeout(&mut g, Duration::from_millis(5)));
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        // Poison is ignored: the lock stays usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
