//! Thin synchronisation wrappers over `std::sync`, with deterministic-
//! simulation hooks.
//!
//! The workspace builds with **zero external crates** (the benchmark
//! machines have no network access to a registry), so the `parking_lot`
//! primitives the engine originally used are replaced by these wrappers.
//! They keep `parking_lot`'s ergonomic API — `lock()`/`read()`/`write()`
//! return guards directly, and `Condvar::wait` takes `&mut MutexGuard` —
//! while delegating to the standard library underneath.
//!
//! # Simulation hooks
//!
//! Every blocking operation here doubles as an **instrumented yield
//! point** for the deterministic-simulation scheduler in `sicost-sim`.
//! A thread that has [`SimHooks`] installed (via [`install_sim_hooks`],
//! normally done by the simulator) routes lock blocking, condition-variable
//! waits/notifies, sleeps ([`sim_sleep`]) and thread spawn/join
//! ([`sim_spawn`], [`SimJoinHandle::join`]) through the hooks, so a
//! cooperative scheduler can serialise all threads of a run and replay the
//! exact interleaving from a seed. With no hooks installed — the default —
//! the cost is a single relaxed atomic load per operation and everything
//! falls through to `std`.
//!
//! Mixing simulated and unsimulated threads on the *same* lock or condvar
//! is not supported: within one simulation, every participating thread
//! must be spawned through [`sim_spawn`] (or have hooks installed
//! explicitly).
//!
//! Poisoning is deliberately ignored: a panic while holding one of these
//! locks is already a test failure, and the simulated-crash machinery
//! (see [`crate::fault`]) models crashes explicitly rather than through
//! unwinding, so propagating poison would only turn one failure into a
//! cascade of unrelated ones.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Simulation hooks
// ---------------------------------------------------------------------------

/// The scheduler interface a deterministic simulator implements.
///
/// All methods are called from the thread being scheduled (the *current
/// task*), except none — release/notify calls also come from the current
/// task, since under cooperative scheduling only one task runs at a time.
/// `cv` and `lock` identifiers are stable addresses of the primitive for
/// the duration of the wait.
pub trait SimHooks: Send + Sync {
    /// A plain scheduling point: the current task offers to be preempted.
    fn yield_now(&self);
    /// A *probabilistic* scheduling point on a lock fast path; the
    /// scheduler decides (deterministically, from its seed) whether to
    /// actually switch.
    fn maybe_preempt(&self);
    /// The current task failed to acquire `lock` and must block until
    /// [`SimHooks::mutex_released`] is signalled for it. The caller
    /// retries the acquisition after this returns.
    fn mutex_blocked(&self, lock: usize);
    /// `lock` was just released; tasks blocked on it become runnable.
    /// Not itself a scheduling point.
    fn mutex_released(&self, lock: usize);
    /// Park the current task on condition variable `cv` until notified.
    /// The caller has already released the associated mutex; the
    /// release-and-park pair is atomic because no other task can run in
    /// between.
    fn cv_wait(&self, cv: usize);
    /// Like [`SimHooks::cv_wait`] with a virtual-time deadline; returns
    /// `true` if the wait timed out.
    fn cv_wait_timeout(&self, cv: usize, timeout: Duration) -> bool;
    /// Wake one (chosen deterministically by the scheduler) or all tasks
    /// parked on `cv`. Not itself a scheduling point.
    fn cv_notify(&self, cv: usize, all: bool);
    /// Sleep in *virtual* time: the task becomes runnable again once the
    /// simulated clock reaches now + `d`.
    fn sleep(&self, d: Duration);
    /// Pre-registers a child task (called by the spawning task, before the
    /// OS thread exists, so task identity is assigned deterministically).
    fn register_task(&self, name: &str) -> u64;
    /// Called on the child thread: adopt identity `task` and block until
    /// the scheduler grants it the run token.
    fn attach(&self, task: u64);
    /// The current task is finished; hand the token back for good.
    fn detach(&self);
    /// Has `task` detached? Used by cooperative join.
    fn task_done(&self, task: u64) -> bool;
}

/// Count of threads (process-wide) with hooks installed: the fast-path
/// gate that keeps unsimulated runs at one relaxed load per operation.
static SIM_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SIM_TLS: RefCell<Option<Arc<dyn SimHooks>>> = const { RefCell::new(None) };
}

/// The hooks installed on the current thread, if any.
pub fn sim_hooks() -> Option<Arc<dyn SimHooks>> {
    if SIM_THREADS.load(Ordering::Relaxed) == 0 {
        return None;
    }
    SIM_TLS.with(|h| h.borrow().clone())
}

/// Installs simulation hooks on the current thread. Affects only this
/// thread: other tests running in the same process are untouched.
pub fn install_sim_hooks(hooks: Arc<dyn SimHooks>) {
    SIM_TLS.with(|h| {
        let mut slot = h.borrow_mut();
        if slot.is_none() {
            SIM_THREADS.fetch_add(1, Ordering::SeqCst);
        }
        *slot = Some(hooks);
    });
}

/// Removes the current thread's simulation hooks (no-op when absent).
pub fn clear_sim_hooks() {
    SIM_TLS.with(|h| {
        if h.borrow_mut().take().is_some() {
            SIM_THREADS.fetch_sub(1, Ordering::SeqCst);
        }
    });
}

/// An explicit scheduling point: under simulation the scheduler may switch
/// tasks here; otherwise free. Placed at protocol-interesting spots (e.g.
/// crash-point probes) to widen the explored interleaving space.
pub fn sim_yield() {
    if let Some(h) = sim_hooks() {
        h.yield_now();
    }
}

/// Sleeps for `d` — in virtual time under simulation, in wall-clock time
/// otherwise. All model-cost sleeps (CPU stations, log device, group-commit
/// gather windows) must go through here so simulated runs are instant and
/// deterministic.
pub fn sim_sleep(d: Duration) {
    match sim_hooks() {
        Some(h) => h.sleep(d),
        None => {
            if !d.is_zero() {
                std::thread::sleep(d);
            }
        }
    }
}

/// Handle for a thread spawned with [`sim_spawn`]: joins cooperatively
/// under simulation, exactly like `std::thread::JoinHandle` otherwise.
#[derive(Debug)]
pub struct SimJoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    task: Option<u64>,
}

impl<T> SimJoinHandle<T> {
    /// Waits for the thread to finish. Under simulation this yields until
    /// the scheduler reports the task done (never blocking the token), then
    /// reaps the OS thread.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some(id) = self.task {
            if let Some(h) = sim_hooks() {
                while !h.task_done(id) {
                    h.yield_now();
                }
            }
        }
        self.inner.join()
    }

    /// Whether the underlying OS thread has finished.
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

/// Detaches the task (and clears hooks) when the closure finishes — on
/// the panic path too, so a dying task cannot wedge the scheduler.
struct DetachOnDrop(Option<Arc<dyn SimHooks>>);

impl Drop for DetachOnDrop {
    fn drop(&mut self) {
        if let Some(h) = self.0.take() {
            h.detach();
        }
        clear_sim_hooks();
    }
}

/// Spawns a named thread. If the spawning thread is simulated, the child
/// is pre-registered with the scheduler (so task identity — and therefore
/// the schedule — is a pure function of the seed), inherits the hooks, and
/// participates in cooperative scheduling from its first instruction.
pub fn sim_spawn<F, T>(name: &str, f: F) -> SimJoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let builder = std::thread::Builder::new().name(name.to_string());
    match sim_hooks() {
        Some(h) => {
            let id = h.register_task(name);
            let inner = builder
                .spawn(move || {
                    install_sim_hooks(Arc::clone(&h));
                    h.attach(id);
                    let _detach = DetachOnDrop(Some(Arc::clone(&h)));
                    f()
                })
                .expect("spawn simulated thread");
            SimJoinHandle {
                inner,
                task: Some(id),
            }
        }
        None => SimJoinHandle {
            inner: builder.spawn(f).expect("spawn thread"),
            task: None,
        },
    }
}

fn mutex_addr<T: ?Sized>(lock: &sync::Mutex<T>) -> usize {
    (lock as *const sync::Mutex<T>).cast::<()>() as usize
}

fn coop_lock<'a, T: ?Sized>(
    lock: &'a sync::Mutex<T>,
    hooks: &Arc<dyn SimHooks>,
) -> sync::MutexGuard<'a, T> {
    loop {
        match lock.try_lock() {
            Ok(g) => return g,
            Err(sync::TryLockError::Poisoned(p)) => return p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => hooks.mutex_blocked(mutex_addr(lock)),
        }
    }
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

/// A mutual-exclusion lock. `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`]; releases the lock on drop.
///
/// Holds an `Option` internally so [`Condvar::wait`] can take the inner
/// std guard by value and put the reacquired one back in place; the
/// mutex reference lets the cooperative wait relock in place and lets
/// the drop path tell the simulator the lock was released.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a sync::Mutex<T>,
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Under simulation this
    /// is a scheduling point: a blocked task parks cooperatively, and even
    /// an uncontended acquisition may be chosen as a preemption site.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if let Some(h) = sim_hooks() {
            h.maybe_preempt();
            return MutexGuard {
                lock: &self.0,
                inner: Some(coop_lock(&self.0, &h)),
            };
        }
        MutexGuard {
            lock: &self.0,
            inner: Some(self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)),
        }
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard {
                lock: &self.0,
                inner: Some(g),
            }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                lock: &self.0,
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard taken only inside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard taken only inside Condvar::wait")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            if let Some(h) = sim_hooks() {
                h.mutex_released(mutex_addr(self.lock));
            }
        }
    }
}

/// A reader–writer lock. `read()`/`write()` return guards directly.
///
/// Simulation-instrumented like [`Mutex`]: under the cooperative
/// scheduler a contended acquisition parks the task (instead of blocking
/// the OS thread while it holds the run token) and guard drops wake the
/// parked waiters. The storage layer's table latches run on this.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock guarding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }
}

fn rwlock_addr<T: ?Sized>(lock: &sync::RwLock<T>) -> usize {
    (lock as *const sync::RwLock<T>).cast::<()>() as usize
}

/// Shared-access guard for [`RwLock`]; under simulation its drop wakes
/// parked writers.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a sync::RwLock<T>,
    inner: Option<sync::RwLockReadGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present until drop")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            if let Some(h) = sim_hooks() {
                h.mutex_released(rwlock_addr(self.lock));
            }
        }
    }
}

/// Exclusive-access guard for [`RwLock`]; under simulation its drop wakes
/// parked readers and writers.
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a sync::RwLock<T>,
    inner: Option<sync::RwLockWriteGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present until drop")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present until drop")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            if let Some(h) = sim_hooks() {
                h.mutex_released(rwlock_addr(self.lock));
            }
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = if let Some(h) = sim_hooks() {
            h.maybe_preempt();
            loop {
                match self.0.try_read() {
                    Ok(g) => break g,
                    Err(sync::TryLockError::Poisoned(p)) => break p.into_inner(),
                    Err(sync::TryLockError::WouldBlock) => {
                        h.mutex_blocked(rwlock_addr(&self.0));
                    }
                }
            }
        } else {
            self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
        };
        RwLockReadGuard {
            lock: &self.0,
            inner: Some(inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = if let Some(h) = sim_hooks() {
            h.maybe_preempt();
            loop {
                match self.0.try_write() {
                    Ok(g) => break g,
                    Err(sync::TryLockError::Poisoned(p)) => break p.into_inner(),
                    Err(sync::TryLockError::WouldBlock) => {
                        h.mutex_blocked(rwlock_addr(&self.0));
                    }
                }
            }
        } else {
            self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
        };
        RwLockWriteGuard {
            lock: &self.0,
            inner: Some(inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A condition variable whose `wait` reacquires the guard in place.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    /// Atomically releases the guard's mutex and blocks until notified,
    /// then reacquires the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        if let Some(h) = sim_hooks() {
            let lock = guard.lock;
            drop(guard.inner.take().expect("guard already taken"));
            // Release-then-park is atomic under the cooperative scheduler:
            // no other task runs between these two calls.
            h.mutex_released(mutex_addr(lock));
            h.cv_wait(self.addr());
            guard.inner = Some(coop_lock(lock, &h));
            return;
        }
        let inner = guard.inner.take().expect("guard already taken");
        guard.inner = Some(
            self.0
                .wait(inner)
                .unwrap_or_else(sync::PoisonError::into_inner),
        );
    }

    /// Like [`Condvar::wait`] with a timeout; returns `true` if the wait
    /// timed out. Under simulation the timeout elapses in virtual time.
    pub fn wait_timeout<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        if let Some(h) = sim_hooks() {
            let lock = guard.lock;
            drop(guard.inner.take().expect("guard already taken"));
            h.mutex_released(mutex_addr(lock));
            let timed_out = h.cv_wait_timeout(self.addr(), timeout);
            guard.inner = Some(coop_lock(lock, &h));
            return timed_out;
        }
        let inner = guard.inner.take().expect("guard already taken");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        result.timed_out()
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        if let Some(h) = sim_hooks() {
            h.cv_notify(self.addr(), false);
        }
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        if let Some(h) = sim_hooks() {
            h.cv_notify(self.addr(), true);
        }
        self.0.notify_all();
    }
}

/// Contention counters for one named lock class, shared (via `Arc`) by
/// every stripe of that class. Acquisitions through an
/// [`InstrumentedMutex`] count here; the *contended* ones — where the
/// fast-path `try_lock` failed and the caller had to block — additionally
/// accumulate their measured wait time.
#[derive(Debug, Default)]
pub struct LockStats {
    acquisitions: AtomicU64,
    contended: AtomicU64,
    wait_nanos: AtomicU64,
}

impl LockStats {
    /// Fresh zeroed counters behind an `Arc`, ready to share across the
    /// stripes of one lock class.
    pub fn shared() -> Arc<Self> {
        Arc::default()
    }

    fn record(&self, wait: Option<Duration>) {
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        if let Some(w) = wait {
            self.contended.fetch_add(1, Ordering::Relaxed);
            self.wait_nanos
                .fetch_add(w.as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Point-in-time view of the counters, labelled with the class name.
    pub fn snapshot(&self, class: impl Into<String>) -> LockWait {
        LockWait {
            class: class.into(),
            acquisitions: self.acquisitions.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
            wait: Duration::from_nanos(self.wait_nanos.load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time contention profile of one lock class.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LockWait {
    /// Lock-class name (e.g. `commit.seq`, `ssi.reads`).
    pub class: String,
    /// Total acquisitions across every stripe of the class.
    pub acquisitions: u64,
    /// Acquisitions that had to block behind another holder.
    pub contended: u64,
    /// Wall-clock time accumulated while blocked.
    pub wait: Duration,
}

impl LockWait {
    /// Fraction of acquisitions that blocked (0 when the class is unused).
    pub fn contention_ratio(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.contended as f64 / self.acquisitions as f64
        }
    }

    /// Mean wait per *contended* acquisition.
    pub fn mean_wait(&self) -> Duration {
        if self.contended == 0 {
            Duration::ZERO
        } else {
            self.wait / self.contended as u32
        }
    }
}

/// A [`Mutex`] that reports its acquisitions to a shared [`LockStats`].
///
/// The uncontended path costs one `try_lock` plus two relaxed counter
/// bumps; only when the fast path fails does it take an `Instant` pair
/// around the blocking `lock()`. Guards are the ordinary [`MutexGuard`],
/// so [`Condvar`] works unchanged (condvar re-acquisitions after a wake
/// are *not* counted — they are scheduling, not lock contention).
pub struct InstrumentedMutex<T: ?Sized> {
    stats: Arc<LockStats>,
    inner: Mutex<T>,
}

impl<T> InstrumentedMutex<T> {
    /// Creates an instrumented mutex reporting to `stats`.
    pub fn new(value: T, stats: Arc<LockStats>) -> Self {
        Self {
            stats,
            inner: Mutex::new(value),
        }
    }
}

impl<T: ?Sized> InstrumentedMutex<T> {
    /// Acquires the lock, recording whether (and how long) it blocked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if let Some(guard) = self.inner.try_lock() {
            self.stats.record(None);
            return guard;
        }
        let t0 = Instant::now();
        let guard = self.inner.lock();
        self.stats.record(Some(t0.elapsed()));
        guard
    }

    /// Acquires the lock only if it is free right now, counting a
    /// successful acquisition (a failed try is not contention in the
    /// blocked-wall-clock sense — the caller chose not to wait).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let guard = self.inner.try_lock()?;
        self.stats.record(None);
        Some(guard)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for InstrumentedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// Maps a hashable key onto one of `n` stripes (`n ≥ 1`). Uses the
/// standard `DefaultHasher` with its fixed default keys, so the mapping is
/// deterministic across runs — required for reproducible schedules.
pub fn stripe_of<K: std::hash::Hash + ?Sized>(key: &K, n: usize) -> usize {
    use std::hash::Hasher;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % n.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_timeout_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_timeout(&mut g, Duration::from_millis(5)));
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().expect("free now"), 5);
    }

    #[test]
    fn instrumented_mutex_counts_uncontended_acquisitions() {
        let stats = LockStats::shared();
        let m = InstrumentedMutex::new(0u64, Arc::clone(&stats));
        for _ in 0..10 {
            *m.lock() += 1;
        }
        let s = stats.snapshot("test");
        assert_eq!(s.class, "test");
        assert_eq!(s.acquisitions, 10);
        assert_eq!(s.contended, 0);
        assert_eq!(s.wait, Duration::ZERO);
        assert_eq!(s.contention_ratio(), 0.0);
        assert_eq!(s.mean_wait(), Duration::ZERO);
    }

    #[test]
    fn instrumented_mutex_measures_blocked_time() {
        let stats = LockStats::shared();
        let m = Arc::new(InstrumentedMutex::new((), Arc::clone(&stats)));
        let m2 = Arc::clone(&m);
        let g = m.lock();
        let h = std::thread::spawn(move || {
            let _g = m2.lock(); // must block behind the main thread
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(g);
        h.join().unwrap();
        let s = stats.snapshot("blocked");
        assert_eq!(s.acquisitions, 2);
        assert_eq!(s.contended, 1);
        assert!(
            s.wait >= Duration::from_millis(10),
            "blocked thread waited ~20ms, recorded {:?}",
            s.wait
        );
        assert!(s.mean_wait() >= Duration::from_millis(10));
        assert!((s.contention_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn stripes_are_deterministic_and_in_range() {
        for n in [1usize, 4, 16] {
            for key in 0..100i64 {
                let a = stripe_of(&key, n);
                assert!(a < n);
                assert_eq!(a, stripe_of(&key, n), "same key, same stripe");
            }
        }
        // n = 0 is clamped rather than dividing by zero.
        assert_eq!(stripe_of(&1i64, 0), 0);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        // Poison is ignored: the lock stays usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn sim_helpers_fall_through_without_hooks() {
        assert!(sim_hooks().is_none());
        sim_yield(); // no-op
        sim_sleep(Duration::ZERO); // no-op
        let h = sim_spawn("plain", || 7u32);
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    fn clear_without_install_is_a_no_op() {
        clear_sim_hooks();
        assert!(sim_hooks().is_none());
    }
}
