//! Epoch-based memory reclamation for lock-free readers.
//!
//! The storage layer publishes immutable snapshots (version chains, shard
//! maps) through atomic pointers. Readers traverse them without locks; a
//! writer that replaces a snapshot cannot free the old one immediately,
//! because a reader may still be dereferencing it. This module provides
//! the deferred-free machinery, std-only (the workspace builds with zero
//! external crates):
//!
//! * a reader wraps each traversal in [`pin`], which publishes the global
//!   epoch into its thread-local slot;
//! * a writer hands the unlinked object to [`retire`], stamped with the
//!   epoch at which it was unlinked;
//! * [`collect`] advances the global epoch only when every pinned thread
//!   has observed it, and frees garbage once the epoch has advanced **two
//!   steps** past its retirement stamp.
//!
//! # Why two epochs ([the correctness argument])
//!
//! All epoch operations use `SeqCst`, so they form one total order `S`.
//! Consider garbage retired at epoch `r`: it was unlinked (swapped out of
//! its atomic pointer) *before* the retire read the global epoch as `r`.
//! A thread that pins at epoch `r + 1` or later pins after the advance
//! `r → r + 1`, which is after the retire, which is after the unlink — so
//! its subsequent pointer loads can only observe the replacement, never
//! the retired object. Threads pinned at `≤ r` *can* hold it, but they
//! block the advance `r + 1 → r + 2` (advancing requires every active
//! slot to have observed the current epoch). Freeing only at
//! `global ≥ r + 2` therefore guarantees no pinned thread can still reach
//! the object. The pin itself closes the publish race with a
//! store-then-re-check loop: a collector that sampled the slot as
//! inactive must have done so before the slot store, and the re-check
//! observes any epoch advance that could have raced with it.
//!
//! # Simulation awareness
//!
//! [`pin`] routes through [`crate::sync::sim_hooks`]: under the
//! deterministic simulator every pin is a potential preemption point
//! (like a mutex acquisition), so `sicost-sim` schedules that interleave
//! lock-free readers with writers stay a pure function of the seed.
//!
//! The participant registry and garbage list deliberately use **raw**
//! `std` mutexes, not the instrumented [`crate::sync::Mutex`]: garbage
//! accumulation (and therefore when an automatic [`collect`] fires) is
//! process-global state that persists across replays of one seed, so if
//! GC bookkeeping consumed scheduler decisions, replaying a schedule
//! would diverge. With raw locks the bookkeeping is invisible to the
//! scheduler — critical sections are short, bounded, and never yield —
//! and the *only* scheduling point this module introduces is the pin
//! itself, whose count is a pure function of the schedule.
//!
//! # Cost model
//!
//! After a thread's first pin (which registers its slot — one allocation,
//! ever), `pin`/unpin are a handful of atomic operations and **perform no
//! allocation** — the property the storage read path's zero-allocation
//! test asserts. `retire` allocates (it boxes the garbage) but only runs
//! on write paths.

use crate::sync;
use std::any::Any;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, Weak};

/// Slot value meaning "not currently pinned".
const INACTIVE: u64 = u64::MAX;

/// Retired objects buffered before an automatic [`collect`] is attempted.
const COLLECT_THRESHOLD: usize = 128;

/// The global epoch. Starts at 2 so `retired_epoch + 2 <= global` is
/// never vacuously true for garbage stamped before any advance.
static EPOCH: AtomicU64 = AtomicU64::new(2);

/// Every thread that has ever pinned, as weak refs so dead threads are
/// pruned during [`collect`] rather than leaking slots. Raw `std` mutex:
/// see the module docs on simulation awareness.
static PARTICIPANTS: Mutex<Vec<Weak<Slot>>> = Mutex::new(Vec::new());

/// Retired-but-not-yet-freed objects, stamped with their retirement epoch.
/// Raw `std` mutex: see the module docs on simulation awareness.
static GARBAGE: Mutex<Vec<(u64, Box<dyn Any + Send>)>> = Mutex::new(Vec::new());

/// Locks a raw bookkeeping mutex, ignoring poison (consistent with
/// [`crate::sync`]: a panic while holding one is already a test failure).
fn raw_lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[derive(Debug)]
struct Slot {
    /// The epoch this thread pinned at, or [`INACTIVE`].
    epoch: AtomicU64,
    /// Reentrant-pin depth; only the outermost pin publishes/clears.
    depth: AtomicUsize,
}

thread_local! {
    static SLOT: RefCell<Option<Arc<Slot>>> = const { RefCell::new(None) };
}

/// An active pin: while any [`Guard`] lives on a thread, no object retired
/// at or after the pinned epoch is freed. Not `Send` — a pin is a property
/// of the pinning thread.
#[derive(Debug)]
pub struct Guard {
    slot: Arc<Slot>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for Guard {
    fn drop(&mut self) {
        if self.slot.depth.fetch_sub(1, SeqCst) == 1 {
            self.slot.epoch.store(INACTIVE, SeqCst);
        }
    }
}

fn my_slot() -> Arc<Slot> {
    SLOT.with(|s| {
        if let Some(a) = s.borrow().as_ref() {
            return Arc::clone(a);
        }
        let a = Arc::new(Slot {
            epoch: AtomicU64::new(INACTIVE),
            depth: AtomicUsize::new(0),
        });
        raw_lock(&PARTICIPANTS).push(Arc::downgrade(&a));
        *s.borrow_mut() = Some(Arc::clone(&a));
        a
    })
}

/// Pins the current thread: objects reachable from atomic pointers loaded
/// while the returned [`Guard`] lives will not be freed underneath it.
/// Reentrant (nested pins share the outermost epoch); allocation-free
/// after the thread's first call. Under deterministic simulation this is
/// a scheduling point.
pub fn pin() -> Guard {
    if let Some(h) = sync::sim_hooks() {
        h.maybe_preempt();
    }
    let slot = my_slot();
    if slot.depth.fetch_add(1, SeqCst) == 0 {
        // Publish-then-re-check: if the global advanced between our load
        // and our slot store, a collector may have sampled the slot as
        // inactive and advanced past us — re-publish at the newer epoch
        // before touching any shared pointer.
        loop {
            let e = EPOCH.load(SeqCst);
            slot.epoch.store(e, SeqCst);
            if EPOCH.load(SeqCst) == e {
                break;
            }
        }
    }
    Guard {
        slot,
        _not_send: PhantomData,
    }
}

/// Defers destruction of `value` until every thread pinned at the current
/// epoch has unpinned. Called by writers after unlinking an object from
/// all shared pointers. Triggers an automatic [`collect`] once enough
/// garbage accumulates.
pub fn retire<T: Send + 'static>(value: T) {
    let e = EPOCH.load(SeqCst);
    let pending = {
        let mut g = raw_lock(&GARBAGE);
        g.push((e, Box::new(value)));
        g.len()
    };
    if pending >= COLLECT_THRESHOLD {
        collect();
    }
}

/// Tries to advance the epoch and frees every retired object that no pin
/// can still reach (see the module docs for the invariant). Returns the
/// number of objects freed. Safe to call from any thread at any time;
/// vacuum calls it after pruning so reclaimed chains actually return to
/// the allocator.
pub fn collect() -> usize {
    try_advance();
    let global = EPOCH.load(SeqCst);
    let min = min_active_epoch();
    let freed: Vec<(u64, Box<dyn Any + Send>)> = {
        let mut g = raw_lock(&GARBAGE);
        let mut keep = Vec::with_capacity(g.len());
        let mut freed = Vec::new();
        for item in g.drain(..) {
            if item.0.saturating_add(2) <= global && item.0 < min {
                freed.push(item);
            } else {
                keep.push(item);
            }
        }
        *g = keep;
        freed
    };
    // Destructors run outside the garbage lock: they may retire more.
    let n = freed.len();
    drop(freed);
    n
}

/// Number of retired objects still awaiting reclamation (diagnostics).
pub fn pending() -> usize {
    raw_lock(&GARBAGE).len()
}

/// Advance `global` by one step iff every *active* participant has
/// observed the current value — the discipline that bounds pinned readers
/// to epochs `{global, global - 1}`.
fn try_advance() {
    let global = EPOCH.load(SeqCst);
    let mut parts = raw_lock(&PARTICIPANTS);
    parts.retain(|w| w.strong_count() > 0);
    for w in parts.iter() {
        if let Some(s) = w.upgrade() {
            let e = s.epoch.load(SeqCst);
            if e != INACTIVE && e != global {
                return;
            }
        }
    }
    let _ = EPOCH.compare_exchange(global, global + 1, SeqCst, SeqCst);
}

/// Oldest epoch any thread is currently pinned at ([`INACTIVE`] if none).
fn min_active_epoch() -> u64 {
    raw_lock(&PARTICIPANTS)
        .iter()
        .filter_map(|w| w.upgrade())
        .map(|s| s.epoch.load(SeqCst))
        .min()
        .unwrap_or(INACTIVE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    /// Bumps a shared counter when dropped: observable reclamation.
    struct DropBomb(Arc<AtomicUsize>);
    impl Drop for DropBomb {
        fn drop(&mut self) {
            self.0.fetch_add(1, SeqCst);
        }
    }

    /// Loops `collect` until `done()` or a generous bound — other tests in
    /// this process share the global epoch domain and may briefly hold
    /// pins of their own.
    fn collect_until(done: impl Fn() -> bool) -> bool {
        for _ in 0..10_000 {
            collect();
            if done() {
                return true;
            }
            std::thread::sleep(Duration::from_micros(50));
        }
        done()
    }

    #[test]
    fn retired_object_is_eventually_freed() {
        let drops = Arc::new(AtomicUsize::new(0));
        retire(DropBomb(Arc::clone(&drops)));
        assert!(
            collect_until(|| drops.load(SeqCst) == 1),
            "garbage must be reclaimed once no pin can reach it"
        );
    }

    #[test]
    fn pinned_reader_blocks_reclamation() {
        let drops = Arc::new(AtomicUsize::new(0));
        let guard = pin();
        retire(DropBomb(Arc::clone(&drops)));
        // With this thread pinned at the retirement epoch, the epoch
        // cannot advance two steps; the object must survive.
        for _ in 0..50 {
            collect();
        }
        assert_eq!(drops.load(SeqCst), 0, "pinned epoch must pin the garbage");
        drop(guard);
        assert!(collect_until(|| drops.load(SeqCst) == 1));
    }

    #[test]
    fn nested_pins_share_the_outer_epoch() {
        let outer = pin();
        let e = outer.slot.epoch.load(SeqCst);
        let inner = pin();
        assert_eq!(inner.slot.epoch.load(SeqCst), e);
        drop(inner);
        assert_eq!(
            outer.slot.epoch.load(SeqCst),
            e,
            "inner unpin must not deactivate the outer pin"
        );
        drop(outer);
    }

    #[test]
    fn cross_thread_reclamation() {
        let drops = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let drops = Arc::clone(&drops);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let _g = pin();
                        retire(DropBomb(Arc::clone(&drops)));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            collect_until(|| drops.load(SeqCst) == 400),
            "all 400 retirements reclaim once every thread unpins: {}",
            drops.load(SeqCst)
        );
    }
}
