//! Fixed-point money arithmetic.
//!
//! SmallBank balances are currency amounts; floating point would make the
//! conservation-of-money oracle checks flaky, so balances are stored as an
//! `i64` number of cents with checked arithmetic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// An amount of money in integer cents. Supports negative values (overdrawn
/// accounts are part of the WriteCheck semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Money(pub i64);

impl Money {
    /// Zero dollars.
    pub const ZERO: Money = Money(0);

    /// Constructs from whole dollars.
    pub fn dollars(d: i64) -> Self {
        Money(d.checked_mul(100).expect("money overflow"))
    }

    /// Constructs from raw cents.
    pub fn cents(c: i64) -> Self {
        Money(c)
    }

    /// Raw cents value.
    pub fn as_cents(self) -> i64 {
        self.0
    }

    /// True when the amount is strictly negative.
    pub fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Checked addition, `None` on overflow.
    pub fn checked_add(self, rhs: Money) -> Option<Money> {
        self.0.checked_add(rhs.0).map(Money)
    }

    /// Checked subtraction, `None` on overflow.
    pub fn checked_sub(self, rhs: Money) -> Option<Money> {
        self.0.checked_sub(rhs.0).map(Money)
    }
}

impl Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        Money(self.0.checked_add(rhs.0).expect("money overflow"))
    }
}

impl Sub for Money {
    type Output = Money;
    fn sub(self, rhs: Money) -> Money {
        Money(self.0.checked_sub(rhs.0).expect("money underflow"))
    }
}

impl Neg for Money {
    type Output = Money;
    fn neg(self) -> Money {
        Money(self.0.checked_neg().expect("money overflow"))
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        *self = *self + rhs;
    }
}

impl SubAssign for Money {
    fn sub_assign(&mut self, rhs: Money) {
        *self = *self - rhs;
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        write!(f, "{sign}${}.{:02}", abs / 100, abs % 100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let a = Money::dollars(10);
        let b = Money::cents(250);
        assert_eq!(a + b, Money::cents(1250));
        assert_eq!(a - b, Money::cents(750));
        assert_eq!(-b, Money::cents(-250));
        assert_eq!((a + b) - b, a);
    }

    #[test]
    fn display_formats_cents() {
        assert_eq!(Money::cents(1205).to_string(), "$12.05");
        assert_eq!(Money::cents(-7).to_string(), "-$0.07");
        assert_eq!(Money::ZERO.to_string(), "$0.00");
    }

    #[test]
    fn sum_over_iterator() {
        let total: Money = [Money::dollars(1), Money::dollars(2), Money::cents(50)]
            .into_iter()
            .sum();
        assert_eq!(total, Money::cents(350));
    }

    #[test]
    fn checked_ops_catch_overflow() {
        assert!(Money(i64::MAX).checked_add(Money(1)).is_none());
        assert!(Money(i64::MIN).checked_sub(Money(1)).is_none());
        assert_eq!(Money(5).checked_add(Money(6)), Some(Money(11)),);
    }

    #[test]
    fn negativity_flag() {
        assert!(Money::cents(-1).is_negative());
        assert!(!Money::ZERO.is_negative());
        assert!(!Money::cents(1).is_negative());
    }
}
