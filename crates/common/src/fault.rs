//! Deterministic fault injection.
//!
//! A single seeded [`FaultInjector`] is threaded through the WAL's log
//! device and the engine's commit pipeline, so one configuration drives
//! every fault in a run and the whole schedule replays from the seed:
//!
//! * **Latency spikes** — the log device occasionally stalls for an extra
//!   configured duration, modelling a drive hiccup.
//! * **Transient sync errors** — a device sync fails outright; the commit
//!   batch is not made durable and every waiting committer aborts with a
//!   transient error the client retry layer absorbs.
//! * **Forced aborts** — a commit is probabilistically killed before
//!   validation, modelling an admission-control or OOM kill.
//! * **Crash points** — on the *n*-th arrival at a chosen pipeline stage
//!   the simulated process "dies": the injector latches into a crashed
//!   state, the stage stops mid-flight, and every later operation fails.
//!   Recovery tests then replay the durable log into a fresh catalog.
//!
//! All probabilistic draws come from one internal seeded generator, so a
//! fault schedule is reproducible up to thread interleaving; crash points
//! use deterministic countdowns and are exactly reproducible.

use crate::rng::Xoshiro256;
use crate::sync::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Stages of the commit pipeline where a simulated crash can be armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// After validation, before the redo record reaches the WAL: nothing
    /// durable — the transaction must be absent after recovery.
    BeforeWalAppend,
    /// While the device is writing the commit batch: the batch's last
    /// record is torn (a byte prefix reaches the disk image), which
    /// recovery must detect by checksum and truncate.
    DuringWalSync,
    /// After the redo record is durable, before any version is installed:
    /// the transaction is committed by the log even though the client saw
    /// an error — recovery must resurrect it.
    AfterWalAppend,
    /// Half-way through version installation: in-memory state is torn,
    /// but the log is complete — recovery must restore all of it.
    MidInstall,
    /// After installation completes: the commit fully happened; recovery
    /// must preserve it.
    AfterInstall,
    /// While the checkpoint frame is being written to its slot: the slot
    /// holds a torn frame, but the manifest still points at the previous
    /// checkpoint — recovery must ignore the torn slot entirely.
    DuringCheckpointWrite,
    /// After the checkpoint frame is fully durable, before the manifest
    /// swap: recovery still uses the previous manifest (or the whole log)
    /// and must lose nothing.
    BeforeManifestSwap,
    /// After the manifest swap is durable, before the log is truncated:
    /// recovery uses the new checkpoint plus the (untruncated) suffix
    /// starting at the manifest's offset.
    AfterManifestSwapBeforeTruncate,
    /// While the paged heap is writing a page frame (eviction write-back
    /// or checkpoint flush): the frame's slot holds a torn byte prefix.
    /// The page's *other* slot still holds the previous valid image, so
    /// recovery must fail the torn slot's checksum and fall back to it.
    DuringPageFlush,
}

impl CrashPoint {
    /// Every armed crash point, in pipeline order — the torture harness
    /// iterates this so new points are covered automatically.
    pub const ALL: [CrashPoint; 9] = [
        CrashPoint::BeforeWalAppend,
        CrashPoint::DuringWalSync,
        CrashPoint::AfterWalAppend,
        CrashPoint::MidInstall,
        CrashPoint::AfterInstall,
        CrashPoint::DuringCheckpointWrite,
        CrashPoint::BeforeManifestSwap,
        CrashPoint::AfterManifestSwapBeforeTruncate,
        CrashPoint::DuringPageFlush,
    ];
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CrashPoint::BeforeWalAppend => "before-wal-append",
            CrashPoint::DuringWalSync => "during-wal-sync",
            CrashPoint::AfterWalAppend => "after-wal-append",
            CrashPoint::MidInstall => "mid-install",
            CrashPoint::AfterInstall => "after-install",
            CrashPoint::DuringCheckpointWrite => "during-checkpoint-write",
            CrashPoint::BeforeManifestSwap => "before-manifest-swap",
            CrashPoint::AfterManifestSwapBeforeTruncate => "after-manifest-swap-before-truncate",
            CrashPoint::DuringPageFlush => "during-page-flush",
        };
        write!(f, "{name}")
    }
}

/// Fault-injection parameters. The default injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for the probabilistic draws.
    pub seed: u64,
    /// Probability that one device sync stalls for [`Self::wal_latency_spike`].
    pub wal_latency_spike_p: f64,
    /// Extra stall charged when a latency spike fires.
    pub wal_latency_spike: Duration,
    /// Probability that one device sync fails transiently.
    pub wal_sync_error_p: f64,
    /// Probability that one commit is forcibly aborted before validation.
    pub forced_abort_p: f64,
    /// Armed crash: the pipeline stage and the 1-based arrival count at
    /// which the simulated process dies.
    pub crash_at: Option<(CrashPoint, u64)>,
}

impl FaultConfig {
    /// No faults at all.
    pub fn none() -> Self {
        Self {
            seed: 0,
            wal_latency_spike_p: 0.0,
            wal_latency_spike: Duration::ZERO,
            wal_sync_error_p: 0.0,
            forced_abort_p: 0.0,
            crash_at: None,
        }
    }

    /// Transient-only faults (no crash): forced aborts and sync errors at
    /// the given rates, seeded.
    pub fn transient(seed: u64, forced_abort_p: f64, wal_sync_error_p: f64) -> Self {
        Self {
            seed,
            forced_abort_p,
            wal_sync_error_p,
            ..Self::none()
        }
    }

    /// A deterministic crash at `point` on its `nth` (1-based) arrival.
    pub fn crash(point: CrashPoint, nth: u64) -> Self {
        Self {
            crash_at: Some((point, nth)),
            ..Self::none()
        }
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// Counters of injected faults, for assertions and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Latency spikes charged to the device.
    pub latency_spikes: u64,
    /// Transient sync errors injected.
    pub sync_errors: u64,
    /// Commits forcibly aborted.
    pub forced_aborts: u64,
    /// 1 once the armed crash point has fired.
    pub crashes: u64,
}

/// The seeded fault source. Shared (`Arc`) between the engine and the WAL.
pub struct FaultInjector {
    config: FaultConfig,
    rng: Mutex<Xoshiro256>,
    crashed: AtomicBool,
    crash_countdown: AtomicU64,
    latency_spikes: AtomicU64,
    sync_errors: AtomicU64,
    forced_aborts: AtomicU64,
    /// Callbacks run exactly once, on the arrival that latches the crash.
    /// The engine registers a hook that wakes its commit-publication gate,
    /// so waiters observe the crash latch without polling.
    crash_hooks: Mutex<Vec<Box<dyn Fn() + Send + Sync>>>,
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultInjector")
            .field("config", &self.config)
            .field("crashed", &self.crashed.load(Ordering::Relaxed))
            .finish()
    }
}

impl FaultInjector {
    /// Creates an injector from a configuration.
    pub fn new(config: FaultConfig) -> Self {
        let countdown = config.crash_at.map(|(_, n)| n.max(1)).unwrap_or(0);
        Self {
            rng: Mutex::new(Xoshiro256::seed_from_u64(config.seed)),
            crashed: AtomicBool::new(false),
            crash_countdown: AtomicU64::new(countdown),
            latency_spikes: AtomicU64::new(0),
            sync_errors: AtomicU64::new(0),
            forced_aborts: AtomicU64::new(0),
            crash_hooks: Mutex::new(Vec::new()),
            config,
        }
    }

    /// Registers a callback to run when the armed crash latches. Used for
    /// targeted wakeups: a crashed committer never notifies its successors,
    /// so the component that parks them registers a hook here instead of
    /// polling the latch.
    pub fn on_crash(&self, hook: Box<dyn Fn() + Send + Sync>) {
        self.crash_hooks.lock().push(hook);
    }

    /// The configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Seeded Bernoulli draw.
    fn roll(&self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        self.rng.lock().next_bool(p)
    }

    /// Extra device stall to charge on this sync, if a spike fires.
    pub fn wal_latency_spike(&self) -> Option<Duration> {
        if self.roll(self.config.wal_latency_spike_p) {
            self.latency_spikes.fetch_add(1, Ordering::Relaxed);
            Some(self.config.wal_latency_spike)
        } else {
            None
        }
    }

    /// True when this device sync should fail transiently.
    pub fn wal_sync_error(&self) -> bool {
        if self.roll(self.config.wal_sync_error_p) {
            self.sync_errors.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// True when this commit should be forcibly aborted.
    pub fn forced_abort(&self) -> bool {
        if self.roll(self.config.forced_abort_p) {
            self.forced_aborts.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Called by the pipeline on arrival at `point`. Returns `true`
    /// exactly once — when the armed countdown for this point reaches
    /// zero — and latches the injector into the crashed state.
    ///
    /// Every arrival is also a scheduling point for the deterministic
    /// simulator ([`crate::sync::sim_yield`]): crash-point probes sit at
    /// exactly the protocol stages whose interleavings matter, so the
    /// cooperative scheduler gets to switch tasks there even when the
    /// probe itself does not fire.
    pub fn at_crash_point(&self, point: CrashPoint) -> bool {
        crate::sync::sim_yield();
        let Some((armed, _)) = self.config.crash_at else {
            return false;
        };
        if armed != point || self.crashed() {
            return false;
        }
        // Decrement; the arrival that takes the countdown 1 -> 0 fires.
        let prev = self.crash_countdown.fetch_sub(1, Ordering::AcqRel);
        if prev == 1 {
            self.crashed.store(true, Ordering::Release);
            for hook in self.crash_hooks.lock().iter() {
                hook();
            }
            true
        } else {
            if prev == 0 {
                // Raced past zero after the crash fired; restore.
                self.crash_countdown.store(0, Ordering::Release);
            }
            false
        }
    }

    /// True once the armed crash has fired: the simulated process is dead
    /// and every subsequent operation must fail.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }

    /// Snapshot of injected-fault counters.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            latency_spikes: self.latency_spikes.load(Ordering::Relaxed),
            sync_errors: self.sync_errors.load(Ordering::Relaxed),
            forced_aborts: self.forced_aborts.load(Ordering::Relaxed),
            crashes: u64::from(self.crashed()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_fault_config_injects_nothing() {
        let f = FaultInjector::new(FaultConfig::none());
        for _ in 0..1000 {
            assert!(f.wal_latency_spike().is_none());
            assert!(!f.wal_sync_error());
            assert!(!f.forced_abort());
            assert!(!f.at_crash_point(CrashPoint::BeforeWalAppend));
        }
        assert!(!f.crashed());
        assert_eq!(f.stats(), FaultStats::default());
    }

    #[test]
    fn rates_are_roughly_respected_and_seeded() {
        let cfg = FaultConfig::transient(42, 0.3, 0.0);
        let f = FaultInjector::new(cfg);
        let fired = (0..10_000).filter(|_| f.forced_abort()).count();
        let frac = fired as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "rate {frac}");
        assert_eq!(f.stats().forced_aborts, fired as u64);

        // Same seed => identical schedule.
        let a = FaultInjector::new(cfg);
        let b = FaultInjector::new(cfg);
        let sa: Vec<bool> = (0..256).map(|_| a.forced_abort()).collect();
        let sb: Vec<bool> = (0..256).map(|_| b.forced_abort()).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn crash_fires_exactly_once_at_the_nth_arrival() {
        let f = FaultInjector::new(FaultConfig::crash(CrashPoint::AfterWalAppend, 3));
        assert!(!f.at_crash_point(CrashPoint::AfterWalAppend));
        // Other points never fire.
        assert!(!f.at_crash_point(CrashPoint::BeforeWalAppend));
        assert!(!f.at_crash_point(CrashPoint::AfterWalAppend));
        assert!(!f.crashed());
        assert!(f.at_crash_point(CrashPoint::AfterWalAppend), "3rd arrival");
        assert!(f.crashed());
        assert!(!f.at_crash_point(CrashPoint::AfterWalAppend), "fires once");
        assert_eq!(f.stats().crashes, 1);
    }

    #[test]
    fn crash_hooks_run_exactly_once_when_the_latch_fires() {
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;
        let f = FaultInjector::new(FaultConfig::crash(CrashPoint::BeforeManifestSwap, 2));
        let fired = Arc::new(AtomicU64::new(0));
        let fired2 = Arc::clone(&fired);
        f.on_crash(Box::new(move || {
            fired2.fetch_add(1, Ordering::SeqCst);
        }));
        assert!(!f.at_crash_point(CrashPoint::BeforeManifestSwap));
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        assert!(f.at_crash_point(CrashPoint::BeforeManifestSwap));
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert!(!f.at_crash_point(CrashPoint::BeforeManifestSwap));
        assert_eq!(fired.load(Ordering::SeqCst), 1, "hooks run once");
    }

    #[test]
    fn every_crash_point_is_listed_with_a_unique_name() {
        let names: Vec<String> = CrashPoint::ALL.iter().map(|p| p.to_string()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), CrashPoint::ALL.len());
        assert!(names.contains(&"during-checkpoint-write".to_string()));
        assert!(names.contains(&"before-manifest-swap".to_string()));
        assert!(names.contains(&"after-manifest-swap-before-truncate".to_string()));
        assert!(names.contains(&"during-page-flush".to_string()));
    }

    #[test]
    fn latency_spike_returns_the_configured_stall() {
        let f = FaultInjector::new(FaultConfig {
            seed: 7,
            wal_latency_spike_p: 1.0,
            wal_latency_spike: Duration::from_millis(3),
            ..FaultConfig::none()
        });
        assert_eq!(f.wal_latency_spike(), Some(Duration::from_millis(3)));
        assert_eq!(f.stats().latency_spikes, 1);
    }
}
