//! Log-bucketed latency histogram.
//!
//! The driver records per-transaction response times; an exact reservoir
//! would be too costly at ~10⁵ commits/s, so we bucket durations into
//! power-of-√2 bins which bounds relative quantile error at ~±20 %.

use std::time::Duration;

const BUCKETS: usize = 128;

/// Fixed-size logarithmic histogram over durations from 1 µs to ~10 min.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum_micros: u128,
    max_micros: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            total: 0,
            sum_micros: 0,
            max_micros: 0,
        }
    }

    fn bucket_for(micros: u64) -> usize {
        if micros == 0 {
            return 0;
        }
        // Two buckets per power of two: index = 2*log2(x) (+1 for upper half).
        let log2 = 63 - micros.leading_zeros() as u64;
        let half = (micros >> (log2.saturating_sub(1))) & 1;
        ((2 * log2 + half) as usize).min(BUCKETS - 1)
    }

    /// Lower bound (µs) of the given bucket; inverse of [`Self::bucket_for`].
    fn bucket_floor(idx: usize) -> u64 {
        if idx == 0 {
            return 0;
        }
        let log2 = (idx / 2) as u32;
        let base = 1u64 << log2;
        if idx % 2 == 0 {
            base
        } else {
            base + (base >> 1)
        }
    }

    /// Records one duration.
    pub fn record(&mut self, d: Duration) {
        let micros = d.as_micros().min(u128::from(u64::MAX)) as u64;
        self.counts[Self::bucket_for(micros)] += 1;
        self.total += 1;
        self.sum_micros += u128::from(micros);
        self.max_micros = self.max_micros.max(micros);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact arithmetic mean of recorded durations.
    pub fn mean(&self) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros((self.sum_micros / u128::from(self.total)) as u64)
    }

    /// Largest recorded duration (exact).
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_micros)
    }

    /// Approximate quantile (`q` in `[0,1]`), accurate to the bucket width.
    pub fn quantile(&self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.total == 0 {
            return Duration::ZERO;
        }
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Duration::from_micros(Self::bucket_floor(i));
            }
        }
        self.max()
    }

    /// Merges another histogram into this one (used to combine per-thread
    /// histograms at the end of a run).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
        self.sum_micros += other.sum_micros;
        self.max_micros = self.max_micros.max(other.max_micros);
    }
}

/// Small linear histogram over non-negative counts (e.g. attempts needed
/// per committed transaction). Values at or above `BINS - 1` share the
/// overflow bin; the exact mean and max are tracked separately.
#[derive(Debug, Clone)]
pub struct CountHistogram {
    bins: [u64; Self::BINS],
    total: u64,
    sum: u128,
    max: u64,
}

impl CountHistogram {
    /// Number of bins; the last is the overflow bin.
    pub const BINS: usize = 32;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            bins: [0; Self::BINS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one count.
    pub fn record(&mut self, value: u64) {
        let idx = (value as usize).min(Self::BINS - 1);
        self.bins[idx] += 1;
        self.total += 1;
        self.sum += u128::from(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact arithmetic mean of recorded counts (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest recorded count.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Samples recorded with exactly this count (the last bin also holds
    /// every larger value).
    pub fn bin(&self, value: u64) -> u64 {
        self.bins[(value as usize).min(Self::BINS - 1)]
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &CountHistogram) {
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += *b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl Default for CountHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_histogram_tracks_mean_max_and_bins() {
        let mut h = CountHistogram::new();
        for v in [1u64, 1, 2, 4] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.bin(1), 2);
        assert_eq!(h.bin(2), 1);
        assert_eq!(h.max(), 4);
        assert!((h.mean() - 2.0).abs() < 1e-12);
        let mut other = CountHistogram::new();
        other.record(100); // overflow bin
        h.merge(&other);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 100);
        assert_eq!(h.bin(CountHistogram::BINS as u64), 1);
    }

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(300));
        assert_eq!(h.mean(), Duration::from_micros(200));
    }

    #[test]
    fn quantiles_are_ordered_and_roughly_right() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_micros(i));
        }
        let p50 = h.quantile(0.5).as_micros() as f64;
        let p99 = h.quantile(0.99).as_micros() as f64;
        assert!(p50 <= p99);
        // Bucketing allows ~±35% error at these widths.
        assert!((300.0..=760.0).contains(&p50), "p50={p50}");
        assert!(p99 >= 700.0, "p99={p99}");
    }

    #[test]
    fn max_is_exact() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_millis(7));
        h.record(Duration::from_micros(12));
        assert_eq!(h.max(), Duration::from_millis(7));
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(1000));
        b.record(Duration::from_micros(2000));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), Duration::from_micros(2000));
    }

    #[test]
    fn bucket_floor_inverts_bucket_for() {
        for micros in [1u64, 2, 3, 5, 8, 100, 1000, 65_536, 1_000_000] {
            let b = LatencyHistogram::bucket_for(micros);
            let floor = LatencyHistogram::bucket_floor(b);
            assert!(
                floor <= micros,
                "floor {floor} should not exceed sample {micros}"
            );
            // And the next bucket's floor should exceed the sample.
            if b + 1 < BUCKETS {
                assert!(LatencyHistogram::bucket_floor(b + 1) > micros);
            }
        }
    }
}
