//! Workload sampling distributions.
//!
//! The paper's driver picks 90 % of customers uniformly from a *hotspot*
//! prefix of the table and the remaining 10 % uniformly from the rest
//! ([`HotspotSampler`]), and picks transaction types from a weighted mix
//! ([`DiscreteDist`]). [`Zipf`] is provided for skew ablations.

use crate::rng::Xoshiro256;

/// The paper's hotspot access distribution (§IV):
/// with probability `p_hot` draw uniformly from `[0, hot_size)`,
/// otherwise draw uniformly from `[hot_size, population)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotspotSampler {
    population: u64,
    hot_size: u64,
    p_hot: f64,
}

impl HotspotSampler {
    /// Creates a sampler over `population` items with a hotspot of
    /// `hot_size` items hit with probability `p_hot`.
    ///
    /// # Panics
    /// Panics if `population == 0`, `hot_size > population`, or `p_hot`
    /// is outside `[0, 1]`.
    pub fn new(population: u64, hot_size: u64, p_hot: f64) -> Self {
        assert!(population > 0, "population must be non-zero");
        assert!(hot_size <= population, "hotspot larger than population");
        assert!((0.0..=1.0).contains(&p_hot), "p_hot must be a probability");
        Self {
            population,
            hot_size,
            p_hot,
        }
    }

    /// The paper's default: 90 % of accesses in the hotspot.
    pub fn paper_default(population: u64, hot_size: u64) -> Self {
        Self::new(population, hot_size, 0.9)
    }

    /// Draws an item index in `[0, population)`.
    pub fn sample(&self, rng: &mut Xoshiro256) -> u64 {
        let cold = self.population - self.hot_size;
        if self.hot_size > 0 && (cold == 0 || rng.next_bool(self.p_hot)) {
            rng.next_below(self.hot_size)
        } else {
            self.hot_size + rng.next_below(cold)
        }
    }

    /// Draws two *distinct* item indices (for transactions such as
    /// Amalgamate that involve two customers).
    pub fn sample_pair(&self, rng: &mut Xoshiro256) -> (u64, u64) {
        assert!(self.population >= 2, "need at least two items for a pair");
        let a = self.sample(rng);
        loop {
            let b = self.sample(rng);
            if b != a {
                return (a, b);
            }
        }
    }

    /// Total number of items.
    pub fn population(&self) -> u64 {
        self.population
    }

    /// Number of items in the hotspot prefix.
    pub fn hot_size(&self) -> u64 {
        self.hot_size
    }
}

/// Weighted discrete distribution over `0..weights.len()`, sampled by
/// inverse-CDF lookup (the support here is ≤ a dozen transaction types, so
/// a linear scan over the cumulative table beats an alias table).
#[derive(Debug, Clone)]
pub struct DiscreteDist {
    cumulative: Vec<f64>,
}

impl DiscreteDist {
    /// Builds the distribution from non-negative weights (not necessarily
    /// normalised).
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative/NaN weight, or
    /// sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weights must be finite and >= 0");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "weights must not all be zero");
        for c in &mut cumulative {
            *c /= acc;
        }
        // Guard against floating-point shortfall at the top end.
        *cumulative.last_mut().expect("non-empty") = 1.0;
        Self { cumulative }
    }

    /// Draws an index in `[0, len)`.
    pub fn sample(&self, rng: &mut Xoshiro256) -> usize {
        let u = rng.next_f64();
        self.cumulative
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.cumulative.len() - 1)
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when the distribution has no categories (never: `new` forbids it).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

/// Zipf(θ) distribution over `[0, n)` using the Gray et al. (SIGMOD '94)
/// computation, precomputing the harmonic normaliser.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// Creates a Zipf sampler over `n` items with skew `theta` in `[0, 1)`
    /// (0 = uniform, 0.99 = the YCSB default heavy skew).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "n must be non-zero");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2: zeta2.max(0.0),
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draws an item in `[0, n)`; item 0 is the most popular.
    pub fn sample(&self, rng: &mut Xoshiro256) -> u64 {
        let _ = self.zeta2; // kept for introspection / debugging
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn hotspot_ratio_matches_p_hot() {
        let s = HotspotSampler::paper_default(18_000, 1_000);
        let mut rng = Xoshiro256::seed_from_u64(1);
        let n = 100_000;
        let hot = (0..n).filter(|_| s.sample(&mut rng) < 1_000).count() as f64;
        let frac = hot / n as f64;
        assert!(
            (frac - 0.9).abs() < 0.01,
            "hot fraction {frac} should be ~0.9"
        );
    }

    #[test]
    fn hotspot_cold_items_are_reachable() {
        let s = HotspotSampler::paper_default(100, 10);
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mut cold_seen = false;
        for _ in 0..10_000 {
            if s.sample(&mut rng) >= 10 {
                cold_seen = true;
                break;
            }
        }
        assert!(cold_seen);
    }

    #[test]
    fn hotspot_degenerate_all_hot() {
        let s = HotspotSampler::new(10, 10, 0.5);
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..1_000 {
            assert!(s.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn hotspot_zero_hot_is_uniform() {
        let s = HotspotSampler::new(10, 0, 0.9);
        let mut rng = Xoshiro256::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..5_000 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn sample_pair_distinct() {
        let s = HotspotSampler::paper_default(10, 2);
        let mut rng = Xoshiro256::seed_from_u64(5);
        for _ in 0..1_000 {
            let (a, b) = s.sample_pair(&mut rng);
            assert_ne!(a, b);
        }
    }

    #[test]
    fn discrete_respects_weights() {
        // The paper's high-contention mix: 60% Balance, 10% each other.
        let d = DiscreteDist::new(&[60.0, 10.0, 10.0, 10.0, 10.0]);
        let mut rng = Xoshiro256::seed_from_u64(6);
        let mut counts = [0u64; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[d.sample(&mut rng)] += 1;
        }
        let f0 = counts[0] as f64 / n as f64;
        assert!((f0 - 0.6).abs() < 0.01, "Balance fraction {f0}");
        for &c in &counts[1..] {
            let f = c as f64 / n as f64;
            assert!((f - 0.1).abs() < 0.01, "minor fraction {f}");
        }
    }

    #[test]
    fn discrete_zero_weight_category_never_drawn() {
        let d = DiscreteDist::new(&[1.0, 0.0, 1.0]);
        let mut rng = Xoshiro256::seed_from_u64(7);
        for _ in 0..10_000 {
            assert_ne!(d.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "weights must not all be zero")]
    fn discrete_rejects_all_zero() {
        let _ = DiscreteDist::new(&[0.0, 0.0]);
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(1_000, 0.99);
        let mut rng = Xoshiro256::seed_from_u64(8);
        let mut head = 0u64;
        let n = 50_000;
        for _ in 0..n {
            let v = z.sample(&mut rng);
            assert!(v < 1_000);
            if v < 10 {
                head += 1;
            }
        }
        // With theta=0.99 the top-10 of 1000 items should absorb a large
        // fraction of the mass (analytically ~0.46 of draws).
        let frac = head as f64 / n as f64;
        assert!(frac > 0.3, "zipf head fraction {frac} too small");
    }

    #[test]
    fn zipf_low_theta_is_flat_ish() {
        let z = Zipf::new(100, 0.01);
        let mut rng = Xoshiro256::seed_from_u64(9);
        let mut top = 0u64;
        let n = 50_000;
        for _ in 0..n {
            if z.sample(&mut rng) == 0 {
                top += 1;
            }
        }
        let frac = top as f64 / n as f64;
        assert!(frac < 0.05, "near-uniform zipf head fraction {frac}");
    }
}
