//! The simulated synchronous-write device.
//!
//! One model serves both durable media in the system: the WAL's log disk
//! and the paged heap's data disk. Keeping it here (rather than in the WAL
//! crate) lets `sicost-storage` charge page reads and write-backs through
//! the very same cost/fault/sim layer the log uses, without a dependency
//! cycle.

use crate::sync::Mutex;
use crate::FaultInjector;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cumulative device statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Number of synchronous flushes performed.
    pub syncs: u64,
    /// Total records flushed.
    pub records: u64,
    /// Total bytes flushed.
    pub bytes: u64,
    /// Largest batch (records per sync) seen.
    pub max_batch: u64,
    /// Syncs that failed with an injected transient error.
    pub sync_errors: u64,
    /// Syncs stretched by an injected latency spike.
    pub latency_spikes: u64,
}

/// A device sync failed transiently: the batch did not reach stable
/// storage and must not be treated as durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncError;

impl fmt::Display for SyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "log device sync failed")
    }
}

impl std::error::Error for SyncError {}

/// A disk whose only operation is a synchronous batched write.
///
/// Cost model: `sync_latency + records * per_record_cost`. The constant term
/// models rotational/seek/flush latency (the dominant term on the paper's
/// 2008 IDE disks with caching off); the linear term models transfer and
/// bounds group-commit throughput so that the WAL is a genuine shared
/// resource, not an infinitely wide one.
///
/// The device serialises its own operations (one head): concurrent `sync`
/// calls queue on an internal mutex, exactly like a real drive.
///
/// With a [`FaultInjector`] attached, a sync may stall for an extra spike
/// duration or fail outright with [`SyncError`]; both draws come from the
/// injector's seeded generator.
#[derive(Debug)]
pub struct LogDevice {
    sync_latency: Duration,
    per_record_cost: Duration,
    stats: Mutex<DeviceStats>,
    busy: Mutex<()>,
    faults: Option<Arc<FaultInjector>>,
}

impl LogDevice {
    /// Creates a device with the given cost parameters.
    pub fn new(sync_latency: Duration, per_record_cost: Duration) -> Self {
        Self {
            sync_latency,
            per_record_cost,
            stats: Mutex::new(DeviceStats::default()),
            busy: Mutex::new(()),
            faults: None,
        }
    }

    /// A zero-cost device for functional tests.
    pub fn instant() -> Self {
        Self::new(Duration::ZERO, Duration::ZERO)
    }

    /// Attaches a fault injector (latency spikes, transient sync errors).
    pub fn with_faults(mut self, faults: Option<Arc<FaultInjector>>) -> Self {
        self.faults = faults;
        self
    }

    /// Synchronously writes a batch of `records` records totalling `bytes`
    /// bytes, blocking the caller for the modelled duration.
    ///
    /// Returns `Err(SyncError)` when the attached fault injector fails this
    /// sync; the batch then never reached stable storage — the caller must
    /// not extend the durable image.
    pub fn sync(&self, records: u64, bytes: u64) -> Result<(), SyncError> {
        let _head = self.busy.lock();
        let mut cost = self.sync_latency + self.per_record_cost * (records as u32);
        let mut spiked = false;
        let mut failed = false;
        if let Some(f) = &self.faults {
            if let Some(spike) = f.wal_latency_spike() {
                cost += spike;
                spiked = true;
            }
            failed = f.wal_sync_error();
        }
        if !cost.is_zero() {
            // Virtual time under the deterministic simulator, wall-clock
            // otherwise.
            crate::sync::sim_sleep(cost);
        }
        let mut s = self.stats.lock();
        s.syncs += 1;
        if spiked {
            s.latency_spikes += 1;
        }
        if failed {
            s.sync_errors += 1;
            return Err(SyncError);
        }
        s.records += records;
        s.bytes += bytes;
        s.max_batch = s.max_batch.max(records);
        Ok(())
    }

    /// Snapshot of cumulative statistics.
    pub fn stats(&self) -> DeviceStats {
        *self.stats.lock()
    }

    /// The fixed per-sync latency.
    pub fn sync_latency(&self) -> Duration {
        self.sync_latency
    }

    /// Measures the wall-clock cost of one sync (test helper).
    pub fn timed_sync(&self, records: u64, bytes: u64) -> Duration {
        let t0 = Instant::now();
        self.sync(records, bytes).expect("sync without faults");
        t0.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultConfig;

    #[test]
    fn instant_device_is_free() {
        let d = LogDevice::instant();
        let dt = d.timed_sync(10, 1000);
        assert!(dt < Duration::from_millis(5), "instant sync took {dt:?}");
        let s = d.stats();
        assert_eq!(s.syncs, 1);
        assert_eq!(s.records, 10);
        assert_eq!(s.bytes, 1000);
        assert_eq!(s.max_batch, 10);
    }

    #[test]
    fn latency_is_charged() {
        let d = LogDevice::new(Duration::from_millis(5), Duration::ZERO);
        let dt = d.timed_sync(1, 100);
        assert!(
            dt >= Duration::from_millis(5),
            "sync returned early: {dt:?}"
        );
    }

    #[test]
    fn per_record_cost_scales_with_batch() {
        let d = LogDevice::new(Duration::ZERO, Duration::from_millis(1));
        let dt = d.timed_sync(8, 100);
        assert!(dt >= Duration::from_millis(8), "batch cost too low: {dt:?}");
    }

    #[test]
    fn stats_accumulate_and_track_max_batch() {
        let d = LogDevice::instant();
        d.sync(3, 30).unwrap();
        d.sync(7, 70).unwrap();
        d.sync(2, 20).unwrap();
        let s = d.stats();
        assert_eq!(s.syncs, 3);
        assert_eq!(s.records, 12);
        assert_eq!(s.bytes, 120);
        assert_eq!(s.max_batch, 7);
    }

    #[test]
    fn device_serialises_concurrent_syncs() {
        let d = Arc::new(LogDevice::new(Duration::from_millis(4), Duration::ZERO));
        let t0 = Instant::now();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let d = Arc::clone(&d);
                std::thread::spawn(move || d.sync(1, 10).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Three serialised 4ms syncs take >= 12ms even with 3 threads.
        assert!(t0.elapsed() >= Duration::from_millis(12));
    }

    #[test]
    fn injected_sync_error_fails_and_excludes_batch_from_stats() {
        let f = Arc::new(FaultInjector::new(FaultConfig::transient(1, 0.0, 1.0)));
        let d = LogDevice::instant().with_faults(Some(Arc::clone(&f)));
        assert_eq!(d.sync(4, 400), Err(SyncError));
        let s = d.stats();
        assert_eq!(s.syncs, 1);
        assert_eq!(s.sync_errors, 1);
        assert_eq!(s.records, 0, "failed batch must not count as written");
        assert_eq!(f.stats().sync_errors, 1);
    }

    #[test]
    fn injected_latency_spike_stalls_the_sync() {
        let f = Arc::new(FaultInjector::new(FaultConfig {
            seed: 2,
            wal_latency_spike_p: 1.0,
            wal_latency_spike: Duration::from_millis(6),
            ..FaultConfig::none()
        }));
        let d = LogDevice::instant().with_faults(Some(f));
        let dt = d.timed_sync(1, 10);
        assert!(dt >= Duration::from_millis(6), "spike not charged: {dt:?}");
        assert_eq!(d.stats().latency_spikes, 1);
    }
}
