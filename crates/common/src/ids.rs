//! Identifier newtypes shared across the engine stack.

use std::fmt;

/// A logical timestamp drawn from the engine's global commit counter.
///
/// Snapshots and version stamps share one monotonically increasing space:
/// a version is visible to a snapshot iff `version.ts <= snapshot.ts`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ts(pub u64);

impl Ts {
    /// The zero timestamp; initial database population commits at `Ts(0)`'s
    /// successor and every snapshot sees it.
    pub const ZERO: Ts = Ts(0);

    /// Next timestamp in the sequence.
    pub fn next(self) -> Ts {
        Ts(self.0 + 1)
    }
}

impl fmt::Display for Ts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts{}", self.0)
    }
}

/// Unique identifier of one transaction execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of a table within a `sicost-storage` catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tbl{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ts_ordering_and_next() {
        assert!(Ts(1) < Ts(2));
        assert_eq!(Ts(1).next(), Ts(2));
        assert_eq!(Ts::ZERO.next(), Ts(1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Ts(7).to_string(), "ts7");
        assert_eq!(TxnId(3).to_string(), "T3");
        assert_eq!(TableId(2).to_string(), "tbl2");
    }
}
