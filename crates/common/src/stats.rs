//! Summary statistics for experiment reporting.
//!
//! The paper repeats each experiment five times and reports the mean with a
//! 95 % confidence interval as an error bar. [`OnlineStats`] accumulates
//! samples with Welford's algorithm and [`ci95_half_width`] applies the
//! Student-t quantile for small sample counts.

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples observed.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Finalises into a [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            n: self.n,
            mean: self.mean(),
            stddev: self.stddev(),
            min: self.min(),
            max: self.max(),
            ci95: ci95_half_width(self.n, self.stddev()),
        }
    }
}

/// Point summary of a repeated measurement: mean ± 95 % CI half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of repeats.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Half-width of the 95 % confidence interval around the mean.
    pub ci95: f64,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1} ± {:.1} (n={})", self.mean, self.ci95, self.n)
    }
}

/// Two-sided 97.5 % Student-t quantiles for ν = 1..=30 degrees of freedom.
const T_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Half-width of the 95 % confidence interval for the mean of `n` samples
/// with sample standard deviation `stddev`. Returns 0 for `n < 2`.
pub fn ci95_half_width(n: u64, stddev: f64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    let df = (n - 1) as usize;
    let t = if df <= T_975.len() {
        T_975[df - 1]
    } else {
        1.96 // normal approximation for large n
    };
    t * stddev / (n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.summary().ci95, 0.0);
    }

    #[test]
    fn mean_and_variance_match_textbook() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4.0; sample variance = 4.0 * 8/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn ci95_five_repeats_uses_t_quantile() {
        // The paper's setting: 5 repeats -> t(4) = 2.776.
        let hw = ci95_half_width(5, 10.0);
        assert!((hw - 2.776 * 10.0 / 5f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn ci95_large_n_uses_normal() {
        let hw = ci95_half_width(1000, 10.0);
        assert!((hw - 1.96 * 10.0 / 1000f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn ci_shrinks_with_repeats() {
        assert!(ci95_half_width(3, 5.0) > ci95_half_width(5, 5.0));
        assert!(ci95_half_width(5, 5.0) > ci95_half_width(10, 5.0));
    }

    #[test]
    fn identical_samples_have_zero_ci() {
        let mut s = OnlineStats::new();
        for _ in 0..5 {
            s.push(42.0);
        }
        let sum = s.summary();
        assert_eq!(sum.mean, 42.0);
        assert_eq!(sum.ci95, 0.0);
    }

    #[test]
    fn summary_display_is_compact() {
        let mut s = OnlineStats::new();
        s.push(10.0);
        s.push(12.0);
        let txt = format!("{}", s.summary());
        assert!(txt.contains("11.0"));
        assert!(txt.contains("n=2"));
    }
}
