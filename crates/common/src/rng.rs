//! Small, fast, deterministic pseudo-random number generators.
//!
//! The workload driver needs per-thread generators that (a) are seedable so
//! experiments replay exactly, (b) are cheap (a few ns per draw), and (c) can
//! be split into independent streams for concurrent client threads. We use
//! [`SplitMix64`] for seeding/stream-splitting and [`Xoshiro256`]
//! (xoshiro256**) as the workhorse generator, following Blackman & Vigna.

/// SplitMix64: a 64-bit mixing generator.
///
/// Primarily used to expand a single `u64` seed into the larger state of
/// [`Xoshiro256`], and to derive independent per-thread seeds. Passes BigCrush
/// when used as a generator in its own right.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the general-purpose generator used throughout the workspace.
///
/// 256 bits of state, period 2^256 − 1, excellent statistical quality, and a
/// `jump` function that advances the stream by 2^128 draws so that concurrent
/// client threads can own provably non-overlapping sub-streams of one seed.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator by expanding `seed` through [`SplitMix64`].
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is the one invalid state; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Derives the `n`-th independent stream of this generator by applying
    /// the 2^128 jump polynomial `n + 1` times to a copy.
    pub fn stream(&self, n: u64) -> Self {
        let mut out = self.clone();
        for _ in 0..=n {
            out.jump();
        }
        out
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below bound must be non-zero");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform draw from the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi as i128 - lo as i128 + 1) as u64;
        lo.wrapping_add(self.next_below(span) as i64)
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Advances the state by 2^128 steps (the xoshiro256 jump polynomial).
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut s = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    s[0] ^= self.s[0];
                    s[1] ^= self.s[1];
                    s[2] ^= self.s[2];
                    s[3] ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c reference implementation.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(first, sm2.next_u64());
        assert_eq!(second, sm2.next_u64());
    }

    #[test]
    fn xoshiro_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        let mut c = Xoshiro256::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = rng.next_below(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn next_below_unbiased_enough() {
        // Chi-squared style sanity bound for 8 buckets over 80k draws.
        let mut rng = Xoshiro256::seed_from_u64(99);
        let mut counts = [0u64; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.next_below(8) as usize] += 1;
        }
        let expect = n as f64 / 8.0;
        for c in counts {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "bucket deviation too large: {dev}");
        }
    }

    #[test]
    fn range_inclusive_hits_bounds() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..10_000 {
            let v = rng.range_inclusive(-3, 3);
            assert!((-3..=3).contains(&v));
            lo_seen |= v == -3;
            hi_seen |= v == 3;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn streams_do_not_collide() {
        let base = Xoshiro256::seed_from_u64(5);
        let mut s0 = base.stream(0);
        let mut s1 = base.stream(1);
        let v0: Vec<u64> = (0..32).map(|_| s0.next_u64()).collect();
        let v1: Vec<u64> = (0..32).map(|_| s1.next_u64()).collect();
        assert_ne!(v0, v1);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256::seed_from_u64(17);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
