//! Small deterministic hashes shared across the workspace.

/// FNV-1a 64-bit hash. Not cryptographic, but it reliably catches torn
/// writes and bit flips in durable frames (WAL records, heap pages), and
/// doubles as the deterministic key-to-page hash for the paged heap —
/// both uses need a stable function with no per-process seeding.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
