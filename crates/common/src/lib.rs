//! Shared utilities for the `sicost` workspace.
//!
//! This crate deliberately has **no external dependencies**: everything the
//! rest of the system needs for deterministic randomness, workload sampling,
//! summary statistics and money arithmetic lives here, so that experiment
//! results are reproducible bit-for-bit from a seed.

#![deny(missing_docs)]

pub mod device;
pub mod dist;
pub mod epoch;
pub mod fault;
pub mod hash;
pub mod histogram;
pub mod ids;
pub mod json;
pub mod money;
pub mod rng;
pub mod stats;
pub mod sync;

pub use device::{DeviceStats, LogDevice, SyncError};
pub use dist::{DiscreteDist, HotspotSampler, Zipf};
pub use fault::{CrashPoint, FaultConfig, FaultInjector, FaultStats};
pub use hash::fnv1a;
pub use histogram::{CountHistogram, LatencyHistogram};
pub use ids::{TableId, Ts, TxnId};
pub use json::{Json, JsonError};
pub use money::Money;
pub use rng::{SplitMix64, Xoshiro256};
pub use stats::{ci95_half_width, OnlineStats, Summary};
pub use sync::{
    clear_sim_hooks, install_sim_hooks, sim_hooks, sim_sleep, sim_spawn, sim_yield, stripe_of,
    InstrumentedMutex, LockStats, LockWait, SimHooks, SimJoinHandle,
};
