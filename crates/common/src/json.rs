//! A minimal JSON document model with a writer and a recursive-descent
//! parser.
//!
//! The workspace builds offline with **zero external crates** (see
//! `DESIGN.md`), so the machine-readable bench reports and trace exports
//! cannot use `serde`. This module provides the small subset of JSON the
//! pipeline needs: a [`Json`] tree, compact and pretty rendering with
//! correct string escaping, and a strict parser for round-trip tests and
//! the `bench_summary` folding step.
//!
//! Numbers are carried as `f64`. Every count the pipeline records fits in
//! the 2^53 exactly-representable integer range, and integral values are
//! rendered without a fractional part so `u64` counts round-trip textually.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Non-finite values render as `null` (JSON has no NaN).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved (the writer emits keys in
    /// the order they were pushed), which keeps golden tests stable.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object built from pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for an integer value.
    pub fn int(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Looks up a key in an object; `None` for other variants or a
    /// missing key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a non-negative integral
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's pairs as a map (for order-insensitive comparisons).
    pub fn as_map(&self) -> Option<BTreeMap<&str, &Json>> {
        match self {
            Json::Obj(pairs) => Some(pairs.iter().map(|(k, v)| (k.as_str(), v)).collect()),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the value with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(pairs) => write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                write_string(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, indent, depth + 1);
            }),
        }
    }

    /// Parses a JSON document. The entire input must be consumed (trailing
    /// whitespace is allowed).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        fmt::write(out, format_args!("{}", n as i64)).expect("string write");
    } else {
        fmt::write(out, format_args!("{n}")).expect("string write");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                fmt::write(out, format_args!("\\u{:04x}", c as u32)).expect("string write");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..(depth + 1) * width {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
    out.push(close);
}

/// Parse failure: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Nesting depth cap; protects the recursive parser from stack overflow
/// on adversarial input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is &str, so the
                    // bytes are valid UTF-8; find the char boundary).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a str");
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits starting at `pos`, advancing past them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a') as u32 + 10,
                Some(c @ b'A'..=b'F') => (c - b'A') as u32 + 10,
                _ => return Err(self.err("expected four hex digits")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-3", "1.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.render(), text, "round-trip of {text}");
        }
    }

    #[test]
    fn integral_floats_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(-1.0).render(), "-1");
        assert_eq!(Json::Num(2.5).render(), "2.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = Json::obj(vec![("z", Json::int(1)), ("a", Json::int(2))]);
        assert_eq!(v.render(), "{\"z\":1,\"a\":2}");
    }

    #[test]
    fn nested_document_round_trips() {
        let text = r#"{"schema":1,"series":[{"label":"SI","points":[{"x":1,"mean":204.5,"n":3}]}],"ok":true,"none":null}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(v.get("schema").and_then(Json::as_u64), Some(1));
        let series = v.get("series").and_then(Json::as_array).unwrap();
        assert_eq!(series[0].get("label").and_then(Json::as_str), Some("SI"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\ back \u{08}\u{0c}\u{1} café ☃";
        let rendered = Json::Str(original.to_string()).render();
        let parsed = Json::parse(&rendered).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
        // Surrogate pair for U+1F600.
        assert_eq!(Json::parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone surrogate");
    }

    #[test]
    fn pretty_printing_is_stable() {
        let v = Json::obj(vec![
            ("a", Json::Arr(vec![Json::int(1), Json::int(2)])),
            ("b", Json::obj(vec![])),
        ]);
        assert_eq!(
            v.pretty(),
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {}\n}"
        );
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "[1 2]",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn as_u64_rejects_non_integral() {
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
    }
}
