//! # sicost — The Cost of Serializability on Snapshot Isolation Platforms
//!
//! A from-scratch reproduction of Alomari, Cahill, Fekete & Röhm (ICDE
//! 2008): a multi-version transaction engine with SI / SSI / S2PL
//! concurrency control, the Static Dependency Graph analysis toolkit
//! with materialization/promotion program transformations, the SmallBank
//! benchmark with all nine strategy variants, an MVSG serializability
//! certifier, and the closed-system driver + harnesses that regenerate
//! every table and figure of the paper's evaluation.
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here under a module name.
//!
//! ```
//! use sicost::core::{Sdg, SfuTreatment};
//! use sicost::smallbank::sdg_spec;
//!
//! // Analyse SmallBank: exactly one dangerous structure (Bal → WC → TS).
//! let sdg = sdg_spec::smallbank_sdg(SfuTreatment::AsLockOnly);
//! assert!(!sdg.is_si_serializable());
//! assert_eq!(sdg.dangerous_structures().len(), 1);
//!
//! // Fix the WT edge by materialization and prove the result safe.
//! let plan = sdg_spec::plan_for(sicost::smallbank::Strategy::MaterializeWT);
//! let (_, fixed) =
//!     sicost::core::verify_safe(&sdg, &plan, SfuTreatment::AsLockOnly).unwrap();
//! assert!(fixed.is_si_serializable());
//! ```

#![warn(missing_docs)]

/// Shared utilities: PRNGs, samplers, statistics, money.
pub mod common {
    pub use sicost_common::*;
}

/// The multi-version row store.
pub mod storage {
    pub use sicost_storage::*;
}

/// Write-ahead logging with group commit.
pub mod wal {
    pub use sicost_wal::*;
}

/// The transaction engine (SI-FUW, SI-FCW, SSI, S2PL).
pub mod engine {
    pub use sicost_engine::*;
}

/// Execution-history capture and MVSG serializability certification.
pub mod mvsg {
    pub use sicost_mvsg::*;
}

/// SDG analysis and program transformations (the paper's contribution).
pub mod core {
    pub use sicost_core::*;
}

/// The SmallBank benchmark.
pub mod smallbank {
    pub use sicost_smallbank::*;
}

/// The anomaly workload corpus and its footprint interpreter.
pub mod workloads {
    pub use sicost_workloads::*;
}

/// The closed-system workload driver.
pub mod driver {
    pub use sicost_driver::*;
}

/// Deterministic simulation runtime and SSI/FCW model checker.
pub mod sim {
    pub use sicost_sim::*;
}

/// Wire-protocol server, TCP and simulated-network transports, and the
/// remote SmallBank client.
pub mod server {
    pub use sicost_server::*;
}
