//! Anomaly hunting with the MVSG certifier: run a concurrent workload,
//! record its execution history, and *prove* whether it was serializable.
//!
//! ```sh
//! cargo run --release --example anomaly_hunt
//! ```

use sicost::driver::{run, RetryPolicy, RunConfig};
use sicost::engine::{CcMode, EngineConfig};
use sicost::mvsg::{History, Mvsg};
use sicost::smallbank::{
    SmallBank, SmallBankConfig, SmallBankDriver, SmallBankWorkload, Strategy, WorkloadParams,
};
use std::sync::Arc;
use std::time::Duration;

fn hunt(label: &str, strategy: Strategy, engine: EngineConfig) -> bool {
    let history = History::new();
    // A tiny, furiously hot bank: 8 customers, every transaction on the
    // same handful of rows — write skew bait.
    let bank = Arc::new(SmallBank::with_observer(
        &SmallBankConfig::small(8),
        engine,
        strategy,
        Some(history.clone() as Arc<dyn sicost::engine::HistoryObserver>),
    ));
    let workload = SmallBankWorkload::new(WorkloadParams {
        customers: 8,
        hotspot: 4,
        p_hot: 0.95,
        mix: sicost::smallbank::MixWeights::uniform(),
    });
    let driver = SmallBankDriver::new(bank, workload);
    let metrics = run(
        &driver,
        &RunConfig::new(8)
            .with_ramp_up(Duration::from_millis(20))
            .with_measure(Duration::from_millis(700))
            .with_seed(0xCAFE)
            .with_retry(RetryPolicy::disabled()),
    );
    let events = history.events();
    let graph = Mvsg::from_events(&events);
    let report = graph.certify();
    println!(
        "{label:<28} commits={:<6} aborts={:<5} events={:<7} serializable={}",
        metrics.commits(),
        metrics.serialization_failures() + metrics.deadlocks(),
        events.len(),
        report.serializable
    );
    if let Some(anomaly) = report.anomaly {
        println!(
            "  -> witness: {anomaly}, cycle of {} edges:",
            report.witness.len()
        );
        for e in &report.witness {
            println!(
                "     {} --{}--> {}  (on {:?})",
                e.from, e.kind, e.to, e.item.1
            );
        }
    }
    report.serializable
}

fn main() {
    println!("hunting anomalies in 0.7s bursts on an 8-customer furnace:\n");
    // Plain SI: with enough concurrency on a tiny table, write skew
    // happens fast and the certifier catches it red-handed.
    let mut caught = false;
    for attempt in 0..5 {
        if !hunt(
            &format!("SI (attempt {})", attempt + 1),
            Strategy::BaseSI,
            EngineConfig::functional(),
        ) {
            caught = true;
            break;
        }
    }
    assert!(caught, "plain SI should produce a non-serializable burst");

    println!();
    // Each fix certifies clean, run after run.
    for (label, strategy, engine) in [
        (
            "PromoteWT-upd",
            Strategy::PromoteWTUpd,
            EngineConfig::functional(),
        ),
        (
            "MaterializeALL",
            Strategy::MaterializeALL,
            EngineConfig::functional(),
        ),
        (
            "SSI engine (unmodified app)",
            Strategy::BaseSI,
            EngineConfig::functional().with_cc(CcMode::Ssi),
        ),
        (
            "S2PL engine (unmodified app)",
            Strategy::BaseSI,
            EngineConfig::functional().with_cc(CcMode::S2pl),
        ),
    ] {
        let ok = hunt(label, strategy, engine);
        assert!(ok, "{label} must certify serializable");
    }
    println!("\nAll guaranteed configurations certified serializable.");
}
