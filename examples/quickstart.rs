//! Quickstart: build a database, run SmallBank transactions, see the SI
//! write-skew hazard, and fix it with one strategy.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sicost::common::Money;
use sicost::core::SfuTreatment;
use sicost::engine::EngineConfig;
use sicost::smallbank::{anomaly, sdg_spec, SmallBank, SmallBankConfig, Strategy};

fn main() {
    // ---------------------------------------------------------------
    // 1. A SmallBank instance on the in-memory SI engine.
    // ---------------------------------------------------------------
    let bank = SmallBank::new(
        &SmallBankConfig::small(100),
        EngineConfig::functional(), // SI / First-Updater-Wins, no simulated costs
        Strategy::BaseSI,
    );
    let alice = sicost::smallbank::schema::customer_name(1);
    let bob = sicost::smallbank::schema::customer_name(2);

    println!("alice's balance: {}", bank.balance(&alice).unwrap());
    bank.deposit_checking(&alice, Money::dollars(100)).unwrap();
    bank.write_check(&alice, Money::dollars(30)).unwrap();
    bank.amalgamate(&alice, &bob).unwrap();
    println!("after deposit + check + amalgamate:");
    println!("  alice: {}", bank.balance(&alice).unwrap());
    println!("  bob:   {}", bank.balance(&bob).unwrap());

    // ---------------------------------------------------------------
    // 2. The hazard: the SDG of the five programs has a dangerous
    //    structure, so SI alone does NOT guarantee serializability.
    // ---------------------------------------------------------------
    let sdg = sdg_spec::smallbank_sdg(SfuTreatment::AsLockOnly);
    println!("\nStatic Dependency Graph of SmallBank:");
    println!("{}", sdg.to_ascii());

    // And it is not just theory — run the concrete interleaving:
    let outcome = anomaly::run_write_skew_script(&bank);
    println!(
        "scripted interleaving under plain SI: anomalous = {}",
        outcome.is_anomalous()
    );
    println!(
        "  Balance saw {:?}, final checking = {} (a penalty no serial order charges)",
        outcome.balance_seen, outcome.final_checking
    );

    // ---------------------------------------------------------------
    // 3. The fix: modify one edge (the paper's cheapest choice), prove
    //    it safe statically, and watch the interleaving get aborted.
    // ---------------------------------------------------------------
    let plan = sdg_spec::plan_for(Strategy::PromoteWTUpd);
    let (_, fixed_sdg) = sicost::core::verify_safe(&sdg, &plan, SfuTreatment::AsLockOnly).unwrap();
    println!(
        "after PromoteWT-upd: dangerous structures = {}",
        fixed_sdg.dangerous_structures().len()
    );

    let fixed_bank = SmallBank::new(
        &SmallBankConfig::small(100),
        EngineConfig::functional(),
        Strategy::PromoteWTUpd,
    );
    let outcome = anomaly::run_write_skew_script(&fixed_bank);
    println!(
        "same interleaving with PromoteWT-upd: anomalous = {} (ts={:?}, wc={:?})",
        outcome.is_anomalous(),
        outcome.ts_result,
        outcome.wc_result,
    );
    assert!(!outcome.is_anomalous());
    println!("\nDone: one identity update bought serializability at ~zero cost.");
}
