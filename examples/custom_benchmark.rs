//! Benchmarking your own workload with the closed-system driver: a
//! three-way engine comparison (SI vs SSI vs S2PL) on a custom
//! read-mostly counter workload with simulated disk and CPU costs.
//!
//! ```sh
//! cargo run --release --example custom_benchmark
//! ```

use sicost::common::{OnlineStats, Xoshiro256};
use sicost::driver::{render_table, run, Outcome, RetryPolicy, RunConfig, Series, Workload};
use sicost::engine::{CcMode, CostModel, Database, EngineConfig};
use sicost::storage::{ColumnDef, ColumnType, Row, TableSchema, Value};
use sicost::wal::WalConfig;
use std::time::Duration;

/// A custom workload: 80% point reads, 20% read-modify-write increments
/// over a small counter table.
struct Counters {
    db: Database,
    table: sicost::common::TableId,
    rows: i64,
}

impl Counters {
    fn new(cc: CcMode) -> Self {
        let engine = EngineConfig {
            cc,
            sfu: sicost::engine::SfuSemantics::LockOnly,
            wal: WalConfig {
                sync_latency: Duration::from_millis(2),
                per_record_cost: Duration::from_micros(50),
                commit_delay: Duration::from_micros(300),
            },
            cost: CostModel {
                cpu_per_op: Duration::from_micros(60),
                cpu_per_commit: Duration::from_micros(120),
                cpu_contention_factor: 0.0,
                contention_knee: 0,
            },
            vacuum: sicost::engine::VacuumPolicy::every_commits(10_000),
            checkpoints: sicost::engine::CheckpointPolicy::disabled(),
            storage: sicost::storage::StoragePolicy::InMemory,
            table_intent_locks: false,
            faults: None,
            shards: EngineConfig::DEFAULT_SHARDS,
            trace_timings: false,
        };
        let db = Database::builder()
            .table(
                TableSchema::new(
                    "Counters",
                    vec![
                        ColumnDef::new("id", ColumnType::Int),
                        ColumnDef::new("n", ColumnType::Int),
                    ],
                    0,
                    vec![],
                )
                .unwrap(),
            )
            .unwrap()
            .config(engine)
            .build();
        let table = db.table_id("Counters").unwrap();
        let rows = 256;
        db.bulk_load(
            table,
            (0..rows).map(|i| Row::new(vec![Value::int(i), Value::int(0)])),
        )
        .unwrap();
        Self { db, table, rows }
    }
}

impl Workload for Counters {
    /// `(is_read, key)`: the sampled request, replayed verbatim on retry.
    type Request = (bool, Value);

    fn kinds(&self) -> Vec<&'static str> {
        vec!["read", "increment"]
    }

    fn sample(&self, rng: &mut Xoshiro256) -> (usize, (bool, Value)) {
        let key = Value::int(rng.next_below(self.rows as u64) as i64);
        let is_read = rng.next_bool(0.8);
        (usize::from(!is_read), (is_read, key))
    }

    fn execute(&self, (is_read, key): &(bool, Value), _attempt: u32) -> Outcome {
        if *is_read {
            let mut tx = self.db.begin();
            let r = tx.read(self.table, key).and_then(|_| tx.commit());
            classify(r.map(|_| ()))
        } else {
            let mut tx = self.db.begin();
            let r = (|| {
                let row = tx.read(self.table, key)?.expect("populated");
                let n = row.int(1);
                tx.update(
                    self.table,
                    key,
                    Row::new(vec![key.clone(), Value::int(n + 1)]),
                )?;
                tx.commit().map(|_| ())
            })();
            classify(r)
        }
    }
}

fn classify(r: Result<(), sicost::engine::TxnError>) -> Outcome {
    match r {
        Ok(()) => Outcome::Committed,
        Err(sicost::engine::TxnError::Deadlock) => Outcome::Deadlock,
        Err(e) if e.is_serialization_failure() => Outcome::SerializationFailure,
        Err(_) => Outcome::ApplicationRollback,
    }
}

fn main() {
    let mpls = [1usize, 4, 8, 16];
    let mut table = Vec::new();
    for cc in [CcMode::SiFirstUpdaterWins, CcMode::Ssi, CcMode::S2pl] {
        let mut series = Series::new(format!("{cc:?}"));
        for &mpl in &mpls {
            let wl = Counters::new(cc);
            let metrics = run(
                &wl,
                &RunConfig::new(mpl)
                    .with_ramp_up(Duration::from_millis(100))
                    .with_measure(Duration::from_millis(600))
                    .with_seed(42)
                    .with_retry(RetryPolicy::disabled()),
            );
            let mut stats = OnlineStats::new();
            stats.push(metrics.tps());
            series.push(mpl as f64, stats.summary());
            println!(
                "{cc:?} mpl={mpl}: {:.0} tps, {} serialization aborts, {} deadlocks, mean latency {:?}",
                metrics.tps(),
                metrics.serialization_failures(),
                metrics.deadlocks(),
                metrics.mean_latency(),
            );
        }
        table.push(series);
    }
    println!("\n{}", render_table("MPL", &table));
    println!(
        "Expected shape: SI and SSI scale with MPL (readers never block; \
         SSI pays a small validation overhead); S2PL trails once readers \
         start queueing behind writers."
    );
}
