//! A tour of the robustness layer: client retries absorbing injected
//! faults, the attempts-vs-goodput report, and crash recovery from a
//! torn write-ahead log.
//!
//! ```sh
//! cargo run --release --example fault_tour
//! ```

use sicost::common::{CrashPoint, FaultConfig, FaultInjector, Ts, Xoshiro256};
use sicost::driver::{retry_report, run, Outcome, RetryPolicy, RunConfig, Workload};
use sicost::engine::{Database, EngineConfig, TxnError};
use sicost::storage::{Catalog, ColumnDef, ColumnType, Row, TableSchema, Value};
use sicost::wal::recover;
use std::sync::Arc;
use std::time::Duration;

/// A single-table increment workload; every row arrives via the WAL.
struct Counters {
    db: Database,
    table: sicost::common::TableId,
    rows: i64,
}

impl Counters {
    fn new(faults: FaultConfig) -> Self {
        let cfg = EngineConfig::functional().with_faults(Arc::new(FaultInjector::new(faults)));
        let db = Database::builder()
            .table(
                TableSchema::new(
                    "C",
                    vec![
                        ColumnDef::new("id", ColumnType::Int),
                        ColumnDef::new("n", ColumnType::Int),
                    ],
                    0,
                    vec![],
                )
                .unwrap(),
            )
            .unwrap()
            .config(cfg)
            .build();
        let table = db.table_id("C").unwrap();
        let rows = 32;
        for i in 0..rows {
            loop {
                let mut tx = db.begin();
                let r = tx
                    .insert(table, Row::new(vec![Value::int(i), Value::int(0)]))
                    .and_then(|_| tx.commit());
                match r {
                    Ok(_) => break,
                    Err(TxnError::Transient(_)) => continue,
                    Err(e) => panic!("setup insert failed hard: {e}"),
                }
            }
        }
        Self { db, table, rows }
    }
}

impl Workload for Counters {
    type Request = Value;

    fn kinds(&self) -> Vec<&'static str> {
        vec!["increment"]
    }

    fn sample(&self, rng: &mut Xoshiro256) -> (usize, Value) {
        (0, Value::int(rng.next_below(self.rows as u64) as i64))
    }

    fn execute(&self, key: &Value, _attempt: u32) -> Outcome {
        let mut tx = self.db.begin();
        let r = (|| {
            let row = tx.read(self.table, key)?.expect("loaded");
            let n = row.int(1);
            tx.update(
                self.table,
                key,
                Row::new(vec![key.clone(), Value::int(n + 1)]),
            )?;
            tx.commit().map(|_| ())
        })();
        match r {
            Ok(()) => Outcome::Committed,
            Err(TxnError::Deadlock) => Outcome::Deadlock,
            Err(TxnError::Transient(_)) => Outcome::TransientFault,
            Err(e) if e.is_serialization_failure() => Outcome::SerializationFailure,
            Err(_) => Outcome::ApplicationRollback,
        }
    }
}

fn main() {
    // ---- Act 1: transient faults rain, the retry layer absorbs them.
    println!("== Act 1: transient faults vs client retry ==\n");
    let wl = Counters::new(FaultConfig::transient(7, 0.20, 0.10));
    let metrics = run(
        &wl,
        &RunConfig::new(4)
            .with_ramp_up(Duration::from_millis(50))
            .with_measure(Duration::from_millis(500))
            .with_seed(42)
            .with_retry(RetryPolicy::paper_default()),
    );
    println!("{}", retry_report(&metrics));
    let stats = wl.db.faults().unwrap().stats();
    println!(
        "injected: {} forced aborts, {} sync errors, {} latency spikes\n",
        stats.forced_aborts, stats.sync_errors, stats.latency_spikes
    );

    // ---- Act 2: the process dies mid-sync; recovery truncates the tear.
    println!("== Act 2: crash during a WAL sync, then recovery ==\n");
    let db = {
        let cfg = EngineConfig::functional().with_faults(Arc::new(FaultInjector::new(
            FaultConfig::crash(CrashPoint::DuringWalSync, 4),
        )));
        Database::builder()
            .table(
                TableSchema::new(
                    "T",
                    vec![
                        ColumnDef::new("id", ColumnType::Int),
                        ColumnDef::new("v", ColumnType::Int),
                    ],
                    0,
                    vec![],
                )
                .unwrap(),
            )
            .unwrap()
            .config(cfg)
            .build()
    };
    let tid = db.table_id("T").unwrap();
    for k in 1..=5 {
        let mut tx = db.begin();
        let r = tx
            .insert(tid, Row::new(vec![Value::int(k), Value::int(k * 10)]))
            .and_then(|_| tx.commit());
        match r {
            Ok(_) => println!("commit key {k}: ok"),
            Err(e) => println!("commit key {k}: {e}"),
        }
    }

    let disk = db.disk_snapshot();
    println!("\ndurable image: {} bytes", disk.len());
    let mut fresh = Catalog::new();
    for t in db.catalog().tables() {
        fresh.create_table(t.schema().clone()).unwrap();
    }
    let (end, scan) = recover(&disk, &fresh, Ts::ZERO).expect("recovery");
    match &scan.truncated {
        Some(t) => println!(
            "recovery truncated a torn tail at byte {} ({})",
            t.offset, t.cause
        ),
        None => println!("log image was clean"),
    }
    println!("{} committed records replayed", scan.records.len());
    let table = fresh.table_by_name("T").unwrap();
    for k in 1..=5 {
        let v = table
            .read_at(&Value::int(k), end)
            .and_then(|v| v.row)
            .map(|r| r.int(1));
        println!("  key {k} after recovery: {v:?}");
    }
}
