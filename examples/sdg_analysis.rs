//! Analysing *your own* application with the SDG toolkit.
//!
//! Models a doctors-on-call roster (the canonical write-skew example from
//! Cahill et al.): each `TakeBreak(d)` checks that at least two doctors
//! are on call and then sets doctor `d` off call; `Roster()` reads the
//! whole table. Two concurrent `TakeBreak`s can leave zero doctors on
//! call under SI.
//!
//! ```sh
//! cargo run --release --example sdg_analysis
//! ```

use sicost::core::{
    minimal_edge_cover, verify_safe, Access, AccessMode, EdgeCost, KeySpec, Program, Sdg,
    SfuTreatment, StrategyPlan, Technique,
};

fn main() {
    // TakeBreak(d): predicate-read of the on-call set, write of one row.
    let take_break = Program::new(
        "TakeBreak",
        ["D"],
        vec![
            Access {
                table: "Doctors".into(),
                key: KeySpec::Predicate("oncall = true".into()),
                mode: AccessMode::Read,
            },
            Access::write("Doctors", "D"),
        ],
    );
    // Roster(): read-only report over the same predicate.
    let roster = Program::new(
        "Roster",
        [],
        vec![Access {
            table: "Doctors".into(),
            key: KeySpec::Predicate("oncall = true".into()),
            mode: AccessMode::Read,
        }],
    );

    let mix = vec![take_break, roster];
    let sdg = Sdg::build(&mix, SfuTreatment::AsLockOnly);
    println!("SDG for the on-call roster application:");
    println!("{}", sdg.to_ascii());
    assert!(!sdg.is_si_serializable(), "two TakeBreaks write-skew");

    // Let the solver choose the cheapest edges to fix. The read-only
    // Roster program is penalised, so the TakeBreak self-edge is picked.
    let solution = minimal_edge_cover(&sdg, EdgeCost::default());
    println!(
        "minimal edge cover ({}, cost {:.0}):",
        if solution.optimal {
            "optimal"
        } else {
            "greedy"
        },
        solution.cost
    );
    let mut picks = Vec::new();
    for &ei in &solution.edges {
        let e = &sdg.edges()[ei];
        let from = &sdg.programs()[e.from].name;
        let to = &sdg.programs()[e.to].name;
        println!("  fix edge {from} --v--> {to}");
        picks.push((from.clone(), to.clone()));
    }

    // The vulnerable read is a predicate read, so promotion is rejected
    // and materialization is required (§II-C) — the toolkit knows:
    let promote = StrategyPlan {
        picks: picks
            .iter()
            .map(|(f, t)| sicost::core::EdgePick {
                from: f.clone(),
                to: t.clone(),
                technique: Technique::PromoteUpdate,
            })
            .collect(),
    };
    match verify_safe(&sdg, &promote, SfuTreatment::AsLockOnly) {
        Err(e) => println!("promotion correctly rejected: {e}"),
        Ok(_) => unreachable!("predicate reads cannot be promoted"),
    }

    let materialize = StrategyPlan {
        picks: picks
            .iter()
            .map(|(f, t)| sicost::core::EdgePick {
                from: f.clone(),
                to: t.clone(),
                technique: Technique::Materialize,
            })
            .collect(),
    };
    let (modified, fixed) = verify_safe(&sdg, &materialize, SfuTreatment::AsLockOnly).unwrap();
    println!("\nafter materialization:");
    println!("{}", fixed.to_ascii());
    assert!(fixed.is_si_serializable());
    println!("modified programs:");
    for p in &modified {
        println!("  {}:", p.name);
        for a in &p.accesses {
            println!("    {a}");
        }
    }

    // Or skip all of the above and let the advisor do the whole loop:
    // analyse → choose edges → choose techniques → apply → re-verify.
    println!("\n--- one-call advisor ---");
    let advice = sicost::core::advise(&mix, SfuTreatment::AsLockOnly, EdgeCost::default());
    print!("{}", advice.report());
    assert!(advice.verified.is_si_serializable());
}
