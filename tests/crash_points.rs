//! Crash-point recovery, end-to-end: a simulated crash is armed at each
//! stage of the commit pipeline, the engine runs until it dies, and the
//! durable byte image is recovered into a fresh catalog. The contract at
//! every point: transactions whose redo record reached the log before the
//! crash are durable; transactions that never finished the WAL append are
//! completely absent; a record torn mid-sync is truncated, never replayed.

use sicost::common::{CrashPoint, FaultConfig, FaultInjector, Ts};
use sicost::engine::{Database, EngineConfig, TxnError};
use sicost::storage::{Catalog, ColumnDef, ColumnType, Row, TableSchema, Value};
use sicost::wal::{recover, DecodeError, ScanResult};
use std::sync::Arc;

fn fresh_db(crash: Option<(CrashPoint, u64)>) -> Database {
    let mut cfg = EngineConfig::functional();
    if let Some((point, nth)) = crash {
        cfg = cfg.with_faults(Arc::new(FaultInjector::new(FaultConfig::crash(point, nth))));
    }
    Database::builder()
        .table(
            TableSchema::new(
                "T",
                vec![
                    ColumnDef::new("id", ColumnType::Int),
                    ColumnDef::new("v", ColumnType::Int),
                ],
                0,
                vec![],
            )
            .unwrap(),
        )
        .unwrap()
        .config(cfg)
        .build()
}

/// One single-key writing transaction. All state flows through the WAL
/// (no bulk load), so recovery starts from an empty catalog.
fn put(db: &Database, k: i64, v: i64) -> Result<Ts, TxnError> {
    let tid = db.table_id("T").unwrap();
    let mut tx = db.begin();
    let key = Value::int(k);
    let row = Row::new(vec![key.clone(), Value::int(v)]);
    if tx.read(tid, &key)?.is_some() {
        tx.update(tid, &key, row)?;
    } else {
        tx.insert(tid, row)?;
    }
    tx.commit()
}

/// A two-key writing transaction (so `MidInstall` has a torn half).
fn put_pair(db: &Database, ka: i64, kb: i64, v: i64) -> Result<Ts, TxnError> {
    let tid = db.table_id("T").unwrap();
    let mut tx = db.begin();
    tx.insert(tid, Row::new(vec![Value::int(ka), Value::int(v)]))?;
    tx.insert(tid, Row::new(vec![Value::int(kb), Value::int(v)]))?;
    tx.commit()
}

/// Recovers the durable byte image into a fresh catalog.
fn recovered(db: &Database) -> (Catalog, Ts, ScanResult) {
    let mut fresh = Catalog::new();
    for t in db.catalog().tables() {
        fresh.create_table(t.schema().clone()).unwrap();
    }
    let disk = db.disk_snapshot();
    let (end, scan) = recover(&disk, &fresh, Ts::ZERO).expect("recovery replays");
    (fresh, end, scan)
}

fn rec_read(cat: &Catalog, end: Ts, k: i64) -> Option<i64> {
    cat.table_by_name("T")
        .unwrap()
        .read_at(&Value::int(k), end)
        .and_then(|v| v.row)
        .map(|r| r.int(1))
}

fn live_read(db: &Database, k: i64) -> Option<i64> {
    let tid = db.table_id("T").unwrap();
    db.catalog()
        .table(tid)
        .read_at(&Value::int(k), db.clock())
        .and_then(|v| v.row)
        .map(|r| r.int(1))
}

#[test]
fn crash_before_wal_append_leaves_the_transaction_absent() {
    let db = fresh_db(Some((CrashPoint::BeforeWalAppend, 3)));
    assert!(put(&db, 1, 10).is_ok());
    assert!(put(&db, 2, 20).is_ok());
    let err = put(&db, 3, 30).unwrap_err();
    assert!(matches!(err, TxnError::Transient(_)), "{err:?}");
    assert!(db.crashed());
    // The dead process rejects everything from now on.
    assert!(matches!(put(&db, 4, 40), Err(TxnError::Transient(_))));
    assert_eq!(db.faults().unwrap().stats().crashes, 1);

    let (cat, end, scan) = recovered(&db);
    assert!(scan.truncated.is_none(), "nothing was torn");
    assert_eq!(rec_read(&cat, end, 1), Some(10));
    assert_eq!(rec_read(&cat, end, 2), Some(20));
    assert_eq!(rec_read(&cat, end, 3), None, "never reached the log");
    assert_eq!(rec_read(&cat, end, 4), None);
}

#[test]
fn crash_during_wal_sync_tears_the_tail_and_recovery_truncates_it() {
    let db = fresh_db(Some((CrashPoint::DuringWalSync, 3)));
    assert!(put(&db, 1, 10).is_ok());
    assert!(put(&db, 2, 20).is_ok());
    let err = put(&db, 3, 30).unwrap_err();
    assert!(matches!(err, TxnError::Transient(_)), "{err:?}");
    assert!(db.crashed());

    let (cat, end, scan) = recovered(&db);
    let t = scan.truncated.expect("the torn tail must be detected");
    assert!(
        matches!(
            t.cause,
            DecodeError::TruncatedHeader
                | DecodeError::TruncatedPayload
                | DecodeError::ChecksumMismatch
        ),
        "{:?}",
        t.cause
    );
    assert_eq!(scan.records.len(), 2, "only the intact prefix replays");
    assert_eq!(rec_read(&cat, end, 1), Some(10));
    assert_eq!(rec_read(&cat, end, 2), Some(20));
    assert_eq!(rec_read(&cat, end, 3), None, "torn record must not replay");
}

#[test]
fn crash_after_wal_append_is_durable_despite_the_client_error() {
    let db = fresh_db(Some((CrashPoint::AfterWalAppend, 3)));
    assert!(put(&db, 1, 10).is_ok());
    assert!(put(&db, 2, 20).is_ok());
    // The client saw a failure...
    assert!(matches!(put(&db, 3, 30), Err(TxnError::Transient(_))));
    // ...and the crashed process never exposed the write...
    assert_eq!(live_read(&db, 3), None);
    // ...but the record is durable, so recovery resurrects it. This is
    // the classic "unknown outcome": the commit point is the WAL append.
    let (cat, end, scan) = recovered(&db);
    assert!(scan.truncated.is_none());
    assert_eq!(rec_read(&cat, end, 3), Some(30));
}

#[test]
fn crash_mid_install_is_invisible_live_and_complete_after_recovery() {
    let db = fresh_db(Some((CrashPoint::MidInstall, 3)));
    assert!(put(&db, 1, 10).is_ok());
    assert!(put(&db, 2, 20).is_ok());
    // Two writes; the crash installs only the first half.
    assert!(matches!(
        put_pair(&db, 30, 31, 7),
        Err(TxnError::Transient(_))
    ));
    // The torn prefix must stay invisible: the clock never advanced, so
    // no snapshot can observe half a transaction.
    assert_eq!(live_read(&db, 30), None);
    assert_eq!(live_read(&db, 31), None);
    // The log is complete — recovery restores the whole transaction.
    let (cat, end, scan) = recovered(&db);
    assert!(scan.truncated.is_none());
    assert_eq!(rec_read(&cat, end, 30), Some(7));
    assert_eq!(rec_read(&cat, end, 31), Some(7));
}

#[test]
fn crash_after_install_preserves_the_acknowledged_commit() {
    let db = fresh_db(Some((CrashPoint::AfterInstall, 3)));
    assert!(put(&db, 1, 10).is_ok());
    assert!(put(&db, 2, 20).is_ok());
    // The commit fully happened — the client got an acknowledgement.
    assert!(put(&db, 3, 30).is_ok());
    assert!(db.crashed(), "the crash latches right after the ack");
    assert!(matches!(put(&db, 4, 40), Err(TxnError::Transient(_))));

    let (cat, end, scan) = recovered(&db);
    assert!(scan.truncated.is_none());
    assert_eq!(rec_read(&cat, end, 1), Some(10));
    assert_eq!(rec_read(&cat, end, 2), Some(20));
    assert_eq!(rec_read(&cat, end, 3), Some(30), "acked commits survive");
    assert_eq!(rec_read(&cat, end, 4), None);
}

#[test]
fn updates_and_overwrites_recover_to_the_latest_committed_image() {
    // No crash armed: hammer one key, then recover and compare.
    let db = fresh_db(None);
    for v in 0..10 {
        assert!(put(&db, 1, v).is_ok());
    }
    let (cat, end, scan) = recovered(&db);
    assert!(scan.truncated.is_none());
    assert_eq!(scan.records.len(), 10);
    assert_eq!(rec_read(&cat, end, 1), Some(9));
    assert_eq!(rec_read(&cat, end, 1), live_read(&db, 1));
}

#[test]
fn a_chopped_disk_image_recovers_its_intact_prefix() {
    let db = fresh_db(None);
    assert!(put(&db, 1, 10).is_ok());
    assert!(put(&db, 2, 20).is_ok());
    assert!(put(&db, 3, 30).is_ok());
    let mut disk = db.disk_snapshot();
    // Simulate a crash that lost the end of the last device write.
    disk.truncate(disk.len() - 5);

    let mut fresh = Catalog::new();
    for t in db.catalog().tables() {
        fresh.create_table(t.schema().clone()).unwrap();
    }
    let (end, scan) = recover(&disk, &fresh, Ts::ZERO).unwrap();
    let t = scan.truncated.expect("chopped tail detected");
    assert!(matches!(
        t.cause,
        DecodeError::TruncatedHeader | DecodeError::TruncatedPayload
    ));
    assert_eq!(scan.records.len(), 2);
    assert_eq!(rec_read(&fresh, end, 2), Some(20));
    assert_eq!(rec_read(&fresh, end, 3), None);
}

#[test]
fn a_corrupt_byte_mid_log_hides_everything_after_it() {
    let db = fresh_db(None);
    assert!(put(&db, 1, 10).is_ok());
    assert!(put(&db, 2, 20).is_ok());
    assert!(put(&db, 3, 30).is_ok());
    let mut disk = db.disk_snapshot();
    // Flip a byte inside the *second* record's frame.
    let first_len = {
        let scan = sicost::wal::scan_log(&disk);
        assert_eq!(scan.records.len(), 3);
        let mut one = Vec::new();
        scan.records[0].encode_into(&mut one);
        one.len()
    };
    disk[first_len + sicost::wal::FRAME_HEADER] ^= 0xff;

    let mut fresh = Catalog::new();
    for t in db.catalog().tables() {
        fresh.create_table(t.schema().clone()).unwrap();
    }
    let (end, scan) = recover(&disk, &fresh, Ts::ZERO).unwrap();
    assert_eq!(scan.truncated.unwrap().cause, DecodeError::ChecksumMismatch);
    assert_eq!(
        scan.records.len(),
        1,
        "frame boundaries past the corrupt record are untrusted"
    );
    assert_eq!(rec_read(&fresh, end, 1), Some(10));
    assert_eq!(rec_read(&fresh, end, 2), None);
    assert_eq!(rec_read(&fresh, end, 3), None);
}
