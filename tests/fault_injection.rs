//! Fault injection under concurrency, end-to-end: seeded transient
//! faults (forced aborts, WAL sync errors) rain on a running system while
//! the client retry layer absorbs them. The contracts: goodput declines
//! with the fault rate but never collapses to zero; committed state is
//! never corrupted or lost (the durable log replays to exactly the live
//! state); and the serializability guarantee is unaffected by faults.

use sicost::common::{FaultConfig, FaultInjector, Ts, Xoshiro256};
use sicost::driver::{run, Outcome, RetryPolicy, RunConfig, Workload};
use sicost::engine::{CcMode, Database, EngineConfig, TxnError};
use sicost::mvsg::{History, Mvsg};
use sicost::smallbank::{
    MixWeights, SmallBank, SmallBankConfig, SmallBankDriver, SmallBankWorkload, Strategy,
    WorkloadParams,
};
use sicost::storage::{Catalog, ColumnDef, ColumnType, Predicate, Row, TableSchema, Value};
use std::sync::Arc;
use std::time::Duration;

/// A tiny increment workload over one counter table. All rows are loaded
/// through committed transactions (never `bulk_load`), so the WAL holds
/// the complete history and recovery can start from an empty catalog.
struct Counters {
    db: Database,
    table: sicost::common::TableId,
    rows: i64,
}

impl Counters {
    fn new(faults: FaultConfig) -> Self {
        let cfg = EngineConfig::functional().with_faults(Arc::new(FaultInjector::new(faults)));
        let db = Database::builder()
            .table(
                TableSchema::new(
                    "C",
                    vec![
                        ColumnDef::new("id", ColumnType::Int),
                        ColumnDef::new("n", ColumnType::Int),
                    ],
                    0,
                    vec![],
                )
                .unwrap(),
            )
            .unwrap()
            .config(cfg)
            .build();
        let table = db.table_id("C").unwrap();
        let rows = 64;
        for i in 0..rows {
            // The injector is already live during setup: retry until the
            // insert survives whatever transient faults it draws.
            loop {
                let mut tx = db.begin();
                let r = tx
                    .insert(table, Row::new(vec![Value::int(i), Value::int(0)]))
                    .and_then(|_| tx.commit());
                match r {
                    Ok(_) => break,
                    Err(TxnError::Transient(_)) => continue,
                    Err(e) => panic!("setup insert failed hard: {e}"),
                }
            }
        }
        Self { db, table, rows }
    }
}

impl Workload for Counters {
    type Request = Value;

    fn kinds(&self) -> Vec<&'static str> {
        vec!["increment"]
    }

    fn sample(&self, rng: &mut Xoshiro256) -> (usize, Value) {
        (0, Value::int(rng.next_below(self.rows as u64) as i64))
    }

    fn execute(&self, key: &Value, _attempt: u32) -> Outcome {
        let mut tx = self.db.begin();
        let r = (|| {
            let row = tx.read(self.table, key)?.expect("loaded");
            let n = row.int(1);
            tx.update(
                self.table,
                key,
                Row::new(vec![key.clone(), Value::int(n + 1)]),
            )?;
            tx.commit().map(|_| ())
        })();
        match r {
            Ok(()) => Outcome::Committed,
            Err(TxnError::Deadlock) => Outcome::Deadlock,
            Err(TxnError::Transient(_)) => Outcome::TransientFault,
            Err(e) if e.is_serialization_failure() => Outcome::SerializationFailure,
            Err(_) => Outcome::ApplicationRollback,
        }
    }
}

fn faulty_run(faults: FaultConfig, measure: Duration) -> (Counters, sicost::driver::RunMetrics) {
    let wl = Counters::new(faults);
    let metrics = run(
        &wl,
        &RunConfig::new(4)
            .with_ramp_up(Duration::from_millis(20))
            .with_measure(measure)
            .with_seed(0xFA_17)
            .with_retry(RetryPolicy::paper_default()),
    );
    (wl, metrics)
}

#[test]
fn retry_absorbs_transient_faults_without_losing_committed_state() {
    let (wl, metrics) = faulty_run(
        FaultConfig::transient(0xFA, 0.15, 0.10),
        Duration::from_millis(300),
    );
    assert!(metrics.commits() > 0, "goodput must survive the faults");
    assert!(
        metrics.transient_faults() > 0,
        "at these rates the run must observe injected faults"
    );
    // 10 attempts at ~25% failure each would put give-ups at ~1e-6 per
    // op if attempts failed independently — but a sync error fails a
    // whole group-commit batch at once, so one op's retries can land in
    // correlated failing batches on a loaded host. Allow stragglers,
    // not a systematic failure to absorb the fault rate.
    assert!(
        metrics.give_ups() <= 2,
        "the budget must absorb this fault rate: {} give-ups",
        metrics.give_ups()
    );
    assert!(metrics.retries_per_commit() > 0.0);
    let stats = wl.db.faults().unwrap().stats();
    assert!(stats.forced_aborts > 0);
    assert!(stats.sync_errors > 0);
    assert_eq!(stats.crashes, 0);

    // No lost or phantom commits: the durable image is clean (failed
    // sync batches left no bytes behind) and replays to exactly the
    // committed live state.
    let disk = wl.db.disk_snapshot();
    let scan = sicost::wal::scan_log(&disk);
    assert!(
        scan.truncated.is_none(),
        "sync errors must not tear the log"
    );
    assert_eq!(
        scan.records,
        wl.db.log_snapshot(),
        "disk and in-memory log agree"
    );

    let mut fresh = Catalog::new();
    for t in wl.db.catalog().tables() {
        fresh.create_table(t.schema().clone()).unwrap();
    }
    let (end, _) = sicost::wal::recover(&disk, &fresh, Ts::ZERO).unwrap();
    let live = wl.db.catalog().table(wl.table);
    let rec = fresh.table_by_name("C").unwrap();
    let mut rows = 0;
    live.scan_at(wl.db.clock(), &Predicate::True, |pk, row, _| {
        rows += 1;
        let r = rec
            .read_at(pk, end)
            .unwrap_or_else(|| panic!("{pk} missing after recovery"))
            .row
            .expect("live row");
        assert_eq!(r.cells(), row.cells(), "{pk} diverged after recovery");
    });
    assert_eq!(rows, wl.rows as usize);
    assert_eq!(rec.count_at(end), rows);
}

#[test]
fn goodput_declines_with_the_fault_rate_but_never_collapses() {
    let mut commits = Vec::new();
    let mut fault_rate = Vec::new();
    for &p in &[0.0, 0.4, 0.8] {
        let (_, m) = faulty_run(
            FaultConfig::transient(0x60, p, 0.0),
            Duration::from_millis(250),
        );
        assert!(m.commits() > 0, "p={p}: retry must preserve progress");
        commits.push(m.commits());
        // Absolute fault counts drop at high rates (backoff sleeps eat
        // the attempt budget); the per-attempt rate is what tracks `p`.
        fault_rate.push(m.transient_faults() as f64 / m.attempts() as f64);
    }
    assert_eq!(fault_rate[0], 0.0);
    assert!(
        fault_rate[1] > 0.2 && fault_rate[2] > fault_rate[1] + 0.2,
        "per-attempt fault rate must track the configured rate: {fault_rate:?}"
    );
    // Goodput ordering, with slack for scheduler noise: a 0.8 abort rate
    // costs real throughput relative to a fault-free run.
    assert!(
        (commits[2] as f64) < commits[0] as f64 * 0.75,
        "faults are not free: {commits:?}"
    );
}

#[test]
fn smallbank_under_faults_with_retry_still_certifies_serializable() {
    let history = History::new();
    let engine = EngineConfig::functional()
        .with_cc(CcMode::Ssi)
        .with_faults(Arc::new(FaultInjector::new(FaultConfig::transient(
            0x5B, 0.10, 0.05,
        ))));
    let bank = Arc::new(SmallBank::with_observer(
        &SmallBankConfig::small(8),
        engine,
        Strategy::BaseSI,
        Some(history.clone() as Arc<dyn sicost::engine::HistoryObserver>),
    ));
    let driver = SmallBankDriver::new(
        Arc::clone(&bank),
        SmallBankWorkload::new(WorkloadParams {
            customers: 8,
            hotspot: 4,
            p_hot: 0.95,
            mix: MixWeights::uniform(),
        }),
    );
    let metrics = run(
        &driver,
        &RunConfig::new(8)
            .with_ramp_up(Duration::from_millis(10))
            .with_measure(Duration::from_millis(300))
            .with_seed(0x5EED)
            .with_retry(RetryPolicy::paper_default()),
    );
    assert!(metrics.commits() > 0);
    assert!(metrics.transient_faults() > 0, "faults must have fired");
    let graph = Mvsg::from_events(&history.events());
    assert!(
        graph.is_serializable(),
        "injected faults must never weaken the serializability guarantee"
    );
}
