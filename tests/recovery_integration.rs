//! Crash-recovery integration: after a concurrent SmallBank run, replaying
//! the WAL into a fresh catalog must reproduce the committed state
//! exactly — every balance of every customer.

use sicost::common::{Ts, TxnId, Xoshiro256};
use sicost::driver::{run, RetryPolicy, RunConfig};
use sicost::engine::EngineConfig;
use sicost::smallbank::{
    schema::customer_name, SmallBank, SmallBankConfig, SmallBankDriver, SmallBankWorkload,
    Strategy, WorkloadParams,
};
use sicost::storage::{Catalog, Predicate, Row, Value, Version};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn wal_replay_reproduces_every_balance() {
    let config = SmallBankConfig::small(64);
    let bank = Arc::new(SmallBank::new(
        &config,
        EngineConfig::functional(),
        Strategy::MaterializeALL, // exercises all four tables in the log
    ));
    let driver = SmallBankDriver::new(
        Arc::clone(&bank),
        SmallBankWorkload::new(WorkloadParams::paper_default().scaled(64, 8)),
    );
    let metrics = run(
        &driver,
        &RunConfig::new(6)
            .with_ramp_up(Duration::from_millis(20))
            .with_measure(Duration::from_millis(400))
            .with_seed(0x4EC)
            .with_retry(RetryPolicy::disabled()),
    );
    assert!(metrics.commits() > 50, "need a meaningful log");

    // Rebuild: fresh catalog with the same schema, re-seeded with the
    // same bulk-load data (bulk load bypasses the WAL, like COPY), then
    // replay the redo log on top.
    let db = bank.db();
    let log = db.log_snapshot();
    assert!(!log.is_empty());

    let mut fresh = Catalog::new();
    for table in db.catalog().tables() {
        fresh.create_table(table.schema().clone()).unwrap();
    }
    // Reproduce the deterministic population (same seed => same rows).
    let mut rng = Xoshiro256::seed_from_u64(config.seed);
    let n = config.customers;
    let account = fresh.table_by_name("Account").unwrap().clone();
    for i in 0..n {
        account
            .install(
                &Value::str(customer_name(i)),
                Version::data(
                    Ts(1),
                    TxnId(u64::MAX),
                    Row::new(vec![Value::str(customer_name(i)), Value::int(i as i64)]),
                ),
            )
            .unwrap();
    }
    let (slo, shi) = config.savings_range;
    let saving = fresh.table_by_name("Saving").unwrap().clone();
    for i in 0..n {
        saving
            .install(
                &Value::int(i as i64),
                Version::data(
                    Ts(2),
                    TxnId(u64::MAX),
                    Row::new(vec![
                        Value::int(i as i64),
                        Value::int(rng.range_inclusive(slo, shi)),
                    ]),
                ),
            )
            .unwrap();
    }
    let (clo, chi) = config.checking_range;
    let checking = fresh.table_by_name("Checking").unwrap().clone();
    for i in 0..n {
        checking
            .install(
                &Value::int(i as i64),
                Version::data(
                    Ts(3),
                    TxnId(u64::MAX),
                    Row::new(vec![
                        Value::int(i as i64),
                        Value::int(rng.range_inclusive(clo, chi)),
                    ]),
                ),
            )
            .unwrap();
    }
    let conflict = fresh.table_by_name("Conflict").unwrap().clone();
    for i in 0..n {
        conflict
            .install(
                &Value::int(i as i64),
                Version::data(
                    Ts(4),
                    TxnId(u64::MAX),
                    Row::new(vec![Value::int(i as i64), Value::int(0)]),
                ),
            )
            .unwrap();
    }

    let end = sicost::wal::replay(&log, &fresh, Ts(4)).expect("replay succeeds");

    // Compare every row of every table between live and recovered.
    let live_ts = db.clock();
    for table in db.catalog().tables() {
        let recovered = fresh.table_by_name(&table.schema().name).unwrap();
        let mut rows = 0;
        table.scan_at(live_ts, &Predicate::True, |pk, row, _| {
            rows += 1;
            let rec = recovered
                .read_at(pk, end)
                .unwrap_or_else(|| panic!("{}.{pk} missing after replay", table.schema().name))
                .row
                .expect("live row");
            assert_eq!(
                rec.cells(),
                row.cells(),
                "{}.{pk} diverged after replay",
                table.schema().name
            );
        });
        assert_eq!(
            recovered.count_at(end),
            rows,
            "{} row count diverged",
            table.schema().name
        );
    }
}
