//! Vacuum correctness and effectiveness under the full engine stack:
//! bounded memory growth when the policy daemon runs, and — the safety
//! side — no version visible to a live snapshot is ever reclaimed.

use sicost::driver::{run, RetryPolicy, RunConfig};
use sicost::engine::{CcMode, Database, EngineConfig, VacuumPolicy};
use sicost::smallbank::{
    SmallBank, SmallBankConfig, SmallBankDriver, SmallBankWorkload, Strategy, WorkloadParams,
};
use sicost::storage::{ColumnDef, ColumnType, Row, TableSchema, Value};
use std::sync::Arc;
use std::time::Duration;

/// Drives a seeded SSI SmallBank run in two phases and returns the
/// engine's (max chain length, SIREAD entries) gauge after each.
fn two_phase_gauges(vacuum: VacuumPolicy, seed: u64) -> [(u64, u64); 2] {
    let engine = EngineConfig::functional()
        .with_cc(CcMode::Ssi)
        .with_vacuum(vacuum);
    let bank = Arc::new(SmallBank::new(
        &SmallBankConfig::small(64),
        engine,
        Strategy::BaseSI,
    ));
    let driver = SmallBankDriver::new(
        Arc::clone(&bank),
        SmallBankWorkload::new(WorkloadParams::paper_default().scaled(64, 8)),
    );
    let mut gauges = [(0, 0); 2];
    for (phase, gauge) in gauges.iter_mut().enumerate() {
        let metrics = run(
            &driver,
            &RunConfig::new(4)
                .with_ramp_up(Duration::from_millis(10))
                .with_measure(Duration::from_millis(200))
                .with_seed(seed + phase as u64)
                .with_retry(RetryPolicy::disabled()),
        );
        assert!(metrics.commits() > 20, "phase {phase} barely progressed");
        let m = bank.db().metrics();
        *gauge = (m.max_chain_len, m.siread_entries);
    }
    gauges
}

#[test]
fn gc_bounds_chains_and_sireads_where_no_gc_grows_them() {
    let off = two_phase_gauges(VacuumPolicy::disabled(), 0xCC0);
    let on = two_phase_gauges(VacuumPolicy::every_commits(200), 0xCC0);
    // Without GC both gauges grow monotonically with the commit count.
    assert!(
        off[1].0 > off[0].0,
        "GC-off max chain must keep growing: {off:?}"
    );
    assert!(
        off[1].1 > off[0].1,
        "GC-off SIREAD footprint must keep growing: {off:?}"
    );
    // With the commit-cadence daemon both stay bounded — far under the
    // unvacuumed endpoint and under an absolute cadence-derived cap.
    assert!(
        on[1].0 < off[1].0 && on[1].0 <= 64,
        "GC-on chain {on:?} must stay bounded vs GC-off {off:?}"
    );
    assert!(
        on[1].1 < off[1].1,
        "GC-on SIREAD {on:?} must stay bounded vs GC-off {off:?}"
    );
}

/// Builds a bare Counters database (no SmallBank) for snapshot tests.
fn counters_db(rows: i64) -> (Database, sicost::common::TableId) {
    let db = Database::builder()
        .table(
            TableSchema::new(
                "Counters",
                vec![
                    ColumnDef::new("id", ColumnType::Int),
                    ColumnDef::new("n", ColumnType::Int),
                ],
                0,
                vec![],
            )
            .unwrap(),
        )
        .unwrap()
        .config(EngineConfig::functional())
        .build();
    let table = db.table_id("Counters").unwrap();
    db.bulk_load(
        table,
        (0..rows).map(|i| Row::new(vec![Value::int(i), Value::int(0)])),
    )
    .unwrap();
    (db, table)
}

/// The watermark invariant, end to end: a version still visible to *any*
/// live snapshot survives every vacuum pass, no matter how much newer
/// churn has piled on top of it.
#[test]
fn vacuum_never_reclaims_a_version_a_live_snapshot_can_see() {
    const ROWS: i64 = 8;
    const ROUNDS: usize = 6;
    let (db, table) = counters_db(ROWS);

    // Readers opened between churn rounds: each records what its
    // snapshot saw at begin time and stays open to the very end.
    let mut pinned = Vec::new();
    for round in 0..ROUNDS {
        let mut reader = db.begin();
        let mut seen = Vec::new();
        for id in 0..ROWS {
            let row = reader
                .read(table, &Value::int(id))
                .unwrap()
                .expect("populated");
            seen.push(row.int(1));
        }
        pinned.push((reader, seen));

        // Churn: overwrite every row several times, vacuuming after each
        // sweep so any horizon bug would reclaim what a reader still needs.
        for sweep in 0..4 {
            for id in 0..ROWS {
                let mut tx = db.begin();
                let stamp = (round * 4 + sweep + 1) as i64;
                tx.update(
                    table,
                    &Value::int(id),
                    Row::new(vec![Value::int(id), Value::int(stamp * ROWS + id)]),
                )
                .unwrap();
                tx.commit().unwrap();
            }
            db.vacuum();
        }
    }
    let churned = db.metrics();
    assert!(churned.vacuum_runs >= (ROUNDS * 4) as u64);
    // The watermark did its job the conservative way round: with the
    // round-0 snapshot still live, *all* churn sits above the horizon and
    // every pass must keep it.
    assert_eq!(
        churned.versions_pruned, 0,
        "no version above the oldest live snapshot may be reclaimed"
    );

    // Every pinned reader re-reads through its original snapshot and
    // must see exactly what it saw at begin time.
    for (round, (mut reader, seen)) in pinned.into_iter().enumerate() {
        for id in 0..ROWS {
            let row = reader
                .read(table, &Value::int(id))
                .unwrap()
                .unwrap_or_else(|| panic!("round-{round} reader lost row {id} to vacuum"));
            assert_eq!(
                row.int(1),
                seen[id as usize],
                "round-{round} reader must re-read its snapshot of row {id}"
            );
        }
        reader.commit().unwrap();
        // With that snapshot drained, the next vacuum may advance.
        db.vacuum();
    }

    // All snapshots gone: vacuum converges the store to one live version
    // per row, and the deferred churn finally becomes reclaimable.
    db.vacuum();
    let m = db.metrics();
    assert!(
        m.max_chain_len <= 1,
        "with no live snapshots every chain collapses, got {}",
        m.max_chain_len
    );
    assert!(
        m.versions_pruned > 0,
        "draining the snapshots must release the deferred churn"
    );
}
