//! The repository's central claim, tested end-to-end: every configuration
//! that *should* guarantee serializable executions actually does — under
//! real concurrency, certified by the MVSG — and plain SI does not.

use sicost::driver::{run, RetryPolicy, RunConfig};
use sicost::engine::{CcMode, EngineConfig, SfuSemantics};
use sicost::mvsg::{History, Mvsg};
use sicost::smallbank::{
    MixWeights, SmallBank, SmallBankConfig, SmallBankDriver, SmallBankWorkload, Strategy,
    WorkloadParams,
};
use std::sync::Arc;
use std::time::Duration;

/// A short, furiously contended burst: 8 customers, 8 threads.
fn certified_burst(strategy: Strategy, engine: EngineConfig, seed: u64) -> (bool, u64) {
    let history = History::new();
    let bank = Arc::new(SmallBank::with_observer(
        &SmallBankConfig::small(8),
        engine,
        strategy,
        Some(history.clone() as Arc<dyn sicost::engine::HistoryObserver>),
    ));
    let driver = SmallBankDriver::new(
        bank,
        SmallBankWorkload::new(WorkloadParams {
            customers: 8,
            hotspot: 4,
            p_hot: 0.95,
            mix: MixWeights::uniform(),
        }),
    );
    let metrics = run(
        &driver,
        &RunConfig::new(8)
            .with_ramp_up(Duration::from_millis(10))
            .with_measure(Duration::from_millis(400))
            .with_seed(seed)
            .with_retry(RetryPolicy::disabled()),
    );
    let graph = Mvsg::from_events(&history.events());
    (graph.is_serializable(), metrics.commits())
}

#[test]
fn plain_si_produces_non_serializable_executions() {
    // With this much contention a handful of bursts reliably catches the
    // anomaly; each burst is independently seeded.
    let caught = (0..6).any(|i| {
        let (serializable, commits) =
            certified_burst(Strategy::BaseSI, EngineConfig::functional(), 0xBAD + i);
        assert!(commits > 0);
        !serializable
    });
    assert!(
        caught,
        "plain SI on a hot SmallBank should produce write skew within six bursts"
    );
}

#[test]
fn every_guaranteed_strategy_certifies_on_postgres_semantics() {
    for strategy in [
        Strategy::MaterializeWT,
        Strategy::PromoteWTUpd,
        Strategy::MaterializeBW,
        Strategy::PromoteBWUpd,
        Strategy::MaterializeALL,
        Strategy::PromoteALL,
    ] {
        for seed in [1u64, 2] {
            let (serializable, commits) =
                certified_burst(strategy, EngineConfig::functional(), seed);
            assert!(commits > 0, "{strategy} seed {seed} made no progress");
            assert!(
                serializable,
                "{strategy} (seed {seed}) produced a non-serializable execution"
            );
        }
    }
}

#[test]
fn sfu_strategies_certify_on_commercial_semantics() {
    let commercial = EngineConfig::functional()
        .with_cc(CcMode::SiFirstCommitterWins)
        .with_sfu(SfuSemantics::IdentityWrite);
    for strategy in [Strategy::PromoteWTSfu, Strategy::PromoteBWSfu] {
        for seed in [3u64, 4] {
            let (serializable, commits) = certified_burst(strategy, commercial.clone(), seed);
            assert!(commits > 0);
            assert!(
                serializable,
                "{strategy} must be safe where sfu is a write (seed {seed})"
            );
        }
    }
}

#[test]
fn all_strategies_certify_under_first_committer_wins() {
    // The commercial platform's FCW validation must be just as sound.
    let fcw = EngineConfig::functional().with_cc(CcMode::SiFirstCommitterWins);
    for strategy in [
        Strategy::MaterializeWT,
        Strategy::PromoteWTUpd,
        Strategy::MaterializeALL,
    ] {
        let (serializable, commits) = certified_burst(strategy, fcw.clone(), 9);
        assert!(commits > 0);
        assert!(serializable, "{strategy} under FCW must certify");
    }
}

#[test]
fn ssi_certifies_with_unmodified_programs() {
    for seed in [5u64, 6, 7] {
        let (serializable, commits) = certified_burst(
            Strategy::BaseSI,
            EngineConfig::functional().with_cc(CcMode::Ssi),
            seed,
        );
        assert!(commits > 0, "SSI must make progress");
        assert!(
            serializable,
            "SSI execution failed certification (seed {seed})"
        );
    }
}

#[test]
fn table_lock_pivot_certifies_serializable() {
    // §II-D's third approach: WriteCheck (the pivot) takes an explicit
    // table-X lock on Saving; with table intent locks enabled this
    // serialises it against every Saving writer, dissolving the
    // dangerous structure without touching the other programs.
    let mut engine = EngineConfig::functional();
    engine.table_intent_locks = true;
    for seed in [11u64, 12] {
        let history = History::new();
        let bank = Arc::new(SmallBank::with_observer(
            &SmallBankConfig::small(8),
            engine.clone(),
            Strategy::BaseSI,
            Some(history.clone() as Arc<dyn sicost::engine::HistoryObserver>),
        ));
        let driver = SmallBankDriver::new(
            bank,
            SmallBankWorkload::new(WorkloadParams {
                customers: 8,
                hotspot: 4,
                p_hot: 0.95,
                mix: MixWeights::uniform(),
            })
            .with_wc_table_lock(),
        );
        let metrics = run(
            &driver,
            &RunConfig::new(8)
                .with_ramp_up(Duration::from_millis(10))
                .with_measure(Duration::from_millis(400))
                .with_seed(seed)
                .with_retry(RetryPolicy::disabled()),
        );
        assert!(metrics.commits() > 0);
        let graph = Mvsg::from_events(&history.events());
        assert!(
            graph.is_serializable(),
            "2PL-pivot execution failed certification (seed {seed})"
        );
    }
}

#[test]
fn s2pl_certifies_with_unmodified_programs() {
    for seed in [8u64, 9] {
        let (serializable, commits) = certified_burst(
            Strategy::BaseSI,
            EngineConfig::functional().with_cc(CcMode::S2pl),
            seed,
        );
        assert!(commits > 0, "S2PL must make progress despite deadlocks");
        assert!(
            serializable,
            "S2PL execution failed certification (seed {seed})"
        );
    }
}
