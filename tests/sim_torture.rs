//! Deterministic-simulation torture: the full engine — SmallBank
//! transactions, group-commit WAL, checkpoints, an armed crash point, and
//! post-crash recovery — run under the seeded cooperative scheduler from
//! `sicost::sim`, so every schedule is a pure function of
//! `(crash point, round)`.
//!
//! Each schedule is executed **twice** and the two runs must agree byte
//! for byte: same scheduling trace, same history event stream, same
//! acknowledged totals, same recovered balance. Any divergence means
//! nondeterminism leaked into the engine (a wall-clock branch, an
//! unsorted hash-map iteration, an uninstrumented blocking primitive) —
//! exactly the bugs this harness exists to catch.
//!
//! Balance conservation reuses [`sicost::sim::BalanceAudit`], the same
//! oracle as the wall-clock `recovery_torture` test.
//!
//! Reproduction: a failing schedule writes a recipe file under
//! `target/sim-repro/` and the `SICOST_SIM_REPRO=<crash-point>:<round>`
//! env var replays exactly that schedule. `SICOST_SIM_SCHEDULES=<n>`
//! widens the per-point sweep (nightly).

use sicost::common::sync::{sim_sleep, sim_spawn};
use sicost::common::{CrashPoint, FaultConfig, FaultInjector, Money, Xoshiro256};
use sicost::engine::{EngineConfig, HistoryEvent, HistoryObserver, VacuumPolicy};
use sicost::mvsg::History;
use sicost::sim::{
    repro_override, schedules_per_point, write_repro_file, BalanceAudit, Sim, SimReport,
};
use sicost::smallbank::schema::{customer_name, total_balance};
use sicost::smallbank::{recover_database, SmallBank, SmallBankConfig, Strategy};
use sicost::storage::{PagedConfig, StoragePolicy};
use std::sync::Arc;
use std::time::Duration;

const CUSTOMERS: u64 = 16;
const MPL: usize = 3;
const OPS_PER_WORKER: u64 = 300;
const DRIVER_ROUNDS: u64 = 60;
/// Default seeds (rounds) per crash point; `SICOST_SIM_SCHEDULES` widens.
const DEFAULT_ROUNDS: u64 = 2;

/// Which occurrence of the crash point fires (see `recovery_torture` for
/// the rationale: checkpoint-protocol points must survive the
/// post-population checkpoint, pipeline points spread across commits).
fn crash_nth(point: CrashPoint, round: u64) -> u64 {
    match point {
        CrashPoint::DuringCheckpointWrite
        | CrashPoint::BeforeManifestSwap
        | CrashPoint::AfterManifestSwapBeforeTruncate => 2 + round % 2,
        _ => [3, 11, 31, 77][round as usize % 4],
    }
}

/// Paged backend sized so every page stays resident (3 tables × 4 pages
/// ≤ 16 pool pages): the only page writes are checkpoint flushes, which
/// keeps the `DuringPageFlush` occurrence count predictable.
fn storage_for(paged: bool) -> StoragePolicy {
    if paged {
        StoragePolicy::Paged(
            PagedConfig::default()
                .with_pages_per_table(4)
                .with_pool_pages(16),
        )
    } else {
        StoragePolicy::InMemory
    }
}

/// `DuringPageFlush` counts per page write; the post-population
/// checkpoint must complete uncrashed, so measure its page count with a
/// deterministic fault-free dry run and arm the crash a few page writes
/// into a later checkpoint's flush.
fn page_flush_nth(round: u64) -> u64 {
    let dry = SmallBank::new(
        &SmallBankConfig::small(CUSTOMERS),
        EngineConfig::functional().with_storage(storage_for(true)),
        Strategy::BaseSI,
    );
    let base = dry
        .db()
        .checkpoint()
        .expect("dry-run checkpoint")
        .pages_flushed;
    base + 1 + round
}

fn sim_seed(point: CrashPoint, round: u64) -> u64 {
    // Stable across runs: derived from the crash point's display name.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in point.to_string().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ (round.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Everything a schedule produces that must be identical across replays
/// of the same seed.
#[derive(PartialEq)]
struct Fingerprint {
    report: SimReport,
    history: Vec<HistoryEvent>,
    acked: i64,
    indeterminate: Vec<i64>,
    recovered: i64,
}

/// `vacuum` arms the version-GC daemon against the same crash: the
/// engine auto-vacuums on a tight commit cadence *and* the root task
/// interleaves explicit vacuum passes with its checkpoints, so epoch
/// reclamation, chain pruning and SIREAD GC race the workers and the
/// crash point — and must still replay byte-identically.
fn run_schedule(point: CrashPoint, round: u64, vacuum: bool, paged: bool) -> Fingerprint {
    let context = format!("{point}:{round}");
    let seed =
        sim_seed(point, round) ^ if vacuum { 0x6C } else { 0 } ^ if paged { 0x9A00 } else { 0 };
    let nth = if point == CrashPoint::DuringPageFlush {
        assert!(paged, "DuringPageFlush only exists under the paged backend");
        page_flush_nth(round)
    } else {
        crash_nth(point, round)
    };
    let ((history, audit, recovered), report) = Sim::new(seed).with_preempt(0.05).run(|| {
        let faults = Arc::new(FaultInjector::new(FaultConfig::crash(point, nth)));
        let mut engine = EngineConfig::functional()
            .with_storage(storage_for(paged))
            .with_faults(Arc::clone(&faults));
        if vacuum {
            engine = engine.with_vacuum(VacuumPolicy::every_commits(32));
        }
        let history = History::new();
        let bank = Arc::new(SmallBank::with_observer(
            &SmallBankConfig::small(CUSTOMERS),
            engine,
            Strategy::BaseSI,
            Some(Arc::clone(&history) as Arc<dyn HistoryObserver>),
        ));
        let initial = total_balance(bank.db(), bank.tables()).as_cents();
        bank.db()
            .checkpoint()
            .expect("the post-population checkpoint completes before any crash");

        let workers: Vec<_> = (0..MPL)
            .map(|tid| {
                let bank = Arc::clone(&bank);
                sim_spawn(&format!("worker-{tid}"), move || {
                    let mut rng = Xoshiro256::seed_from_u64(0x51D0 ^ (round << 8) ^ tid as u64);
                    let mut acked = 0i64;
                    let mut indeterminate = None;
                    for _ in 0..OPS_PER_WORKER {
                        if bank.db().crashed() {
                            break;
                        }
                        let c = customer_name(rng.range_inclusive(0, CUSTOMERS as i64 - 1) as u64);
                        let amount = rng.range_inclusive(1, 99);
                        let res = if rng.next_u64() % 2 == 0 {
                            bank.deposit_checking(&c, Money::cents(amount))
                        } else {
                            bank.transact_saving(&c, Money::cents(amount))
                        };
                        match res {
                            Ok(()) => acked += amount,
                            Err(_) if bank.db().crashed() => {
                                indeterminate = Some(amount);
                                break;
                            }
                            Err(e) if e.is_serialization_failure() => {}
                            Err(e) => panic!("unexpected SmallBank error: {e:?}"),
                        }
                    }
                    (acked, indeterminate)
                })
            })
            .collect();

        // The root task drives checkpoints, as the checkpointer daemon
        // would; for the checkpoint crash points this is where the
        // crash fires, mid-protocol, interleaved with the workers.
        for i in 0..DRIVER_ROUNDS {
            if bank.db().crashed() {
                break;
            }
            sim_sleep(Duration::from_millis(1));
            if vacuum && i % 2 == 1 {
                bank.db().vacuum();
            } else {
                let _ = bank.db().checkpoint();
            }
        }

        let mut audit = BalanceAudit::new(initial);
        for w in workers {
            let (acked, indeterminate) = w.join().expect("worker panicked");
            audit.ack(acked);
            if let Some(amount) = indeterminate {
                audit.undecided(amount);
            }
        }
        assert!(
            bank.db().crashed(),
            "{point}/round {round}: the armed crash point never fired"
        );

        // Recover inside the simulation: replay and the recovered
        // database's WAL daemon are part of the same schedule.
        let image = bank.db().durable_image();
        let (rdb, rtables, rec) = recover_database(
            EngineConfig::functional().with_storage(storage_for(paged)),
            &image,
        )
        .unwrap_or_else(|e| panic!("{point}/round {round}: recovery failed: {e}"));
        assert!(
            rec.checkpoint.is_some(),
            "{point}/round {round}: no usable checkpoint manifest"
        );
        let recovered = total_balance(&rdb, &rtables).as_cents();

        // The recovered database is live: one more audited deposit.
        let rbank = SmallBank::adopt(rdb, *bank.tables(), Strategy::BaseSI);
        rbank
            .deposit_checking(&customer_name(0), Money::cents(7))
            .expect("recovered database accepts commits");
        assert_eq!(
            total_balance(rbank.db(), rbank.tables()).as_cents(),
            recovered + 7
        );
        // Drop both databases before the closure returns so their WAL
        // daemons join and the scheduler sees every task finish.
        drop(rbank);
        drop(bank);
        (history, audit, recovered)
    });

    audit.assert_explained(recovered, &context);
    Fingerprint {
        report,
        history: history.events(),
        acked: audit.acked(),
        indeterminate: audit.indeterminate().to_vec(),
        recovered,
    }
}

/// Runs one schedule twice and asserts byte-identical outcomes; on any
/// panic, writes the `SICOST_SIM_REPRO` recipe file first.
fn run_schedule_checked(point: CrashPoint, round: u64, vacuum: bool, paged: bool) {
    let label = if vacuum {
        format!("vacuum-{point}")
    } else if paged && point != CrashPoint::DuringPageFlush {
        format!("paged-{point}")
    } else {
        point.to_string()
    };
    let outcome = std::panic::catch_unwind(|| {
        let a = run_schedule(point, round, vacuum, paged);
        let b = run_schedule(point, round, vacuum, paged);
        assert!(
            a.report == b.report,
            "{point}/round {round}: scheduler divergence — {:?} vs {:?}",
            a.report,
            b.report
        );
        assert!(
            a.history == b.history,
            "{point}/round {round}: history divergence — {} vs {} events",
            a.history.len(),
            b.history.len()
        );
        assert!(
            a == b,
            "{point}/round {round}: outcome divergence (acked {} vs {}, recovered {} vs {})",
            a.acked,
            b.acked,
            a.recovered,
            b.recovered
        );
    });
    if let Err(panic) = outcome {
        let msg = panic
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| panic.downcast_ref::<&str>().copied())
            .unwrap_or("<non-string panic>");
        let path = write_repro_file(&label, round, msg);
        eprintln!(
            "schedule {label}:{round} failed; repro file: {:?} — replay with \
             SICOST_SIM_REPRO={label}:{round}",
            path
        );
        std::panic::resume_unwind(panic);
    }
}

#[test]
fn sim_torture_all_crash_points_deterministically() {
    if let Some((name, round)) = repro_override() {
        if name.starts_with("vacuum-") || name.starts_with("paged-") {
            return; // replayed by the matching variant test below
        }
        let point = *CrashPoint::ALL
            .iter()
            .find(|p| p.to_string() == name)
            .unwrap_or_else(|| panic!("SICOST_SIM_REPRO names unknown crash point {name:?}"));
        run_schedule_checked(point, round, false, point == CrashPoint::DuringPageFlush);
        return;
    }
    let rounds = schedules_per_point(DEFAULT_ROUNDS);
    for &point in CrashPoint::ALL.iter() {
        for round in 0..rounds {
            // The mid-page-flush point only exists under the paged
            // backend; its rounds double as the paged determinism sweep
            // (each schedule still replays byte-identically).
            run_schedule_checked(point, round, false, point == CrashPoint::DuringPageFlush);
        }
    }
}

/// The vacuum daemon racing the workers and the crash: auto-cadence GC
/// plus explicit passes from the root task, on a WAL-pipeline point and a
/// checkpoint-protocol point. Each schedule replays byte-identically —
/// epoch reclamation and chain pruning must be invisible to the
/// deterministic scheduler.
#[test]
fn sim_torture_vacuum_racing_crash_is_deterministic() {
    if let Some((name, round)) = repro_override() {
        let Some(bare) = name.strip_prefix("vacuum-") else {
            return; // replayed by the main sweep above
        };
        let point = *CrashPoint::ALL
            .iter()
            .find(|p| p.to_string() == bare)
            .unwrap_or_else(|| panic!("SICOST_SIM_REPRO names unknown crash point {name:?}"));
        run_schedule_checked(point, round, true, false);
        return;
    }
    let rounds = schedules_per_point(DEFAULT_ROUNDS);
    for point in [
        CrashPoint::AfterWalAppend,
        CrashPoint::DuringCheckpointWrite,
    ] {
        for round in 0..rounds {
            run_schedule_checked(point, round, true, false);
        }
    }
}

/// The paged backend under the deterministic scheduler, crashed on a
/// WAL-pipeline point rather than mid-flush: pool lookups, clock
/// eviction bookkeeping and heap i/o must all be schedule-pure, so the
/// same seed replays byte-identically — the paged analogue of the
/// in-memory determinism contract.
#[test]
fn sim_torture_paged_backend_is_deterministic_on_pipeline_crash() {
    if let Some((name, round)) = repro_override() {
        let Some(bare) = name.strip_prefix("paged-") else {
            return; // replayed by the main sweep above
        };
        let point = *CrashPoint::ALL
            .iter()
            .find(|p| p.to_string() == bare)
            .unwrap_or_else(|| panic!("SICOST_SIM_REPRO names unknown crash point {name:?}"));
        run_schedule_checked(point, round, false, true);
        return;
    }
    let rounds = schedules_per_point(DEFAULT_ROUNDS);
    for point in [CrashPoint::AfterWalAppend, CrashPoint::BeforeManifestSwap] {
        for round in 0..rounds {
            run_schedule_checked(point, round, false, true);
        }
    }
}

/// The same engine closure under two *different* seeds must generally
/// explore different schedules — otherwise the sweep is theatre. Checked
/// on one crash point with the trace fingerprint.
#[test]
fn different_rounds_explore_different_schedules() {
    let a = run_schedule(CrashPoint::AfterWalAppend, 0, false, false);
    let b = run_schedule(CrashPoint::AfterWalAppend, 1, false, false);
    assert_ne!(
        a.report.trace_hash, b.report.trace_hash,
        "rounds 0 and 1 produced identical schedules"
    );
}
