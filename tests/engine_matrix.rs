//! Engine-mode × strategy matrix under real concurrency: everything must
//! make progress, keep the engine's own books straight, and survive
//! vacuum running mid-flight.

use sicost::driver::{run, RetryPolicy, RunConfig};
use sicost::engine::{CcMode, EngineConfig};
use sicost::smallbank::{
    SmallBank, SmallBankConfig, SmallBankDriver, SmallBankWorkload, Strategy, WorkloadParams,
};
use sicost::storage::{PagedConfig, StoragePolicy};
use std::sync::Arc;
use std::time::Duration;

/// Paged backend with the pool deliberately smaller than the working set
/// (64 customers spread over 16 pages/table × 3+ tables, only 12 pool
/// pages), so the matrix cells run with clock eviction and heap i/o on
/// the hot path.
fn paged_storage() -> StoragePolicy {
    StoragePolicy::Paged(
        PagedConfig::default()
            .with_pages_per_table(16)
            .with_pool_pages(12),
    )
}

fn run_cell(cc: CcMode, strategy: Strategy) {
    run_cell_on(cc, strategy, StoragePolicy::InMemory);
}

fn run_cell_on(cc: CcMode, strategy: Strategy, storage: StoragePolicy) {
    let paged = matches!(storage, StoragePolicy::Paged(_));
    let engine = EngineConfig::functional().with_cc(cc).with_storage(storage);
    let bank = Arc::new(SmallBank::new(
        &SmallBankConfig::small(64),
        engine,
        strategy,
    ));
    let driver = SmallBankDriver::new(
        Arc::clone(&bank),
        SmallBankWorkload::new(WorkloadParams::paper_default().scaled(64, 8)),
    );
    let metrics = run(
        &driver,
        &RunConfig::new(6)
            .with_ramp_up(Duration::from_millis(20))
            .with_measure(Duration::from_millis(300))
            .with_seed(0x3A7)
            .with_retry(RetryPolicy::disabled()),
    );
    assert!(
        metrics.commits() > 20,
        "{cc:?}/{strategy} barely progressed: {} commits",
        metrics.commits()
    );
    let em = bank.db().metrics();
    // Engine-side commits include setup-free population (bulk load skips
    // the counter) and ramp-up traffic, so engine >= measured.
    assert!(em.commits >= metrics.commits(), "{cc:?}/{strategy}");
    // Abort classification consistency: deadlocks only under lock-ordered
    // modes; FCW aborts only in FCW mode; FUW aborts only in eager modes.
    match cc {
        CcMode::SiFirstUpdaterWins => assert_eq!(em.aborts_first_committer, 0),
        CcMode::SiFirstCommitterWins => assert_eq!(em.aborts_first_updater, 0),
        CcMode::Ssi => assert_eq!(em.aborts_first_committer, 0),
        CcMode::S2pl => {
            assert_eq!(
                em.serialization_failures(),
                0,
                "S2PL aborts only by deadlock"
            );
        }
    }
    // No transaction left behind: the registry must drain.
    assert_eq!(bank.db().active_transactions(), 0, "{cc:?}/{strategy}");
    // Under the undersized pool the cell must actually have churned the
    // buffer pool, not silently fallen back to resident pages.
    if paged {
        let pool = em.pool.expect("paged backend exports the pool gauge");
        assert!(pool.resident <= pool.capacity, "{cc:?}/{strategy}");
        assert!(
            pool.evictions > 0,
            "{cc:?}/{strategy}: pool ({} pages) holds a working set it cannot fit, \
             yet nothing was evicted",
            pool.capacity
        );
        assert!(pool.hits > 0, "{cc:?}/{strategy}: no pool hits at all");
    } else {
        assert_eq!(em.pool, None, "{cc:?}/{strategy}: in-memory has no pool");
    }
}

#[test]
fn matrix_si_fuw() {
    for strategy in [
        Strategy::BaseSI,
        Strategy::MaterializeWT,
        Strategy::PromoteALL,
    ] {
        run_cell(CcMode::SiFirstUpdaterWins, strategy);
    }
}

#[test]
fn matrix_si_fcw() {
    for strategy in [
        Strategy::BaseSI,
        Strategy::MaterializeBW,
        Strategy::PromoteWTSfu,
    ] {
        run_cell(CcMode::SiFirstCommitterWins, strategy);
    }
}

#[test]
fn matrix_ssi() {
    run_cell(CcMode::Ssi, Strategy::BaseSI);
}

#[test]
fn matrix_s2pl() {
    run_cell(CcMode::S2pl, Strategy::BaseSI);
}

/// Every concurrency-control mode on the paged backend with an
/// undersized pool: same progress, bookkeeping and abort-classification
/// contract as in-memory, now with eviction and heap i/o in the loop.
#[test]
fn matrix_all_cc_modes_on_the_paged_backend() {
    for cc in [
        CcMode::SiFirstUpdaterWins,
        CcMode::SiFirstCommitterWins,
        CcMode::Ssi,
        CcMode::S2pl,
    ] {
        run_cell_on(cc, Strategy::BaseSI, paged_storage());
    }
}

/// Paper fix strategies on the paged backend — the Conflict table's hot
/// materialized rows and promoted guard reads must behave identically
/// when their version chains live on pages.
#[test]
fn matrix_fix_strategies_on_the_paged_backend() {
    run_cell_on(
        CcMode::SiFirstUpdaterWins,
        Strategy::MaterializeWT,
        paged_storage(),
    );
    run_cell_on(
        CcMode::SiFirstCommitterWins,
        Strategy::PromoteWTSfu,
        paged_storage(),
    );
}

#[test]
fn vacuum_during_concurrent_traffic_is_safe() {
    let bank = Arc::new(SmallBank::new(
        &SmallBankConfig::small(32),
        EngineConfig::functional(),
        Strategy::MaterializeALL, // hot Conflict rows -> long chains
    ));
    let driver = SmallBankDriver::new(
        Arc::clone(&bank),
        SmallBankWorkload::new(WorkloadParams::paper_default().scaled(32, 4)),
    );
    let bank2 = Arc::clone(&bank);
    std::thread::scope(|s| {
        let vacuumer = s.spawn(move || {
            let mut reclaimed = 0;
            for _ in 0..30 {
                reclaimed += bank2.db().vacuum();
                std::thread::sleep(Duration::from_millis(10));
            }
            reclaimed
        });
        let metrics = run(
            &driver,
            &RunConfig::new(6)
                .with_ramp_up(Duration::from_millis(20))
                .with_measure(Duration::from_millis(350))
                .with_seed(0x7AC)
                .with_retry(RetryPolicy::disabled()),
        );
        let reclaimed = vacuumer.join().unwrap();
        assert!(metrics.commits() > 20);
        assert!(reclaimed > 0, "vacuum should reclaim versions under load");
    });
    // Books still balance after GC.
    assert_eq!(bank.total_balance(), bank.total_balance());
}

#[test]
fn paper_profiles_run_end_to_end_briefly() {
    // The timing-calibrated profiles must work mechanically (short run).
    for engine in [
        EngineConfig::postgres_like(),
        EngineConfig::commercial_like(),
    ] {
        let bank = Arc::new(SmallBank::new(
            &SmallBankConfig::small(256),
            engine,
            Strategy::BaseSI,
        ));
        let driver = SmallBankDriver::new(
            Arc::clone(&bank),
            SmallBankWorkload::new(WorkloadParams::paper_default().scaled(256, 32)),
        );
        let metrics = run(
            &driver,
            &RunConfig::new(4)
                .with_ramp_up(Duration::from_millis(50))
                .with_measure(Duration::from_millis(400))
                .with_seed(0x99)
                .with_retry(RetryPolicy::disabled()),
        );
        assert!(metrics.commits() > 0);
        // With simulated costs, TPS must be modest (sanity check that the
        // cost model engaged: a functional engine would do 100x more).
        assert!(
            metrics.tps() < 5_000.0,
            "cost model seems disabled: {} tps",
            metrics.tps()
        );
    }
}
