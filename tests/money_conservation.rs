//! Conservation-of-money oracles: concurrent executions must move money
//! exactly as the committed transactions say, on every engine mode.

use sicost::common::{Money, Xoshiro256};
use sicost::engine::{CcMode, EngineConfig};
use sicost::smallbank::{schema::customer_name, SmallBank, SmallBankConfig, Strategy};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Concurrent deposits/transacts/amalgamates (no WriteCheck, whose
/// penalty depends on internal state): the final audit must equal the
/// initial total plus the sum of committed deltas.
fn run_conservation(engine: EngineConfig, strategy: Strategy, seed: u64) {
    let bank = Arc::new(SmallBank::new(
        &SmallBankConfig::small(16),
        engine,
        strategy,
    ));
    let initial = bank.total_balance();
    let committed_delta = AtomicI64::new(0);

    std::thread::scope(|s| {
        for t in 0..6u64 {
            let bank = Arc::clone(&bank);
            let committed_delta = &committed_delta;
            s.spawn(move || {
                let mut rng = Xoshiro256::seed_from_u64(seed ^ (t << 32));
                for _ in 0..120 {
                    let who = customer_name(rng.next_below(16));
                    match rng.next_below(3) {
                        0 => {
                            let v = rng.range_inclusive(1, 5_000);
                            if bank.deposit_checking(&who, Money::cents(v)).is_ok() {
                                committed_delta.fetch_add(v, Ordering::Relaxed);
                            }
                        }
                        1 => {
                            let v = rng.range_inclusive(-3_000, 5_000);
                            if bank.transact_saving(&who, Money::cents(v)).is_ok() {
                                committed_delta.fetch_add(v, Ordering::Relaxed);
                            }
                        }
                        _ => {
                            let other = customer_name(rng.next_below(16));
                            if other != who {
                                // Amalgamate moves money internally: delta 0.
                                let _ = bank.amalgamate(&who, &other);
                            }
                        }
                    }
                }
            });
        }
    });

    let expected = initial + Money::cents(committed_delta.load(Ordering::Relaxed));
    assert_eq!(
        bank.total_balance(),
        expected,
        "money leaked or was conjured"
    );
}

#[test]
fn conservation_under_si_fuw() {
    run_conservation(EngineConfig::functional(), Strategy::BaseSI, 0xA);
}

#[test]
fn conservation_under_si_fcw() {
    run_conservation(
        EngineConfig::functional().with_cc(CcMode::SiFirstCommitterWins),
        Strategy::BaseSI,
        0xB,
    );
}

#[test]
fn conservation_under_ssi() {
    run_conservation(
        EngineConfig::functional().with_cc(CcMode::Ssi),
        Strategy::BaseSI,
        0xC,
    );
}

#[test]
fn conservation_under_s2pl() {
    run_conservation(
        EngineConfig::functional().with_cc(CcMode::S2pl),
        Strategy::BaseSI,
        0xD,
    );
}

#[test]
fn conservation_with_materialize_all() {
    run_conservation(EngineConfig::functional(), Strategy::MaterializeALL, 0xE);
}

#[test]
fn conservation_with_promote_all() {
    run_conservation(EngineConfig::functional(), Strategy::PromoteALL, 0xF);
}

/// WriteCheck-only conservation, single-threaded oracle: we replicate the
/// penalty decision and verify the audit matches.
#[test]
fn write_check_penalty_accounting_is_exact() {
    let bank = SmallBank::new(
        &SmallBankConfig::small(4),
        EngineConfig::functional(),
        Strategy::BaseSI,
    );
    let mut rng = Xoshiro256::seed_from_u64(0x77);
    let mut expected = bank.total_balance();
    for _ in 0..200 {
        let who = customer_name(rng.next_below(4));
        let v = Money::cents(rng.range_inclusive(100, 50_000));
        let before = bank.balance(&who).unwrap();
        bank.write_check(&who, v).unwrap();
        expected -= if before < v { v + Money::dollars(1) } else { v };
        assert_eq!(bank.total_balance(), expected);
    }
}
