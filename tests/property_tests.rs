//! Property-based tests over the core data structures and the central
//! theorems of the toolkit.

use proptest::prelude::*;
use sicost::common::{Money, Ts, TxnId};
use sicost::core::{
    minimal_edge_cover, verify_safe, Access, AccessMode, EdgeCost, EdgePick, KeySpec, Program,
    Sdg, SfuTreatment, StrategyPlan, Technique,
};
use sicost::engine::HistoryEvent;
use sicost::mvsg::Mvsg;
use sicost::storage::{Row, Value, Version, VersionChain};
use std::collections::HashMap;

// ---------------------------------------------------------------------
// Version chains behave like a sorted map from timestamp to image.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn version_chain_visibility_matches_model(
        // Strictly increasing install timestamps with arbitrary gaps.
        gaps in prop::collection::vec(1u64..5, 1..30),
        probes in prop::collection::vec(0u64..200, 1..20),
    ) {
        let mut chain = VersionChain::new();
        let mut model: Vec<(u64, i64)> = Vec::new();
        let mut ts = 0u64;
        for (i, g) in gaps.iter().enumerate() {
            ts += g;
            chain.install(Version::data(
                Ts(ts),
                TxnId(i as u64),
                Row::new(vec![Value::int(i as i64)]),
            ));
            model.push((ts, i as i64));
        }
        for probe in probes {
            let expect = model.iter().rev().find(|(t, _)| *t <= probe).map(|(_, v)| *v);
            let got = chain.visible(Ts(probe)).and_then(|v| v.row()).map(|r| r.int(0));
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn prune_preserves_visibility_at_or_after_horizon(
        gaps in prop::collection::vec(1u64..5, 2..30),
        horizon_frac in 0.0f64..1.2,
    ) {
        let mut chain = VersionChain::new();
        let mut ts = 0u64;
        let mut stamps = Vec::new();
        for (i, g) in gaps.iter().enumerate() {
            ts += g;
            chain.install(Version::data(
                Ts(ts),
                TxnId(i as u64),
                Row::new(vec![Value::int(i as i64)]),
            ));
            stamps.push(ts);
        }
        let horizon = (ts as f64 * horizon_frac) as u64;
        let before: Vec<_> = (horizon..=ts + 2)
            .map(|p| chain.visible(Ts(p)).map(|v| v.ts))
            .collect();
        chain.prune(Ts(horizon));
        let after: Vec<_> = (horizon..=ts + 2)
            .map(|p| chain.visible(Ts(p)).map(|v| v.ts))
            .collect();
        prop_assert_eq!(before, after, "pruning changed visible history");
    }
}

// ---------------------------------------------------------------------
// Money arithmetic.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn money_add_sub_roundtrip(a in -1_000_000_000i64..1_000_000_000, b in -1_000_000_000i64..1_000_000_000) {
        let (x, y) = (Money::cents(a), Money::cents(b));
        prop_assert_eq!((x + y) - y, x);
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!(-(-x), x);
    }

    #[test]
    fn money_display_shows_cents(a in -1_000_000i64..1_000_000) {
        let s = Money::cents(a).to_string();
        prop_assert!(s.contains('.'));
        prop_assert!(s.contains('$'));
    }
}

// ---------------------------------------------------------------------
// Serial histories are always serializable (MVSG sanity).
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn serial_histories_certify(
        ops in prop::collection::vec((0u64..6, any::<bool>()), 1..80)
    ) {
        // Execute transactions strictly one after another over 6 keys.
        let mut latest: HashMap<u64, Ts> = HashMap::new();
        let mut events = Vec::new();
        let mut clock = 0u64;
        for (i, (key, writes)) in ops.iter().enumerate() {
            let txn = TxnId(i as u64);
            let k = Value::int(*key as i64);
            events.push(HistoryEvent::Read {
                txn,
                table: sicost::common::TableId(0),
                key: k.clone(),
                observed: latest.get(key).copied(),
            });
            let mut writes_v = Vec::new();
            if *writes {
                clock += 1;
                latest.insert(*key, Ts(clock));
                writes_v.push((sicost::common::TableId(0), k));
            }
            events.push(HistoryEvent::Commit {
                txn,
                commit_ts: Ts(clock),
                writes: writes_v,
            });
        }
        let g = Mvsg::from_events(&events);
        prop_assert!(g.is_serializable(), "a serial history failed certification");
    }
}

// ---------------------------------------------------------------------
// The central theorem machinery: for ANY random program mix,
// materializing every vulnerable edge yields a mix with no dangerous
// structure; and the minimal cover, once applied, does too.
// ---------------------------------------------------------------------

fn arb_keyspec() -> impl Strategy<Value = KeySpec> {
    prop_oneof![
        prop::sample::select(vec!["A", "B"]).prop_map(|p| KeySpec::Param(p.into())),
        prop::sample::select(vec!["k1", "k2"]).prop_map(|c| KeySpec::Const(c.into())),
        Just(KeySpec::Predicate("pred".into())),
    ]
}

fn arb_access() -> impl Strategy<Value = Access> {
    (
        prop::sample::select(vec!["T0", "T1", "T2"]),
        arb_keyspec(),
        prop::sample::select(vec![AccessMode::Read, AccessMode::Write, AccessMode::SfuRead]),
    )
        .prop_map(|(t, k, m)| Access {
            table: t.into(),
            key: k,
            mode: m,
        })
}

fn arb_mix() -> impl Strategy<Value = Vec<Program>> {
    prop::collection::vec(prop::collection::vec(arb_access(), 1..5), 2..4).prop_map(|pss| {
        pss.into_iter()
            .enumerate()
            .map(|(i, accesses)| Program {
                name: format!("P{i}"),
                params: vec!["A".into(), "B".into()],
                accesses,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn materializing_all_vulnerable_edges_always_makes_mixes_safe(mix in arb_mix()) {
        for sfu in [SfuTreatment::AsLockOnly, SfuTreatment::AsWrite] {
            let sdg = Sdg::build(&mix, sfu);
            let plan = StrategyPlan::all_vulnerable(&sdg, Technique::Materialize);
            let (_, re) = verify_safe(&sdg, &plan, sfu).expect("materialization always applies");
            prop_assert!(
                re.is_si_serializable(),
                "MaterializeALL left a dangerous structure: {:?}",
                re.dangerous_structures()
            );
        }
    }

    #[test]
    fn minimal_cover_applied_via_materialization_is_safe(mix in arb_mix()) {
        let sfu = SfuTreatment::AsLockOnly;
        let sdg = Sdg::build(&mix, sfu);
        let solution = minimal_edge_cover(&sdg, EdgeCost::default());
        let plan = StrategyPlan {
            picks: solution
                .edges
                .iter()
                .map(|&ei| {
                    let e = &sdg.edges()[ei];
                    EdgePick {
                        from: sdg.programs()[e.from].name.clone(),
                        to: sdg.programs()[e.to].name.clone(),
                        technique: Technique::Materialize,
                    }
                })
                .collect(),
        };
        let (_, re) = verify_safe(&sdg, &plan, sfu).expect("cover edges are vulnerable");
        prop_assert!(
            re.is_si_serializable(),
            "cover {:?} did not dissolve all structures",
            solution.edges
        );
    }

    #[test]
    fn safe_mixes_stay_safe_under_materialization(mix in arb_mix()) {
        // Monotonicity: adding conflict-table writes never *creates* a
        // dangerous structure in an already-safe mix.
        let sfu = SfuTreatment::AsLockOnly;
        let sdg = Sdg::build(&mix, sfu);
        if sdg.is_si_serializable() {
            let plan = StrategyPlan::all_vulnerable(&sdg, Technique::Materialize);
            let (_, re) = verify_safe(&sdg, &plan, sfu).unwrap();
            prop_assert!(re.is_si_serializable());
        }
    }
}

// ---------------------------------------------------------------------
// Engine as a key-value store: single-threaded random workloads match a
// HashMap model exactly.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn engine_matches_model_single_threaded(
        ops in prop::collection::vec((0i64..20, prop::option::of(0i64..1000)), 1..60)
    ) {
        use sicost::engine::{Database, EngineConfig};
        use sicost::storage::{ColumnDef, ColumnType, TableSchema};
        let db = Database::builder()
            .table(TableSchema::new(
                "T",
                vec![ColumnDef::new("id", ColumnType::Int), ColumnDef::new("v", ColumnType::Int)],
                0,
                vec![],
            ).unwrap())
            .unwrap()
            .config(EngineConfig::functional())
            .build();
        let tid = db.table_id("T").unwrap();
        let mut model: HashMap<i64, i64> = HashMap::new();
        for (key, val) in ops {
            let mut tx = db.begin();
            let k = Value::int(key);
            match val {
                Some(v) => {
                    // upsert
                    let row = Row::new(vec![k.clone(), Value::int(v)]);
                    if model.contains_key(&key) {
                        tx.update(tid, &k, row).unwrap();
                    } else {
                        tx.insert(tid, row).unwrap();
                    }
                    model.insert(key, v);
                }
                None => {
                    let deleted = tx.delete(tid, &k).unwrap();
                    prop_assert_eq!(deleted, model.remove(&key).is_some());
                }
            }
            tx.commit().unwrap();
            // Full check against the model.
            let mut check = db.begin();
            for k in 0..20i64 {
                let got = check.read(tid, &Value::int(k)).unwrap().map(|r| r.int(1));
                prop_assert_eq!(got, model.get(&k).copied());
            }
            check.commit().unwrap();
        }
    }
}
