//! Randomised-property tests over the core data structures and the
//! central theorems of the toolkit, rewritten as seed-driven
//! deterministic loops: each test draws its cases from a fixed-seed
//! [`Xoshiro256`], so failures reproduce exactly and the suite needs no
//! external property-testing crate (the build must work offline — see
//! `DESIGN.md`, dependency policy).

use sicost::common::{Money, Ts, TxnId, Xoshiro256};
use sicost::core::{
    minimal_edge_cover, verify_safe, Access, AccessMode, EdgeCost, EdgePick, KeySpec, Program, Sdg,
    SfuTreatment, StrategyPlan, Technique,
};
use sicost::engine::HistoryEvent;
use sicost::mvsg::Mvsg;
use sicost::storage::{Row, Value, Version, VersionChain};
use sicost::wal::{LogEntry, LogRecord, Lsn};
use std::collections::HashMap;

// ---------------------------------------------------------------------
// Version chains behave like a sorted map from timestamp to image.
// ---------------------------------------------------------------------

#[test]
fn version_chain_visibility_matches_model() {
    let mut rng = Xoshiro256::seed_from_u64(0x5EED_0001);
    for _case in 0..200 {
        let n = 1 + rng.next_below(29) as usize;
        let mut chain = VersionChain::new();
        let mut model: Vec<(u64, i64)> = Vec::new();
        let mut ts = 0u64;
        for i in 0..n {
            ts += 1 + rng.next_below(4); // strictly increasing, gapped
            chain.install(Version::data(
                Ts(ts),
                TxnId(i as u64),
                Row::new(vec![Value::int(i as i64)]),
            ));
            model.push((ts, i as i64));
        }
        for _ in 0..20 {
            let probe = rng.next_below(200);
            let expect = model
                .iter()
                .rev()
                .find(|(t, _)| *t <= probe)
                .map(|(_, v)| *v);
            let got = chain
                .visible(Ts(probe))
                .and_then(|v| v.row())
                .map(|r| r.int(0));
            assert_eq!(got, expect, "probe {probe} in case {_case}");
        }
    }
}

#[test]
fn prune_preserves_visibility_at_or_after_horizon() {
    let mut rng = Xoshiro256::seed_from_u64(0x5EED_0002);
    for _case in 0..200 {
        let n = 2 + rng.next_below(28) as usize;
        let mut chain = VersionChain::new();
        let mut ts = 0u64;
        for i in 0..n {
            ts += 1 + rng.next_below(4);
            chain.install(Version::data(
                Ts(ts),
                TxnId(i as u64),
                Row::new(vec![Value::int(i as i64)]),
            ));
        }
        // Horizon anywhere from 0 to past the newest stamp.
        let horizon = (ts as f64 * 1.2 * rng.next_f64()) as u64;
        let before: Vec<_> = (horizon..=ts + 2)
            .map(|p| chain.visible(Ts(p)).map(|v| v.ts))
            .collect();
        chain.prune(Ts(horizon));
        let after: Vec<_> = (horizon..=ts + 2)
            .map(|p| chain.visible(Ts(p)).map(|v| v.ts))
            .collect();
        assert_eq!(before, after, "pruning changed visible history");
    }
}

// ---------------------------------------------------------------------
// Money arithmetic.
// ---------------------------------------------------------------------

#[test]
fn money_add_sub_roundtrip() {
    let mut rng = Xoshiro256::seed_from_u64(0x5EED_0003);
    let bound = 2_000_000_000u64;
    for _ in 0..10_000 {
        let a = rng.next_below(bound) as i64 - 1_000_000_000;
        let b = rng.next_below(bound) as i64 - 1_000_000_000;
        let (x, y) = (Money::cents(a), Money::cents(b));
        assert_eq!((x + y) - y, x);
        assert_eq!(x + y, y + x);
        assert_eq!(-(-x), x);
    }
}

#[test]
fn money_display_shows_cents() {
    let mut rng = Xoshiro256::seed_from_u64(0x5EED_0004);
    for _ in 0..2_000 {
        let a = rng.next_below(2_000_000) as i64 - 1_000_000;
        let s = Money::cents(a).to_string();
        assert!(s.contains('.'), "{s}");
        assert!(s.contains('$'), "{s}");
    }
}

// ---------------------------------------------------------------------
// WAL records: binary encoding round-trips and rejects corruption.
// ---------------------------------------------------------------------

fn random_value(rng: &mut Xoshiro256) -> Value {
    match rng.next_below(3) {
        0 => Value::Null,
        1 => Value::int(rng.next_below(u64::MAX) as i64),
        _ => {
            let len = rng.next_below(12) as usize;
            let s: String = (0..len)
                .map(|_| char::from(b'a' + rng.next_below(26) as u8))
                .collect();
            Value::str(&s)
        }
    }
}

fn random_record(rng: &mut Xoshiro256) -> LogRecord {
    let entries = (0..rng.next_below(5))
        .map(|_| LogEntry {
            table: sicost::common::TableId(rng.next_below(8) as u32),
            key: random_value(rng),
            image: if rng.next_bool(0.3) {
                None
            } else {
                let arity = rng.next_below(4) as usize;
                Some(Row::new((0..arity).map(|_| random_value(rng)).collect()))
            },
        })
        .collect();
    LogRecord {
        lsn: Lsn(rng.next_below(u64::MAX)),
        txn: TxnId(rng.next_below(u64::MAX)),
        entries,
    }
}

#[test]
fn wal_record_encoding_round_trips() {
    let mut rng = Xoshiro256::seed_from_u64(0x5EED_0005);
    for case in 0..500 {
        let rec = random_record(&mut rng);
        let bytes = rec.encode();
        let (back, used) =
            LogRecord::decode(&bytes).unwrap_or_else(|e| panic!("case {case}: decode failed: {e}"));
        assert_eq!(back, rec, "case {case}");
        assert_eq!(used, bytes.len(), "case {case}");
    }
}

#[test]
fn wal_record_corruption_never_decodes_to_a_different_record() {
    let mut rng = Xoshiro256::seed_from_u64(0x5EED_0006);
    for case in 0..200 {
        let rec = random_record(&mut rng);
        let clean = rec.encode();
        // Flip one random bit anywhere in the frame.
        let mut dirty = clean.clone();
        let byte = rng.next_below(dirty.len() as u64) as usize;
        let bit = 1u8 << rng.next_below(8);
        dirty[byte] ^= bit;
        match LogRecord::decode(&dirty) {
            Err(_) => {}
            // A flip in the length header can only "succeed" by reading a
            // different span whose checksum still matches — astronomically
            // unlikely; a decoded record equal to the original would mean
            // the flip was silently ignored.
            Ok((back, _)) => assert_ne!(back, rec, "case {case}: flip at {byte} undetected"),
        }
    }
}

// ---------------------------------------------------------------------
// Serial histories are always serializable (MVSG sanity).
// ---------------------------------------------------------------------

#[test]
fn serial_histories_certify() {
    let mut rng = Xoshiro256::seed_from_u64(0x5EED_0007);
    for _case in 0..300 {
        let n_ops = 1 + rng.next_below(79) as usize;
        // Execute transactions strictly one after another over 6 keys.
        let mut latest: HashMap<u64, Ts> = HashMap::new();
        let mut events = Vec::new();
        let mut clock = 0u64;
        for i in 0..n_ops {
            let key = rng.next_below(6);
            let writes = rng.next_bool(0.5);
            let txn = TxnId(i as u64);
            let k = Value::int(key as i64);
            events.push(HistoryEvent::Read {
                txn,
                table: sicost::common::TableId(0),
                key: k.clone(),
                observed: latest.get(&key).copied(),
            });
            let mut writes_v = Vec::new();
            if writes {
                clock += 1;
                latest.insert(key, Ts(clock));
                writes_v.push((sicost::common::TableId(0), k));
            }
            events.push(HistoryEvent::Commit {
                txn,
                commit_ts: Ts(clock),
                writes: writes_v,
            });
        }
        let g = Mvsg::from_events(&events);
        assert!(g.is_serializable(), "a serial history failed certification");
    }
}

// ---------------------------------------------------------------------
// The central theorem machinery: for ANY random program mix,
// materializing every vulnerable edge yields a mix with no dangerous
// structure; and the minimal cover, once applied, does too.
// ---------------------------------------------------------------------

fn random_keyspec(rng: &mut Xoshiro256) -> KeySpec {
    match rng.next_below(3) {
        0 => KeySpec::Param(if rng.next_bool(0.5) { "A" } else { "B" }.into()),
        1 => KeySpec::Const(if rng.next_bool(0.5) { "k1" } else { "k2" }.into()),
        _ => KeySpec::Predicate("pred".into()),
    }
}

fn random_access(rng: &mut Xoshiro256) -> Access {
    let table = ["T0", "T1", "T2"][rng.next_below(3) as usize];
    let mode =
        [AccessMode::Read, AccessMode::Write, AccessMode::SfuRead][rng.next_below(3) as usize];
    Access {
        table: table.into(),
        key: random_keyspec(rng),
        mode,
    }
}

fn random_mix(rng: &mut Xoshiro256) -> Vec<Program> {
    let n_programs = 2 + rng.next_below(2) as usize;
    (0..n_programs)
        .map(|i| {
            let n_accesses = 1 + rng.next_below(4) as usize;
            Program {
                name: format!("P{i}"),
                params: vec!["A".into(), "B".into()],
                accesses: (0..n_accesses).map(|_| random_access(rng)).collect(),
            }
        })
        .collect()
}

#[test]
fn materializing_all_vulnerable_edges_always_makes_mixes_safe() {
    let mut rng = Xoshiro256::seed_from_u64(0x5EED_0008);
    for _case in 0..64 {
        let mix = random_mix(&mut rng);
        for sfu in [SfuTreatment::AsLockOnly, SfuTreatment::AsWrite] {
            let sdg = Sdg::build(&mix, sfu);
            let plan = StrategyPlan::all_vulnerable(&sdg, Technique::Materialize);
            let (_, re) = verify_safe(&sdg, &plan, sfu).expect("materialization always applies");
            assert!(
                re.is_si_serializable(),
                "MaterializeALL left a dangerous structure: {:?}",
                re.dangerous_structures()
            );
        }
    }
}

#[test]
fn minimal_cover_applied_via_materialization_is_safe() {
    let mut rng = Xoshiro256::seed_from_u64(0x5EED_0009);
    for _case in 0..64 {
        let mix = random_mix(&mut rng);
        let sfu = SfuTreatment::AsLockOnly;
        let sdg = Sdg::build(&mix, sfu);
        let solution = minimal_edge_cover(&sdg, EdgeCost::default());
        let plan = StrategyPlan {
            picks: solution
                .edges
                .iter()
                .map(|&ei| {
                    let e = &sdg.edges()[ei];
                    EdgePick {
                        from: sdg.programs()[e.from].name.clone(),
                        to: sdg.programs()[e.to].name.clone(),
                        technique: Technique::Materialize,
                    }
                })
                .collect(),
        };
        let (_, re) = verify_safe(&sdg, &plan, sfu).expect("cover edges are vulnerable");
        assert!(
            re.is_si_serializable(),
            "cover {:?} did not dissolve all structures",
            solution.edges
        );
    }
}

#[test]
fn safe_mixes_stay_safe_under_materialization() {
    // Monotonicity: adding conflict-table writes never *creates* a
    // dangerous structure in an already-safe mix.
    let mut rng = Xoshiro256::seed_from_u64(0x5EED_000A);
    for _case in 0..64 {
        let mix = random_mix(&mut rng);
        let sfu = SfuTreatment::AsLockOnly;
        let sdg = Sdg::build(&mix, sfu);
        if sdg.is_si_serializable() {
            let plan = StrategyPlan::all_vulnerable(&sdg, Technique::Materialize);
            let (_, re) = verify_safe(&sdg, &plan, sfu).unwrap();
            assert!(re.is_si_serializable());
        }
    }
}

// ---------------------------------------------------------------------
// Engine as a key-value store: single-threaded random workloads match a
// HashMap model exactly.
// ---------------------------------------------------------------------

#[test]
fn engine_matches_model_single_threaded() {
    use sicost::engine::{Database, EngineConfig};
    use sicost::storage::{ColumnDef, ColumnType, TableSchema};
    let mut rng = Xoshiro256::seed_from_u64(0x5EED_000B);
    for _case in 0..32 {
        let db = Database::builder()
            .table(
                TableSchema::new(
                    "T",
                    vec![
                        ColumnDef::new("id", ColumnType::Int),
                        ColumnDef::new("v", ColumnType::Int),
                    ],
                    0,
                    vec![],
                )
                .unwrap(),
            )
            .unwrap()
            .config(EngineConfig::functional())
            .build();
        let tid = db.table_id("T").unwrap();
        let mut model: HashMap<i64, i64> = HashMap::new();
        let n_ops = 1 + rng.next_below(59) as usize;
        for _ in 0..n_ops {
            let key = rng.next_below(20) as i64;
            let val = if rng.next_bool(0.7) {
                Some(rng.next_below(1000) as i64)
            } else {
                None
            };
            let mut tx = db.begin();
            let k = Value::int(key);
            match val {
                Some(v) => {
                    // upsert
                    let row = Row::new(vec![k.clone(), Value::int(v)]);
                    if model.contains_key(&key) {
                        tx.update(tid, &k, row).unwrap();
                    } else {
                        tx.insert(tid, row).unwrap();
                    }
                    model.insert(key, v);
                }
                None => {
                    let deleted = tx.delete(tid, &k).unwrap();
                    assert_eq!(deleted, model.remove(&key).is_some());
                }
            }
            tx.commit().unwrap();
            // Full check against the model.
            let mut check = db.begin();
            for k in 0..20i64 {
                let got = check.read(tid, &Value::int(k)).unwrap().map(|r| r.int(1));
                assert_eq!(got, model.get(&k).copied());
            }
            check.commit().unwrap();
        }
    }
}
