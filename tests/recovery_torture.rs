//! Randomized crash-recovery torture: seeded crash schedules across every
//! armed crash point — including the three checkpoint-protocol points and
//! the paged backend's mid-page-flush point — each followed by recovery
//! from the durable image and a SmallBank balance-conservation audit.
//!
//! Oracle. Concurrent workers deposit known positive amounts. An
//! acknowledged (`Ok`) deposit must survive recovery. A deposit that
//! errored *while the crash latch was up* is indeterminate: its redo
//! record may or may not have become durable before the crash (e.g. it
//! appended to the log, then died awaiting publication). With at most one
//! indeterminate op per worker, the recovered total must equal
//! `initial + acked + S` for some subset `S` of the indeterminate
//! amounts — enumerated exhaustively.
//!
//! Every schedule also asserts that recovery read only the WAL suffix at
//! or above the checkpoint manifest's offset, never the whole history.

use sicost::common::{CrashPoint, FaultConfig, FaultInjector, Money, Xoshiro256};
use sicost::engine::EngineConfig;
use sicost::sim::BalanceAudit;
use sicost::smallbank::schema::{customer_name, total_balance};
use sicost::smallbank::{recover_database, SmallBank, SmallBankConfig, Strategy};
use sicost::storage::{PagedConfig, StoragePolicy};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const CUSTOMERS: u64 = 32;
const MPL: usize = 4;
const SEEDS_PER_POINT: u64 = 4;

/// Which occurrence of the crash point fires. The three checkpoint-
/// protocol points count once per checkpoint, and the harness always
/// completes one post-population checkpoint first (bulk load bypasses
/// the WAL, so recovery needs a checkpoint that covers the population) —
/// so those must crash at the 2nd occurrence or later. Commit-pipeline
/// points count per committing transaction; the spread lands the crash
/// at different interleavings. `DuringPageFlush` counts per page write
/// and is armed in [`run_schedule`] from a dry-run measurement, because
/// the post-population checkpoint's page count must pass uncrashed.
fn crash_nth(point: CrashPoint, round: u64) -> u64 {
    match point {
        CrashPoint::DuringCheckpointWrite
        | CrashPoint::BeforeManifestSwap
        | CrashPoint::AfterManifestSwapBeforeTruncate => 2 + round % 2,
        _ => [3, 11, 31, 77][round as usize % 4],
    }
}

/// `DuringPageFlush` only exists under the paged backend; the pool is
/// sized to hold every page (3 tables × 8 pages) so the sole source of
/// page writes is the checkpoint flush — which is exactly the window the
/// torn-page double-write protocol has to survive.
fn engine_for(point: CrashPoint) -> EngineConfig {
    let base = EngineConfig::functional();
    if point == CrashPoint::DuringPageFlush {
        base.with_storage(StoragePolicy::Paged(
            PagedConfig::default()
                .with_pages_per_table(8)
                .with_pool_pages(32),
        ))
    } else {
        base
    }
}

struct WorkerOutcome {
    acked: i64,
    indeterminate: Option<i64>,
}

fn run_schedule(point: CrashPoint, round: u64) {
    let nth = if point == CrashPoint::DuringPageFlush {
        // Population and its checkpoint are deterministic, so a
        // fault-free dry run tells exactly how many page writes the
        // mandatory post-population checkpoint performs; arm the crash
        // a few page writes into a later checkpoint's flush.
        let dry = SmallBank::new(
            &SmallBankConfig::small(CUSTOMERS),
            engine_for(point),
            Strategy::BaseSI,
        );
        let base = dry
            .db()
            .checkpoint()
            .expect("dry-run checkpoint")
            .pages_flushed;
        base + 1 + round
    } else {
        crash_nth(point, round)
    };
    let faults = Arc::new(FaultInjector::new(FaultConfig::crash(point, nth)));
    let bank = SmallBank::new(
        &SmallBankConfig::small(CUSTOMERS),
        engine_for(point).with_faults(Arc::clone(&faults)),
        Strategy::BaseSI,
    );
    let db = bank.db();
    let initial = total_balance(db, bank.tables()).as_cents();
    db.checkpoint()
        .expect("the post-population checkpoint completes before any crash");

    let stop = AtomicBool::new(false);
    let outcomes: Vec<WorkerOutcome> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..MPL)
            .map(|tid| {
                let bank = &bank;
                let stop = &stop;
                s.spawn(move || {
                    let mut rng = Xoshiro256::seed_from_u64(0x70A7 ^ (round << 8) ^ tid as u64);
                    let mut acked = 0i64;
                    let mut indeterminate = None;
                    for _ in 0..200_000 {
                        if stop.load(Ordering::Relaxed) || bank.db().crashed() {
                            break;
                        }
                        let c = customer_name(rng.range_inclusive(0, CUSTOMERS as i64 - 1) as u64);
                        let amount = rng.range_inclusive(1, 99);
                        let res = if rng.next_u64() % 2 == 0 {
                            bank.deposit_checking(&c, Money::cents(amount))
                        } else {
                            bank.transact_saving(&c, Money::cents(amount))
                        };
                        match res {
                            Ok(()) => acked += amount,
                            // An error under the crash latch is
                            // indeterminate — the redo record may have
                            // become durable before the crash.
                            Err(_) if bank.db().crashed() => {
                                indeterminate = Some(amount);
                                break;
                            }
                            Err(e) if e.is_serialization_failure() => {}
                            Err(e) => panic!("unexpected SmallBank error: {e:?}"),
                        }
                    }
                    WorkerOutcome {
                        acked,
                        indeterminate,
                    }
                })
            })
            .collect();

        // Main thread drives further checkpoints concurrently with the
        // workers; for the checkpoint crash points this is where the
        // crash fires (2nd+ checkpoint), mid-protocol.
        for _ in 0..200 {
            if bank.db().crashed() {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
            let _ = bank.db().checkpoint();
        }
        stop.store(true, Ordering::Relaxed);
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    assert!(
        db.crashed(),
        "{point}/round {round}: the armed crash point never fired"
    );
    let mut audit = BalanceAudit::new(initial);
    for w in &outcomes {
        audit.ack(w.acked);
        if let Some(amount) = w.indeterminate {
            audit.undecided(amount);
        }
    }

    // Recover from the durable image as a restart would find it.
    let image = db.durable_image();
    let (rdb, rtables, rec) = recover_database(engine_for(point), &image)
        .unwrap_or_else(|e| panic!("{point}/round {round}: recovery failed: {e}"));
    let manifest = rec
        .checkpoint
        .unwrap_or_else(|| panic!("{point}/round {round}: no usable checkpoint manifest"));

    // Suffix-only recovery: replay starts at the manifest offset and
    // never reaches below it.
    assert!(
        manifest.wal_offset >= image.wal_base,
        "{point}/round {round}: manifest points below the surviving log window"
    );
    let suffix_len = image.wal_base + image.wal.len() as u64 - manifest.wal_offset;
    assert!(
        rec.replayed_bytes <= suffix_len,
        "{point}/round {round}: replayed {} bytes but the post-checkpoint suffix is only {}",
        rec.replayed_bytes,
        suffix_len
    );

    // Balance conservation: initial + acked + some subset of the
    // indeterminate amounts (≤ MPL of them, exhaustively enumerated by
    // the shared oracle — the DST sweep in `sim_torture` uses the same).
    let recovered = total_balance(&rdb, &rtables).as_cents();
    audit.assert_explained(recovered, &format!("{point}/round {round}"));

    // The recovered database is live: one more audited deposit.
    let rbank = SmallBank::adopt(rdb, *bank.tables(), Strategy::BaseSI);
    rbank
        .deposit_checking(&customer_name(0), Money::cents(7))
        .expect("recovered database accepts commits");
    assert_eq!(
        total_balance(rbank.db(), rbank.tables()).as_cents(),
        recovered + 7
    );
}

#[test]
fn torture_all_crash_points_across_seeded_schedules() {
    let schedules: Vec<(CrashPoint, u64)> = CrashPoint::ALL
        .iter()
        .flat_map(|&p| (0..SEEDS_PER_POINT).map(move |r| (p, r)))
        .collect();
    assert!(schedules.len() >= 36, "coverage floor: 9 points × 4 seeds");
    for (point, round) in schedules {
        run_schedule(point, round);
    }
}

/// The headline property, deterministically: after a checkpoint, recovery
/// replays strictly fewer bytes than a from-zero replay of the same
/// history would.
#[test]
fn post_checkpoint_recovery_replays_strictly_fewer_bytes() {
    let run = |mid_checkpoint: bool| {
        let bank = SmallBank::new(
            &SmallBankConfig::small(CUSTOMERS),
            EngineConfig::functional(),
            Strategy::BaseSI,
        );
        bank.db().checkpoint().expect("post-population checkpoint");
        let mut rng = Xoshiro256::seed_from_u64(0xB17E);
        let mut do_ops = |n: u64| {
            for _ in 0..n {
                let c = customer_name(rng.range_inclusive(0, CUSTOMERS as i64 - 1) as u64);
                bank.deposit_checking(&c, Money::cents(rng.range_inclusive(1, 99)))
                    .expect("single-threaded deposit");
            }
        };
        do_ops(200);
        if mid_checkpoint {
            bank.db().checkpoint().expect("mid-run checkpoint");
        }
        do_ops(25);
        let live = bank.total_balance();
        let (rdb, rtables, rec) =
            recover_database(EngineConfig::functional(), &bank.db().durable_image())
                .expect("recovery");
        assert_eq!(total_balance(&rdb, &rtables), live);
        rec.replayed_bytes
    };
    let with_checkpoint = run(true);
    let from_zero = run(false);
    assert!(with_checkpoint > 0, "the 25-op suffix still replays");
    assert!(
        with_checkpoint < from_zero,
        "suffix replay ({with_checkpoint} bytes) must be strictly cheaper than \
         full-history replay ({from_zero} bytes)"
    );
}
